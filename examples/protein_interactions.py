"""Protein-interaction monitoring on a BioGRID-style stream (paper use case i).

PPI repositories are continuously updated with newly observed interactions.
Scientists can subscribe to structural motifs and be notified the moment the
motif appears, instead of re-running searches manually.  The BioGRID-style
workload is the paper's stress test: there is a single edge label, so every
update affects every registered query.

Monitored motifs:

* ``triangle``    — three proteins interacting in a cycle (a tightly coupled
  complex candidate),
* ``hub-bridge``  — a protein that interacts with two others which also
  interact with each other through a fourth protein,
* ``chain-to-tp53`` — an interaction chain of length three ending at a fixed
  protein of interest.

Run with::

    python examples/protein_interactions.py
"""

from __future__ import annotations

from repro import QueryBuilder, TRICEngine, TRICPlusEngine, create_engine
from repro.datasets import BioGridConfig, BioGridGenerator
from repro.streams import StreamRunner, format_replay_results

PROTEIN_OF_INTEREST = "protein7"


def build_queries():
    """Three structural motifs over the single-label interaction graph."""
    triangle = (
        QueryBuilder("triangle", name="interaction triangle")
        .edge("interacts", "?a", "?b")
        .edge("interacts", "?b", "?c")
        .edge("interacts", "?c", "?a")
        .build()
    )
    hub_bridge = (
        QueryBuilder("hub-bridge", name="hub protein bridging two partners")
        .edge("interacts", "?hub", "?p1")
        .edge("interacts", "?hub", "?p2")
        .edge("interacts", "?p1", "?via")
        .edge("interacts", "?p2", "?via")
        .build()
    )
    chain = (
        QueryBuilder("chain-to-tp53", name="three-step chain to the protein of interest")
        .edge("interacts", "?a", "?b")
        .edge("interacts", "?b", "?c")
        .edge("interacts", "?c", PROTEIN_OF_INTEREST)
        .build()
    )
    return [triangle, hub_bridge, chain]


def main() -> None:
    stream = BioGridGenerator(BioGridConfig(num_updates=1_500, num_proteins=120, seed=9)).stream()
    print("stream statistics:", stream.statistics())
    queries = build_queries()

    results = []
    first_hit = {}
    deltas_delivered = 0
    for name in ("TRIC+", "TRIC", "INV"):
        engine = create_engine(name)
        runner = StreamRunner(engine, time_budget_s=120)
        runner.index_queries(queries)
        # Subscribe to every motif on the fastest engine: the broker
        # delivers the appearing/disappearing embeddings as match deltas.
        # ``block`` keeps delivery lossless (we drain once, after the
        # replay, and want the *first* appearance of each motif).
        subscription = (
            runner.subscribe(policy="block") if name == "TRIC+" else None
        )
        results.append(runner.replay(stream))
        if subscription is not None:
            for delta in subscription.drain():
                deltas_delivered += 1
                if delta.added:
                    first_hit.setdefault(delta.query_id, delta.timestamp)

    print()
    print(format_replay_results(results))
    print()
    print("first update at which each motif appeared (TRIC+ match deltas):")
    for query in queries:
        timestamp = first_hit.get(query.query_id)
        status = f"update #{timestamp}" if timestamp is not None else "never"
        print(f"  {query.query_id:15s} {status}")
    print(f"\ntotal match deltas delivered: {deltas_delivered}")


if __name__ == "__main__":
    main()
