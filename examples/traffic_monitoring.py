"""Traffic monitoring over a taxi-ride stream (paper Section 1, use case ii).

Continuous queries over the synthetic NYC-style taxi stream watch for
operational patterns as rides arrive:

* ``hot-zone-roundtrip`` — a ride that picks up and drops off in the same
  zone (circling traffic),
* ``airport-cash``      — rides to the airport zone paid in cash,
* ``double-shift``      — a driver sharing shifts with another driver while
  both operate rides that pick up in the same zone.

The example replays the scaled TAXI dataset through several engines and
prints a small comparison table (the per-figure benchmarks do the same at
larger scale for Fig. 14a).

Run with::

    python examples/traffic_monitoring.py
"""

from __future__ import annotations

from repro import QueryBuilder, create_engine
from repro.datasets import TaxiConfig, TaxiGenerator
from repro.streams import StreamRunner, format_replay_results

AIRPORT_ZONE = "zone_0_0"


def build_queries():
    """Three domain queries over the taxi graph schema."""
    roundtrip = (
        QueryBuilder("hot-zone-roundtrip", name="ride starting and ending in the same zone")
        .edge("pickupAt", "?ride", "?zone")
        .edge("dropoffAt", "?ride", "?zone")
        .build()
    )
    airport_cash = (
        QueryBuilder("airport-cash", name="cash-paid rides to the airport zone")
        .edge("dropoffAt", "?ride", AIRPORT_ZONE)
        .edge("paidWith", "?ride", "cash")
        .build()
    )
    double_shift = (
        QueryBuilder("double-shift", name="shift-sharing drivers picking up in one zone")
        .edge("sharesShiftWith", "?d1", "?d2")
        .edge("drivenBy", "?r1", "?d1")
        .edge("drivenBy", "?r2", "?d2")
        .edge("pickupAt", "?r1", "?zone")
        .edge("pickupAt", "?r2", "?zone")
        .build()
    )
    return [roundtrip, airport_cash, double_shift]


def main() -> None:
    stream = TaxiGenerator(TaxiConfig(num_updates=3_000, seed=5)).stream()
    print("stream statistics:", stream.statistics())
    queries = build_queries()

    results = []
    matches_per_engine = {}
    for name in ("TRIC+", "TRIC", "INC", "GraphDB"):
        engine = create_engine(name)
        runner = StreamRunner(engine, time_budget_s=60)
        runner.index_queries(queries)
        results.append(runner.replay(stream))
        matches_per_engine[name] = {
            query.query_id: len(engine.matches_of(query.query_id)) for query in queries
        }

    print()
    print(format_replay_results(results))
    print()
    print("embeddings found per query:")
    for name, counts in matches_per_engine.items():
        print(f"  {name:8s} {counts}")

    reference = matches_per_engine["TRIC+"]
    for name, counts in matches_per_engine.items():
        assert counts == reference, f"{name} disagrees with TRIC+ on match counts"
    print("\nall engines report identical match counts.")


if __name__ == "__main__":
    main()
