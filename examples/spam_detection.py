"""Spam detection on a social-network stream (paper Fig. 1, Section 1).

Two continuous queries watch for malicious behaviour around flagged domains:

* ``spam-clique``  — users who know each other share and like content that
  links to a flagged domain (Fig. 1a),
* ``spam-shared-ip`` — several users share posts linking to a flagged domain
  from the same IP address (Fig. 1b).

Both queries share the sub-pattern ``?user -shares-> ?post -links-> domain``,
which is exactly what TRIC clusters: the shared prefix is indexed and
materialized once.  The example compares TRIC+ with the naive re-evaluation
engine on the same stream to show they agree while doing very different
amounts of work.

Run with::

    python examples/spam_detection.py
"""

from __future__ import annotations

import random

from repro import NaiveEngine, QueryBuilder, TRICPlusEngine, add
from repro.streams import StreamRunner, format_replay_results

FLAGGED_DOMAIN = "flagged.example.org"


def build_queries():
    """The two spam-detection patterns of the paper's introduction."""
    clique = (
        QueryBuilder("spam-clique", name="clique of users amplifying a flagged domain")
        .edge("knows", "?u1", "?u2")
        .edge("shares", "?u1", "?post")
        .edge("links", "?post", FLAGGED_DOMAIN)
        .edge("likes", "?u2", "?post")
        .build()
    )
    shared_ip = (
        QueryBuilder("spam-shared-ip", name="flagged posts shared from one IP")
        .edge("shares", "?u1", "?post")
        .edge("links", "?post", FLAGGED_DOMAIN)
        .edge("loggedFrom", "?u1", "?ip")
        .edge("loggedFrom", "?u2", "?ip")
        .edge("shares", "?u2", "?post")
        .build()
    )
    return [clique, shared_ip]


def build_stream(num_users: int = 40, num_posts: int = 60, seed: int = 11):
    """A synthetic activity stream in which a small group misbehaves."""
    rng = random.Random(seed)
    users = [f"user{i}" for i in range(num_users)]
    posts = [f"post{i}" for i in range(num_posts)]
    ips = [f"ip{i}" for i in range(8)]
    updates = []
    for user in users:
        updates.append(add("loggedFrom", user, rng.choice(ips)))
    for post in posts:
        author = rng.choice(users)
        updates.append(add("shares", author, post))
        domain = FLAGGED_DOMAIN if rng.random() < 0.2 else f"site{rng.randrange(10)}.example"
        updates.append(add("links", post, domain))
        for _ in range(rng.randrange(3)):
            updates.append(add("likes", rng.choice(users), post))
    for _ in range(num_users * 2):
        a, b = rng.sample(users, 2)
        updates.append(add("knows", a, b))
    rng.shuffle(updates)
    return updates


def main() -> None:
    queries = build_queries()
    stream = build_stream()

    results = []
    engines = {}
    for engine in (TRICPlusEngine(), NaiveEngine()):
        runner = StreamRunner(engine)
        runner.index_queries(queries)
        results.append(runner.replay(stream))
        engines[engine.name] = engine

    print(format_replay_results(results))
    print()
    for name, engine in engines.items():
        print(f"{name}: satisfied queries -> {sorted(engine.satisfied_queries())}")
    tric_matches = engines["TRIC+"].matches_of("spam-clique")
    print(f"\nTRIC+ found {len(tric_matches)} spam-clique embeddings; first few:")
    for embedding in tric_matches[:5]:
        print("   ", embedding)

    assert engines["TRIC+"].satisfied_queries() == engines["Naive"].satisfied_queries(), (
        "engines disagree — this should never happen"
    )
    print("\nTRIC+ and the naive oracle agree on the satisfied queries.")


if __name__ == "__main__":
    main()
