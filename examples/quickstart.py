"""Quickstart: register continuous queries and feed a stream of graph updates.

Reproduces the running example of the paper (Fig. 2 / Fig. 3): a user wants
to be notified when two people who know each other check in at the same
place.  Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import QueryBuilder, SubscriptionBroker, TRICPlusEngine, add
from repro.streams import StreamRunner


def main() -> None:
    # 1. Build a continuous query graph pattern.  Strings starting with "?"
    #    are variables; anything else is a literal vertex.
    checkin_query = (
        QueryBuilder("friends-checkin", name="friends check in at the same place")
        .edge("knows", "?p1", "?p2")
        .edge("checksIn", "?p1", "?place")
        .edge("checksIn", "?p2", "?place")
        .build()
    )

    # 2. Create an engine (TRIC+ is the paper's fastest variant) and register
    #    the query.  Hundreds or thousands of queries can be registered; they
    #    are clustered by their shared sub-patterns.
    engine = TRICPlusEngine()
    engine.register(checkin_query)

    # 3. Subscribe to the query: the broker delivers *match deltas* — the
    #    answer bindings that appeared or disappeared — instead of bare
    #    "query satisfied" notifications.
    broker = SubscriptionBroker(engine)
    inbox = broker.subscribe("quickstart", ["friends-checkin"])

    # 4. Feed the graph stream.  The runner measures answering time and
    #    routes every update through the broker.
    runner = StreamRunner(broker=broker)
    stream = [
        add("knows", "P1", "P2"),
        add("checksIn", "P1", "rio"),
        add("checksIn", "P3", "rio"),
        add("checksIn", "P2", "rio"),  # completes the pattern for (P1, P2)
    ]
    result = runner.replay(stream)

    # 5. Inspect the outcome.
    print("updates processed:     ", result.updates_processed)
    print("answering ms/update:   ", f"{result.answering_time_ms_per_update:.4f}")
    print("queries satisfied:     ", sorted(engine.satisfied_queries()))
    print("embeddings of the query:")
    for embedding in engine.matches_of("friends-checkin"):
        print("   ", embedding)
    print("match deltas delivered:")
    for delta in inbox.drain():
        print(f"    t={delta.timestamp} +{list(delta.added)} -{list(delta.removed)}")


if __name__ == "__main__":
    main()
