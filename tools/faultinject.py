"""Fault-injection harness: crash the serving stack on purpose, from a shell.

Seven subcommands, mirroring the failure modes the durability and
replication layers (`src/repro/persistence/`) recover from:

``kill-worker``
    Run ``repro-serve --executor process`` twice over the same seeded
    stream — once undisturbed, once while SIGKILLing live shard worker
    processes mid-stream — and assert the delivered delta stream is
    byte-identical and the stderr summary reports the respawns.  This is
    the CI recovery smoke.

``kill-primary``
    Replay one seeded stream through a serial oracle group and a
    process-executor group with replicas side by side, SIGKILLing shard
    *primary* workers mid-stream.  The verdict proves the freshest
    replica was promoted and every delivered ``MatchDelta`` frame stayed
    byte-identical to the never-crashed oracle — zero missed, zero
    duplicated.

``kill-replica``
    Same side-by-side replay, but the SIGKILLs land on *replica*
    workers while reads are actively routed to them.  The verdict proves
    reads failed over to surviving workers (no wrong answers, no
    errors) and replacements were re-seeded from the primary's snapshot.

``rolling-restart``
    Same side-by-side replay, invoking
    ``ShardedEngineGroup.rolling_restart()`` every N batches: drain,
    snapshot, respawn, resume.  The verdict proves zero frames were
    missed or duplicated across every restart, and reports the pause.

``corrupt-snapshot``
    Build a durable engine with at least two snapshot generations, flip
    a byte inside the *current* ``snapshot.bin``, then recover.  The
    verdict proves recovery fell back to the previous generation plus
    its preserved journal segment and converged on oracle answers.

``tear-tail``
    Truncate the final bytes of a durability directory's ``journal.wal``
    (a crash mid-``write(2)``), then replay it and report how recovery
    sees the damage: the torn final record is truncated, every record
    before it survives.

``corrupt-tail``
    Flip one byte at a chosen offset from the end of ``journal.wal`` and
    report the verdict: damage inside the final record is truncated like a
    tear; damage before it refuses recovery with ``JournalCorruptError``.

Run from the repository root::

    PYTHONPATH=src python tools/faultinject.py kill-worker --updates 2000
    PYTHONPATH=src python tools/faultinject.py kill-primary --kills 2
    PYTHONPATH=src python tools/faultinject.py kill-replica --replicas 2
    PYTHONPATH=src python tools/faultinject.py rolling-restart --every 20
    PYTHONPATH=src python tools/faultinject.py corrupt-snapshot
    PYTHONPATH=src python tools/faultinject.py tear-tail -d /tmp/state
    PYTHONPATH=src python tools/faultinject.py corrupt-tail -d /tmp/state --offset 400

Every subcommand prints a JSON verdict on stdout and exits 0 on the
expected (recovered) outcome, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.graph.errors import JournalCorruptError  # noqa: E402
from repro.persistence import (  # noqa: E402
    DeltaJournal,
    corrupt_file_tail,
    parse_frames,
    truncate_file_tail,
)


# ----------------------------------------------------------------------
# kill-worker: SIGKILL live shard workers under a running repro-serve
# ----------------------------------------------------------------------
def _serve_command(args, journal_dir=None):
    command = [
        sys.executable,
        "-m",
        "repro.pubsub.serve",
        "--dataset", args.dataset,
        "--updates", str(args.updates),
        "--queries", str(args.queries),
        "--shards", str(args.shards),
        "--executor", "process",
        "--subscribe", f"{args.subscribe}-of-{args.queries}",
        "--batch-size", str(args.batch_size),
        "--seed", str(args.seed),
    ]
    if journal_dir is not None:
        command += ["--journal-dir", str(journal_dir)]
    return command


def _child_pids(pid: int):
    """Worker processes forked by ``pid`` (via /proc; Linux only)."""
    children = []
    task_dir = Path(f"/proc/{pid}/task")
    try:
        for task in task_dir.iterdir():
            children_file = task / "children"
            if children_file.exists():
                children.extend(
                    int(child) for child in children_file.read_text().split()
                )
    except OSError:
        pass
    return children


def cmd_kill_worker(args) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")

    baseline = subprocess.run(
        _serve_command(args),
        capture_output=True,
        text=True,
        env=env,
        timeout=args.timeout,
    )
    if baseline.returncode != 0:
        print(json.dumps({"error": "baseline run failed", "stderr": baseline.stderr[-2000:]}))
        return 1

    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        journal_dir = Path(scratch) / "state" if args.journal_dir else None
        process = subprocess.Popen(
            _serve_command(args, journal_dir),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        # Block until the first delivered delta: the replay is provably
        # mid-stream, so the SIGKILL lands on a worker with work left.
        first_line = process.stdout.readline()
        killed = []
        for _ in range(args.kills):
            if process.poll() is not None:
                break
            workers = [
                pid for pid in _child_pids(process.pid) if pid not in killed
            ]
            if not workers:
                break
            try:
                os.kill(workers[0], signal.SIGKILL)
                killed.append(workers[0])
            except ProcessLookupError:
                continue
            # Let the supervisor respawn before the next round so a second
            # kill hits a live worker, not the corpse.
            time.sleep(args.kill_gap)
        try:
            stdout, stderr = process.communicate(timeout=args.timeout)
        except subprocess.TimeoutExpired:
            process.kill()
            print(json.dumps({"error": "faulted run hung past the timeout"}))
            return 1
        stdout = first_line + stdout

    # The stderr summary is the last pretty-printed JSON object; worker
    # tracebacks (the kills) may precede it.
    summary = {}
    lines = stderr.splitlines()
    for index in range(len(lines) - 1, -1, -1):
        if lines[index] == "{":
            try:
                summary = json.loads("\n".join(lines[index:]))
            except ValueError:
                summary = {}
            break
    respawns = summary.get("shard_respawns", [])
    verdict = {
        "identical_output": stdout == baseline.stdout,
        "exit_code": process.returncode,
        "workers_killed": len(killed),
        "shard_respawns": respawns,
        "shard_replayed_ops": summary.get("shard_replayed_ops", []),
        "degraded_shards": summary.get("degraded_shards"),
        "deltas_delivered": summary.get("deltas_delivered"),
    }
    print(json.dumps(verdict, indent=2, sort_keys=True))
    recovered = (
        verdict["identical_output"]
        and process.returncode == 0
        and len(killed) >= 1
        and sum(respawns) >= 1
    )
    return 0 if recovered else 1


# ----------------------------------------------------------------------
# tear-tail / corrupt-tail: journal damage + recovery verdict
# ----------------------------------------------------------------------
def _journal_path(directory: str) -> Path:
    path = Path(directory)
    return path if path.is_file() else path / "journal.wal"


def cmd_tear_tail(args) -> int:
    path = _journal_path(args.directory)
    before = path.stat().st_size
    truncate_file_tail(path, args.bytes)
    with DeltaJournal(path) as journal:
        records, truncated = journal.replay()
    verdict = {
        "journal": str(path),
        "bytes_torn": args.bytes,
        "size_before": before,
        "size_after": path.stat().st_size,
        "records_recovered": len(records),
        "torn_tail_truncated": truncated,
    }
    print(json.dumps(verdict, indent=2, sort_keys=True))
    return 0


def cmd_corrupt_tail(args) -> int:
    path = _journal_path(args.directory)
    corrupt_file_tail(path, offset_from_end=args.offset)
    try:
        records, good_length, torn = parse_frames(path.read_bytes())
    except JournalCorruptError as refused:
        verdict = {
            "journal": str(path),
            "offset_from_end": args.offset,
            "verdict": "interior corruption: recovery refused",
            "error": str(refused),
        }
        print(json.dumps(verdict, indent=2, sort_keys=True))
        return 0  # refusing to trust a damaged interior IS the contract
    verdict = {
        "journal": str(path),
        "offset_from_end": args.offset,
        "verdict": "tail corruption: truncated like a torn record",
        "records_recovered": len(records),
        "good_length": good_length,
        "torn_tail": torn,
    }
    print(json.dumps(verdict, indent=2, sort_keys=True))
    return 0


# ----------------------------------------------------------------------
# Replication verdicts: oracle-vs-faulted side-by-side replay
# ----------------------------------------------------------------------
# Primary-vs-replica kills need to land on a *specific* worker, which the
# /proc child-pid scan above cannot distinguish; these modes therefore run
# in-process and inject faults through the proxy API (``kill_worker``,
# ``kill_replica``, ``rolling_restart``) — the same SIGKILL the shell
# harness sends, aimed precisely.


def _replication_fixture(args):
    """Seeded update stream + query workload shared by oracle and faulted."""
    from repro.bench.experiments import build_stream, build_workload

    stream = build_stream(args.dataset, args.updates, args.seed)
    workload = build_workload(
        stream,
        num_queries=args.queries,
        avg_edges=5,
        selectivity=0.25,
        overlap=0.35,
        seed=args.seed + 1,
    )
    return list(stream.updates()), workload.queries


def _run_faulted(args, *, fault=None, probe_reads=False):
    """Replay the seeded stream through a serial oracle group and a
    process-executor group with replicas, side by side.

    ``fault(tick, group, reports)`` runs between batches on the faulted
    group only.  Returns per-tick frame identity, final-answer identity,
    and the faulted group's replication counters.
    """
    from repro.bench.experiments import pick_subscribed_queries
    from repro.pubsub import SubscriptionBroker
    from repro.pubsub.sharding import ShardedEngineGroup

    updates, queries = _replication_fixture(args)
    oracle = ShardedEngineGroup(args.engine, args.shards, executor="serial")
    group = ShardedEngineGroup(
        args.engine, args.shards, executor="process", replicas=args.replicas
    )
    try:
        for pattern in queries:
            oracle.register(pattern)
            group.register(pattern)
        subscribed = pick_subscribed_queries(sorted(oracle.queries), args.subscribe)
        broker_oracle = SubscriptionBroker(oracle)
        broker_group = SubscriptionBroker(group)
        sub_oracle = broker_oracle.subscribe("probe", subscribed)
        sub_group = broker_group.subscribe("probe", subscribed)
        mismatched_ticks = []
        read_mismatches = 0
        restart_reports = []
        tick = 0
        for start in range(0, len(updates), args.batch_size):
            if fault is not None:
                fault(tick, group, restart_reports)
            batch = updates[start : start + args.batch_size]
            broker_oracle.on_batch(batch)
            broker_group.on_batch(batch)
            frames_oracle = [
                json.dumps(delta.as_dict(), sort_keys=True)
                for delta in sub_oracle.drain()
            ]
            frames_group = [
                json.dumps(delta.as_dict(), sort_keys=True)
                for delta in sub_group.drain()
            ]
            if frames_oracle != frames_group:
                mismatched_ticks.append(tick)
            if probe_reads and tick % 3 == 0:
                for query_id in subscribed:
                    if group.matches_of(query_id) != oracle.matches_of(query_id):
                        read_mismatches += 1
            tick += 1
        answers_identical = (
            all(
                group.matches_of(query_id) == oracle.matches_of(query_id)
                for query_id in sorted(oracle.queries)
            )
            and group.satisfied_queries() == oracle.satisfied_queries()
        )
        return {
            "ticks": tick,
            "mismatched_ticks": mismatched_ticks,
            "read_mismatches": read_mismatches,
            "answers_identical": answers_identical,
            "restart_reports": restart_reports,
            "replication": group.replication_statistics(),
            "rolling_restarts": group.rolling_restarts,
        }
    finally:
        group.close()
        oracle.close()


def _kill_ticks(args) -> list:
    """Kill ticks spread evenly across the replay, never tick 0."""
    total_ticks = (args.updates + args.batch_size - 1) // args.batch_size
    return sorted(
        {
            max(1, (index + 1) * total_ticks // (args.kills + 1))
            for index in range(args.kills)
        }
    )


def cmd_kill_primary(args) -> int:
    kill_ticks = set(_kill_ticks(args))
    killed = []

    def fault(tick, group, _reports):
        if tick in kill_ticks:
            shard = len(killed) % args.shards
            group.shards[shard].kill_worker()
            killed.append(shard)

    result = _run_faulted(args, fault=fault)
    promotions = sum(info["promotions"] for info in result["replication"])
    respawns = sum(info["respawns"] for info in result["replication"])
    verdict = {
        "mode": "kill-primary",
        "primaries_killed": len(killed),
        "promotions": promotions,
        "respawns": respawns,
        "ticks": result["ticks"],
        "mismatched_ticks": result["mismatched_ticks"],
        "answers_identical": result["answers_identical"],
        "replication": result["replication"],
    }
    print(json.dumps(verdict, indent=2, sort_keys=True))
    recovered = (
        len(killed) >= 1
        and promotions >= 1
        and promotions + respawns >= len(killed)
        and not result["mismatched_ticks"]
        and result["answers_identical"]
    )
    return 0 if recovered else 1


def cmd_kill_replica(args) -> int:
    kill_ticks = set(_kill_ticks(args))
    killed = []

    def fault(tick, group, _reports):
        if tick in kill_ticks:
            shard = len(killed) % args.shards
            group.shards[shard].kill_replica()
            killed.append(shard)

    result = _run_faulted(args, fault=fault, probe_reads=True)
    deaths = sum(
        info["replicas"]["deaths"]
        for info in result["replication"]
        if info["replicas"] is not None
    )
    reseeds = sum(
        info["replicas"]["reseeds"]
        for info in result["replication"]
        if info["replicas"] is not None
    )
    reads_served = sum(
        info["replicas"]["reads_served"]
        for info in result["replication"]
        if info["replicas"] is not None
    )
    verdict = {
        "mode": "kill-replica",
        "replicas_killed": len(killed),
        "replica_deaths": deaths,
        "replica_reseeds": reseeds,
        "reads_served_by_replicas": reads_served,
        "read_mismatches": result["read_mismatches"],
        "ticks": result["ticks"],
        "mismatched_ticks": result["mismatched_ticks"],
        "answers_identical": result["answers_identical"],
        "replication": result["replication"],
    }
    print(json.dumps(verdict, indent=2, sort_keys=True))
    recovered = (
        len(killed) >= 1
        and deaths >= len(killed)
        and reseeds >= len(killed)
        and reads_served > 0
        and result["read_mismatches"] == 0
        and not result["mismatched_ticks"]
        and result["answers_identical"]
    )
    return 0 if recovered else 1


def cmd_rolling_restart(args) -> int:
    def fault(tick, group, reports):
        if tick and tick % args.every == 0:
            reports.append(group.rolling_restart())

    result = _run_faulted(args, fault=fault)
    pauses = [report["pause_seconds"] for report in result["restart_reports"]]
    flat = sorted(pause for shard_pauses in pauses for pause in shard_pauses)
    verdict = {
        "mode": "rolling-restart",
        "rolling_restarts": result["rolling_restarts"],
        "pause_seconds": pauses,
        "pause_max_s": flat[-1] if flat else None,
        "ticks": result["ticks"],
        "mismatched_ticks": result["mismatched_ticks"],
        "answers_identical": result["answers_identical"],
        "replication": result["replication"],
    }
    print(json.dumps(verdict, indent=2, sort_keys=True))
    recovered = (
        result["rolling_restarts"] >= 1
        and result["rolling_restarts"] == len(result["restart_reports"])
        and not result["mismatched_ticks"]
        and result["answers_identical"]
    )
    return 0 if recovered else 1


def cmd_corrupt_snapshot(args) -> int:
    import tempfile

    from repro.engines import create_engine
    from repro.persistence import DurableEngine

    updates, queries = _replication_fixture(args)
    oracle = create_engine(args.engine)
    for pattern in queries:
        oracle.register(pattern)
    with tempfile.TemporaryDirectory() as scratch:
        state = Path(scratch) / "state"
        durable = DurableEngine(
            create_engine(args.engine), state, snapshot_every=args.snapshot_every
        )
        for pattern in queries:
            durable.register(pattern)
        for start in range(0, len(updates), args.batch_size):
            batch = updates[start : start + args.batch_size]
            oracle.on_batch(batch)
            durable.on_batch(batch)
        generations = durable.snapshots_written
        durable.close()
        previous = state / "snapshot.bin.1"
        if not previous.exists():
            print(
                json.dumps(
                    {
                        "error": "need at least two snapshot generations; "
                        "lower --snapshot-every or raise --updates",
                        "snapshots_written": generations,
                    }
                )
            )
            return 1
        snapshot = state / "snapshot.bin"
        # Flip a byte mid-file: inside the payload, past the magic/header,
        # so the checksum (not a length check) is what catches it.
        corrupt_file_tail(snapshot, offset_from_end=snapshot.stat().st_size // 2)
        recovered = DurableEngine.recover(
            state, engine_factory=lambda: create_engine(args.engine)
        )
        identical = (
            all(
                recovered.matches_of(query_id) == oracle.matches_of(query_id)
                for query_id in sorted(oracle.queries)
            )
            and recovered.satisfied_queries() == oracle.satisfied_queries()
        )
        verdict = {
            "mode": "corrupt-snapshot",
            "snapshots_written": generations,
            "snapshot_fallback": recovered.snapshot_fallback,
            "replayed_records": recovered.replayed_records,
            "answers_identical": identical,
        }
        recovered.close()
    print(json.dumps(verdict, indent=2, sort_keys=True))
    return 0 if verdict["snapshot_fallback"] and identical else 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="faultinject.py",
        description=__doc__.splitlines()[0],
    )
    commands = parser.add_subparsers(dest="command", required=True)

    kill = commands.add_parser(
        "kill-worker", help="SIGKILL shard workers under repro-serve; compare output"
    )
    kill.add_argument("--dataset", default="snb")
    kill.add_argument("--updates", type=int, default=2_000)
    kill.add_argument("--queries", type=int, default=40)
    kill.add_argument("--shards", type=int, default=2)
    kill.add_argument("--subscribe", type=int, default=5)
    kill.add_argument("--batch-size", type=int, default=8)
    kill.add_argument("--seed", type=int, default=17)
    kill.add_argument("--kills", type=int, default=1,
                      help="workers to SIGKILL, one per round (default 1)")
    kill.add_argument("--kill-gap", type=float, default=1.0,
                      help="seconds between kill rounds (default 1)")
    kill.add_argument("--journal-dir", action="store_true",
                      help="also journal the faulted run to a temp directory")
    kill.add_argument("--timeout", type=float, default=600.0)
    kill.set_defaults(handler=cmd_kill_worker)

    def add_replay_options(sub, *, replicas_default=1):
        sub.add_argument("--dataset", default="snb")
        sub.add_argument("--engine", default="TRIC+")
        sub.add_argument("--updates", type=int, default=600)
        sub.add_argument("--queries", type=int, default=30)
        sub.add_argument("--shards", type=int, default=2)
        sub.add_argument("--subscribe", type=int, default=5)
        sub.add_argument("--batch-size", type=int, default=8)
        sub.add_argument("--seed", type=int, default=17)
        sub.add_argument("--replicas", type=int, default=replicas_default,
                         help=f"replica workers per shard (default {replicas_default})")

    primary = commands.add_parser(
        "kill-primary",
        help="SIGKILL shard primaries mid-stream; prove replica promotion "
        "keeps delivery byte-identical to an uncrashed oracle",
    )
    add_replay_options(primary)
    primary.add_argument("--kills", type=int, default=2,
                         help="primaries to SIGKILL, spread across the replay (default 2)")
    primary.set_defaults(handler=cmd_kill_primary)

    replica = commands.add_parser(
        "kill-replica",
        help="SIGKILL replica workers mid-stream; prove read failover and "
        "re-seeding keep every answer identical to the oracle",
    )
    add_replay_options(replica)
    replica.add_argument("--kills", type=int, default=2,
                         help="replicas to SIGKILL, spread across the replay (default 2)")
    replica.set_defaults(handler=cmd_kill_replica)

    rolling = commands.add_parser(
        "rolling-restart",
        help="rolling-restart every shard mid-stream; prove zero missed or "
        "duplicated delta frames vs an unrestarted oracle",
    )
    add_replay_options(rolling)
    rolling.add_argument("--every", type=int, default=25,
                         help="batches between rolling restarts (default 25)")
    rolling.set_defaults(handler=cmd_rolling_restart)

    snapshot = commands.add_parser(
        "corrupt-snapshot",
        help="corrupt the current snapshot generation; prove recovery falls "
        "back to the previous generation plus its journal segment",
    )
    add_replay_options(snapshot, replicas_default=0)
    snapshot.add_argument("--snapshot-every", type=int, default=20,
                          help="records between snapshots (default 20; at "
                          "least two generations must exist)")
    snapshot.set_defaults(handler=cmd_corrupt_snapshot)

    tear = commands.add_parser(
        "tear-tail", help="truncate a journal's final bytes; show recovery"
    )
    tear.add_argument("--directory", "-d", required=True,
                      help="durability directory (or journal file) to damage")
    tear.add_argument("--bytes", type=int, default=9,
                      help="bytes to cut off the tail (default 9)")
    tear.set_defaults(handler=cmd_tear_tail)

    corrupt = commands.add_parser(
        "corrupt-tail", help="flip one journal byte; show the recovery verdict"
    )
    corrupt.add_argument("--directory", "-d", required=True,
                         help="durability directory (or journal file) to damage")
    corrupt.add_argument("--offset", type=int, default=4,
                         help="offset from the end of the file (default 4)")
    corrupt.set_defaults(handler=cmd_corrupt_tail)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
