"""Fault-injection harness: crash the serving stack on purpose, from a shell.

Three subcommands, mirroring the failure modes the durability layer
(`src/repro/persistence/`) recovers from:

``kill-worker``
    Run ``repro-serve --executor process`` twice over the same seeded
    stream — once undisturbed, once while SIGKILLing live shard worker
    processes mid-stream — and assert the delivered delta stream is
    byte-identical and the stderr summary reports the respawns.  This is
    the CI recovery smoke.

``tear-tail``
    Truncate the final bytes of a durability directory's ``journal.wal``
    (a crash mid-``write(2)``), then replay it and report how recovery
    sees the damage: the torn final record is truncated, every record
    before it survives.

``corrupt-tail``
    Flip one byte at a chosen offset from the end of ``journal.wal`` and
    report the verdict: damage inside the final record is truncated like a
    tear; damage before it refuses recovery with ``JournalCorruptError``.

Run from the repository root::

    PYTHONPATH=src python tools/faultinject.py kill-worker --updates 2000
    PYTHONPATH=src python tools/faultinject.py tear-tail -d /tmp/state
    PYTHONPATH=src python tools/faultinject.py corrupt-tail -d /tmp/state --offset 400

Every subcommand prints a JSON verdict on stdout and exits 0 on the
expected (recovered) outcome, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.graph.errors import JournalCorruptError  # noqa: E402
from repro.persistence import (  # noqa: E402
    DeltaJournal,
    corrupt_file_tail,
    parse_frames,
    truncate_file_tail,
)


# ----------------------------------------------------------------------
# kill-worker: SIGKILL live shard workers under a running repro-serve
# ----------------------------------------------------------------------
def _serve_command(args, journal_dir=None):
    command = [
        sys.executable,
        "-m",
        "repro.pubsub.serve",
        "--dataset", args.dataset,
        "--updates", str(args.updates),
        "--queries", str(args.queries),
        "--shards", str(args.shards),
        "--executor", "process",
        "--subscribe", f"{args.subscribe}-of-{args.queries}",
        "--batch-size", str(args.batch_size),
        "--seed", str(args.seed),
    ]
    if journal_dir is not None:
        command += ["--journal-dir", str(journal_dir)]
    return command


def _child_pids(pid: int):
    """Worker processes forked by ``pid`` (via /proc; Linux only)."""
    children = []
    task_dir = Path(f"/proc/{pid}/task")
    try:
        for task in task_dir.iterdir():
            children_file = task / "children"
            if children_file.exists():
                children.extend(
                    int(child) for child in children_file.read_text().split()
                )
    except OSError:
        pass
    return children


def cmd_kill_worker(args) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")

    baseline = subprocess.run(
        _serve_command(args),
        capture_output=True,
        text=True,
        env=env,
        timeout=args.timeout,
    )
    if baseline.returncode != 0:
        print(json.dumps({"error": "baseline run failed", "stderr": baseline.stderr[-2000:]}))
        return 1

    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        journal_dir = Path(scratch) / "state" if args.journal_dir else None
        process = subprocess.Popen(
            _serve_command(args, journal_dir),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        # Block until the first delivered delta: the replay is provably
        # mid-stream, so the SIGKILL lands on a worker with work left.
        first_line = process.stdout.readline()
        killed = []
        for _ in range(args.kills):
            if process.poll() is not None:
                break
            workers = [
                pid for pid in _child_pids(process.pid) if pid not in killed
            ]
            if not workers:
                break
            try:
                os.kill(workers[0], signal.SIGKILL)
                killed.append(workers[0])
            except ProcessLookupError:
                continue
            # Let the supervisor respawn before the next round so a second
            # kill hits a live worker, not the corpse.
            time.sleep(args.kill_gap)
        try:
            stdout, stderr = process.communicate(timeout=args.timeout)
        except subprocess.TimeoutExpired:
            process.kill()
            print(json.dumps({"error": "faulted run hung past the timeout"}))
            return 1
        stdout = first_line + stdout

    # The stderr summary is the last pretty-printed JSON object; worker
    # tracebacks (the kills) may precede it.
    summary = {}
    lines = stderr.splitlines()
    for index in range(len(lines) - 1, -1, -1):
        if lines[index] == "{":
            try:
                summary = json.loads("\n".join(lines[index:]))
            except ValueError:
                summary = {}
            break
    respawns = summary.get("shard_respawns", [])
    verdict = {
        "identical_output": stdout == baseline.stdout,
        "exit_code": process.returncode,
        "workers_killed": len(killed),
        "shard_respawns": respawns,
        "shard_replayed_ops": summary.get("shard_replayed_ops", []),
        "degraded_shards": summary.get("degraded_shards"),
        "deltas_delivered": summary.get("deltas_delivered"),
    }
    print(json.dumps(verdict, indent=2, sort_keys=True))
    recovered = (
        verdict["identical_output"]
        and process.returncode == 0
        and len(killed) >= 1
        and sum(respawns) >= 1
    )
    return 0 if recovered else 1


# ----------------------------------------------------------------------
# tear-tail / corrupt-tail: journal damage + recovery verdict
# ----------------------------------------------------------------------
def _journal_path(directory: str) -> Path:
    path = Path(directory)
    return path if path.is_file() else path / "journal.wal"


def cmd_tear_tail(args) -> int:
    path = _journal_path(args.directory)
    before = path.stat().st_size
    truncate_file_tail(path, args.bytes)
    with DeltaJournal(path) as journal:
        records, truncated = journal.replay()
    verdict = {
        "journal": str(path),
        "bytes_torn": args.bytes,
        "size_before": before,
        "size_after": path.stat().st_size,
        "records_recovered": len(records),
        "torn_tail_truncated": truncated,
    }
    print(json.dumps(verdict, indent=2, sort_keys=True))
    return 0


def cmd_corrupt_tail(args) -> int:
    path = _journal_path(args.directory)
    corrupt_file_tail(path, offset_from_end=args.offset)
    try:
        records, good_length, torn = parse_frames(path.read_bytes())
    except JournalCorruptError as refused:
        verdict = {
            "journal": str(path),
            "offset_from_end": args.offset,
            "verdict": "interior corruption: recovery refused",
            "error": str(refused),
        }
        print(json.dumps(verdict, indent=2, sort_keys=True))
        return 0  # refusing to trust a damaged interior IS the contract
    verdict = {
        "journal": str(path),
        "offset_from_end": args.offset,
        "verdict": "tail corruption: truncated like a torn record",
        "records_recovered": len(records),
        "good_length": good_length,
        "torn_tail": torn,
    }
    print(json.dumps(verdict, indent=2, sort_keys=True))
    return 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="faultinject.py",
        description=__doc__.splitlines()[0],
    )
    commands = parser.add_subparsers(dest="command", required=True)

    kill = commands.add_parser(
        "kill-worker", help="SIGKILL shard workers under repro-serve; compare output"
    )
    kill.add_argument("--dataset", default="snb")
    kill.add_argument("--updates", type=int, default=2_000)
    kill.add_argument("--queries", type=int, default=40)
    kill.add_argument("--shards", type=int, default=2)
    kill.add_argument("--subscribe", type=int, default=5)
    kill.add_argument("--batch-size", type=int, default=8)
    kill.add_argument("--seed", type=int, default=17)
    kill.add_argument("--kills", type=int, default=1,
                      help="workers to SIGKILL, one per round (default 1)")
    kill.add_argument("--kill-gap", type=float, default=1.0,
                      help="seconds between kill rounds (default 1)")
    kill.add_argument("--journal-dir", action="store_true",
                      help="also journal the faulted run to a temp directory")
    kill.add_argument("--timeout", type=float, default=600.0)
    kill.set_defaults(handler=cmd_kill_worker)

    tear = commands.add_parser(
        "tear-tail", help="truncate a journal's final bytes; show recovery"
    )
    tear.add_argument("--directory", "-d", required=True,
                      help="durability directory (or journal file) to damage")
    tear.add_argument("--bytes", type=int, default=9,
                      help="bytes to cut off the tail (default 9)")
    tear.set_defaults(handler=cmd_tear_tail)

    corrupt = commands.add_parser(
        "corrupt-tail", help="flip one journal byte; show the recovery verdict"
    )
    corrupt.add_argument("--directory", "-d", required=True,
                         help="durability directory (or journal file) to damage")
    corrupt.add_argument("--offset", type=int, default=4,
                         help="offset from the end of the file (default 4)")
    corrupt.set_defaults(handler=cmd_corrupt_tail)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
