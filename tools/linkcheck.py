#!/usr/bin/env python3
"""Check that local markdown links resolve to files in the repository.

Usage::

    python tools/linkcheck.py README.md docs/ARCHITECTURE.md

Scans every ``[text](target)`` occurrence; targets that are external
(``http(s)://``, ``mailto:``) or pure anchors are skipped, everything else
must exist relative to the linking file (anchors and line fragments are
stripped first).  Exits non-zero listing the broken links.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def broken_links(path: Path) -> list[str]:
    broken = []
    for target in LINK_PATTERN.findall(path.read_text(encoding="utf-8")):
        if target.startswith(SKIP_PREFIXES):
            continue
        local = target.split("#", 1)[0]
        if not local:
            continue
        if not (path.parent / local).exists():
            broken.append(f"{path}: broken link -> {target}")
    return broken


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: linkcheck.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    failures: list[str] = []
    for name in argv:
        path = Path(name)
        if not path.exists():
            failures.append(f"{name}: file not found")
            continue
        failures.extend(broken_links(path))
    for failure in failures:
        print(failure, file=sys.stderr)
    if not failures:
        print(f"checked {len(argv)} file(s): all local links resolve")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
