"""Figure 12(e): query answering time vs. query overlap o (SNB).

Paper setup: o varies over 25 %–65 % with |QDB| = 5K and |GE| = 100K.  Higher
overlap means more shared sub-patterns; algorithms designed to exploit
commonalities (TRIC/TRIC+) benefit the most, and TRIC+ stays the fastest
engine overall.
"""

from __future__ import annotations

from conftest import assert_clustering_not_slower


def test_fig12e_overlap(run_figure):
    result = run_figure("fig12e")

    assert result.x_values() == [0.25, 0.35, 0.45, 0.55, 0.65]
    assert_clustering_not_slower(result, clustered="TRIC+", baseline="INV")
    assert_clustering_not_slower(result, clustered="TRIC+", baseline="GraphDB")

    for engine, points in result.series().items():
        assert len(points) == 5, f"missing overlap points for {engine}"
