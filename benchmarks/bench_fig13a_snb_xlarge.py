"""Figure 13(a): answering time on the extra-large SNB stream (10M edges).

Paper setup: only TRIC, TRIC+ and Neo4j are evaluated; TRIC+ is the only
algorithm that completes the 10M-edge stream within the 24-hour budget
(TRIC times out at 5.47M edges, Neo4j at 4.3M).  At benchmark scale the same
ordering appears: TRIC+ processes the most updates within the scaled budget.
"""

from __future__ import annotations

from conftest import timed_out_at_last_x


def test_fig13a_snb_xlarge(run_figure):
    result = run_figure("fig13a")

    assert set(result.engines()) == {"TRIC", "TRIC+", "GraphDB"}

    # TRIC+ must progress at least as far through the stream as GraphDB.
    by_engine = {}
    for point in result.points:
        by_engine[point.engine] = max(by_engine.get(point.engine, 0), point.updates_processed)
    assert by_engine["TRIC+"] >= by_engine["GraphDB"], (
        "GraphDB processed more updates than TRIC+ within the budget"
    )
    # If anyone completed the stream, TRIC+ must be among them.
    if not timed_out_at_last_x(result, "GraphDB") or not timed_out_at_last_x(result, "TRIC"):
        assert not timed_out_at_last_x(result, "TRIC+")
