"""Figure 14(b): query answering time vs. graph size on BioGRID (stress test).

Paper setup: BioGRID has a single vertex type (protein) and a single edge
label (interacts), so every update affects the entire query database.  With
|QDB| = 5K and a 100K-edge graph, INV/INV+/INC time out at 50K edges and
INC+ at 60K; only TRIC and TRIC+ finish.
"""

from __future__ import annotations

from conftest import assert_clustering_not_slower, timed_out_at_last_x


def test_fig14b_biogrid_stress(run_figure):
    result = run_figure("fig14b")

    assert len(result.engines()) == 7
    assert_clustering_not_slower(result, clustered="TRIC+", baseline="INV", slack=2.0)

    # The stress test must never show the trie-based engines timing out while
    # the inverted-index baselines complete.
    for baseline in ("INV", "INV+", "INC", "INC+"):
        assert not (
            timed_out_at_last_x(result, "TRIC+") and not timed_out_at_last_x(result, baseline)
        ), f"TRIC+ timed out while {baseline} completed"
