"""Figure 12(f): query answering time on the large SNB stream (1M edges).

Paper setup: same workload as Fig. 12(a) but the graph grows to 1M edges
under a 24-hour time budget.  INV/INV+ time out at 210K edges and INC/INC+
at 310K; TRIC and TRIC+ finish and improve over Neo4j by 77.01 % and
92.86 % respectively.  In this scaled reproduction the same pattern appears
as "*" markers: the inverted-index baselines exhaust the (scaled) budget
while TRIC+ completes the stream.
"""

from __future__ import annotations

from conftest import timed_out_at_last_x


def test_fig12f_snb_large(run_figure):
    result = run_figure("fig12f")

    # TRIC+ must get further through the stream than INV (either INV timed
    # out and TRIC+ did not, or both completed).
    inv_timed_out = timed_out_at_last_x(result, "INV")
    tric_plus_timed_out = timed_out_at_last_x(result, "TRIC+")
    assert not (tric_plus_timed_out and not inv_timed_out), (
        "TRIC+ exhausted the budget while INV completed — opposite of the paper's shape"
    )

    # Series exist for all seven engines.
    assert len(result.engines()) == 7
