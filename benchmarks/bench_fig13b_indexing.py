"""Figure 13(b): query insertion (indexing) time as the query database grows.

Paper setup: 1K-query batches are inserted until |QDB| = 5K; the per-query
indexing time of each batch is reported (log-scale y axis).  The first batch
is the most expensive (data structures are initialised) and later batches
are cheaper because queries share structure; indexing time is not a critical
dimension and stays in the sub-millisecond-to-millisecond range for every
algorithm.
"""

from __future__ import annotations


def test_fig13b_indexing_time(run_figure):
    result = run_figure("fig13b")

    assert result.metric == "indexing_ms_per_query"
    series = result.series()
    assert set(series) == {"TRIC", "TRIC+", "INV", "INV+", "INC", "INC+", "GraphDB"}

    for engine, points in series.items():
        values = [value for _, value, _ in points if value is not None]
        assert values, f"no indexing measurements for {engine}"
        # Indexing a query must stay cheap (well below 50 ms/query even in CI).
        assert max(values) < 50.0, f"{engine} indexing time implausibly high: {max(values):.3f} ms"
