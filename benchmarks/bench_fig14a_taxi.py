"""Figure 14(a): query answering time vs. graph size on the TAXI dataset.

Paper setup: |QDB| = 5K, l = 5, o = 35 %, σ = 25 % over the NYC taxi-ride
graph growing to 1M edges.  INV/INV+ time out at 210K/300K edges and
INC/INC+ at 220K/360K; TRIC and TRIC+ improve over Neo4j by 59.68 % and
81.76 %.
"""

from __future__ import annotations

from conftest import assert_clustering_not_slower, timed_out_at_last_x


def test_fig14a_taxi(run_figure):
    result = run_figure("fig14a")

    assert len(result.engines()) == 7
    assert_clustering_not_slower(result, clustered="TRIC+", baseline="INV")

    # The trie-based engine must not be the one that exhausts the budget
    # while the inverted-index baselines complete.
    assert not (
        timed_out_at_last_x(result, "TRIC+") and not timed_out_at_last_x(result, "INV")
    )
