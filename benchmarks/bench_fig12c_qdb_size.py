"""Figure 12(c): query answering time vs. query database size |QDB| (SNB).

Paper setup: |QDB| grows from 1K to 5K queries over a 100K-edge SNB graph
(log-scale y axis in the paper).  Answering time grows with |QDB| for every
algorithm; TRIC and TRIC+ stay lowest throughout.
"""

from __future__ import annotations

from conftest import assert_clustering_not_slower, value_at_last_x


def test_fig12c_qdb_size(run_figure):
    result = run_figure("fig12c")

    # Three query-database sizes (scaled analogues of 1K / 3K / 5K).
    assert len(result.x_values()) == 3
    assert_clustering_not_slower(result, clustered="TRIC+", baseline="INV")

    # Growing the query database must not make any engine faster by a large
    # factor (monotone-ish growth, generous tolerance for noise at tiny scale).
    for engine, points in result.series().items():
        values = [value for _, value, timed_out in points if value is not None and not timed_out]
        if len(values) >= 2 and values[0] > 0:
            assert values[-1] >= values[0] * 0.25, f"{engine} got drastically faster with more queries"
