"""Deletion-heavy stream benchmark: the counting delta pipeline under churn.

The seed implementation handled a deletion by rebuilding every affected
sub-trie from the base views and dropping the TRIC+ caches wholesale.  The
unified delta pipeline instead propagates deletions down the tries as
negative deltas (counting-based incremental maintenance) and patches every
cache through the views' signed delta logs; the legacy rebuild strategy has
since been removed entirely (the seed-vs-current comparison lives in
``benchmarks/bench_hotpath.py``).  This benchmark replays a deletion-heavy
SNB stream (~45 % deletions after warm-up) through the base and
answer-materialising engine tiers and through micro-batch sizes
{1, 16, 256}, printing the total answering time of each configuration and
asserting answer equivalence throughout.

Run directly (the file name keeps it out of the default tier-1 collection)::

    PYTHONPATH=src python -m pytest benchmarks/bench_deletions.py -q -s
"""

from __future__ import annotations

import random
import time
from typing import List

from repro.bench.configs import bench_scale_from_env
from repro.bench.experiments import build_stream, build_workload
from repro.engines import create_engine
from repro.graph.elements import Update, delete
from repro.query.generator import QueryWorkload
from repro.streams import StreamRunner
from repro.streams.report import format_table

#: Batch sizes compared by the micro-batch benchmark.
BATCH_SIZES = (1, 16, 256)

#: Probability of retracting a live edge after each addition (post warm-up).
DELETION_PRESSURE = 0.45

#: Additions kept live before deletions start.
WARMUP_EDGES = 50


def _deletion_heavy_workload(scale: float) -> tuple[List[Update], QueryWorkload]:
    """An SNB stream interleaved with deletions of random live edges."""
    num_additions = max(400, int(8_000 * scale))
    stream = build_stream("snb", num_additions, seed=17)
    workload = build_workload(
        stream,
        num_queries=max(20, int(400 * scale)),
        avg_edges=5,
        selectivity=0.25,
        overlap=0.35,
        seed=18,
    )
    rng = random.Random(7)
    live, updates = [], []
    for update in stream:
        updates.append(update)
        live.append(update.edge)
        if len(live) > WARMUP_EDGES and rng.random() < DELETION_PRESSURE:
            edge = live.pop(rng.randrange(len(live)))
            updates.append(delete(edge.label, edge.source, edge.target))
    return updates, workload


def _replay(
    engine_name: str, updates, workload, *, batch_size: int = 1, repeats: int = 1, **engine_kwargs
):
    """Replay the stream ``repeats`` times on fresh engines; keep the best time.

    Best-of-N damps scheduler/GC noise, which matters when the timing feeds
    an assertion on CI runners at tiny scales.
    """
    best, satisfied = float("inf"), frozenset()
    for _ in range(repeats):
        engine = create_engine(engine_name, **engine_kwargs)
        runner = StreamRunner(engine, batch_size=batch_size)
        runner.index_queries(workload.queries)
        start = time.perf_counter()
        runner.replay(updates)
        best = min(best, time.perf_counter() - start)
        satisfied = engine.satisfied_queries()
    return best, satisfied


def test_deletion_heavy_tiers_agree():
    """Base and answer-materialising tiers agree under deletion churn.

    The counting delta pipeline drives both tiers; timings are printed for
    the trajectory, equivalence of the satisfied sets is the assertion.
    """
    scale = bench_scale_from_env()
    updates, workload = _deletion_heavy_workload(scale)
    num_deletions = sum(1 for update in updates if update.is_deletion)

    rows = []
    results = {}
    for engine_name in ("TRIC", "TRIC+", "INV", "INV+", "INC", "INC+"):
        elapsed, satisfied = _replay(engine_name, updates, workload, repeats=3)
        results[engine_name] = (elapsed, satisfied)
        rows.append((engine_name, f"{elapsed:.3f}", len(satisfied)))

    print()
    print(
        f"deletion-heavy SNB stream: {len(updates)} updates "
        f"({num_deletions} deletions), |QDB| = {len(workload.queries)}"
    )
    print(format_table(("engine", "total answering (s)", "satisfied"), rows))

    reference = results["TRIC"][1]
    for engine_name, (_, satisfied) in results.items():
        # Answer equivalence across engines and tiers is non-negotiable.
        assert satisfied == reference, engine_name


def test_micro_batch_sizes_are_answer_equivalent():
    """Batch sizes {1, 16, 256} agree on answers; timings are reported."""
    scale = bench_scale_from_env()
    updates, workload = _deletion_heavy_workload(scale)

    rows = []
    satisfied_by_batch = {}
    for batch_size in BATCH_SIZES:
        for engine_name in ("TRIC+", "INV+", "GraphDB"):
            elapsed, satisfied = _replay(
                engine_name, updates, workload, batch_size=batch_size
            )
            satisfied_by_batch.setdefault(engine_name, {})[batch_size] = satisfied
            rows.append((engine_name, batch_size, f"{elapsed:.3f}", len(satisfied)))

    print()
    print(format_table(("engine", "batch size", "total answering (s)", "satisfied"), rows))

    for engine_name, by_batch in satisfied_by_batch.items():
        reference = by_batch[BATCH_SIZES[0]]
        for batch_size, satisfied in by_batch.items():
            assert satisfied == reference, (
                f"{engine_name}: batch size {batch_size} changed the answers"
            )
