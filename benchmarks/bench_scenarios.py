"""The scenario matrix: every engine x every synthetic scenario, oracle-gated.

Every other benchmark replays the same SNB-derived streams, so until now
"fast" has meant "fast on fig12a".  This benchmark runs each of the 8
engines through every scenario of the seeded synthetic workload generator
(``repro.bench.workloads``) — insert-heavy, delete-heavy, bursty,
high-skew, churn-heavy subscriptions, and a long add/delete soak — and
gates every cell on the golden-reference principle: the replay transcript
(per-tick notified ids + the final answer set of every query) must be
**byte-identical** to the string oracle's (``Naive``, full re-evaluation).
A cell that is fast but wrong fails the suite, not the assertion
tolerance.

Each cell records throughput and p50/p95/p99 tick latency; the soak cells
additionally record the interner's live-id count (the append-only-interner
growth measurement from ROADMAP item 3).  Results land in the
``scenario_matrix`` section of ``BENCH_hotpath.json``.

Environment knobs (all optional):

``REPRO_BENCH_SCALE``
    Global size multiplier (CI smoke uses 0.05-0.1).
``REPRO_SCENARIO_ENGINES``
    Comma-separated engine subset, e.g. ``TRIC+,INV``.
``REPRO_SCENARIO_SCENARIOS``
    Comma-separated scenario subset, e.g. ``insert_heavy,churn_heavy``.

Run directly (the file name keeps it out of the default tier-1
collection)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scenarios.py -q -s
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List

from repro.bench.configs import bench_scale_from_env
from repro.bench.workloads import SCENARIOS, generate_workload, run_workload
from repro.engines import ENGINE_FACTORIES
from repro.graph.errors import BenchmarkError

#: Where the committed performance trajectory lives (repository root).
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_hotpath.json"

#: The string oracle every cell is gated against.
ORACLE = "Naive"

#: Default scale: the full matrix is 8 engines x 6 scenarios with Naive
#: re-evaluating the whole query database per tick, so the committed
#: numbers run at a moderate scale and CI smoke goes smaller still.
DEFAULT_SCALE = 0.5


def _csv_env(variable: str, default: List[str], universe: List[str]) -> List[str]:
    raw = os.environ.get(variable, "").strip()
    if not raw:
        return default
    names = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = [name for name in names if name not in universe]
    if unknown:
        raise BenchmarkError(
            f"{variable} names unknown entries {unknown}; available: {', '.join(universe)}"
        )
    return names


def _write_json(payload: Dict) -> None:
    existing = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            existing = {}
    existing.update(payload)
    RESULT_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def test_scenario_matrix_oracle_verified():
    """Every engine x scenario cell must replay byte-identical to the oracle."""
    scale = bench_scale_from_env(default=DEFAULT_SCALE)
    engines = _csv_env(
        "REPRO_SCENARIO_ENGINES", list(ENGINE_FACTORIES), list(ENGINE_FACTORIES)
    )
    scenario_names = _csv_env(
        "REPRO_SCENARIO_SCENARIOS", list(SCENARIOS), list(SCENARIOS)
    )

    matrix: Dict[str, Dict] = {}
    for scenario_name in scenario_names:
        spec = SCENARIOS[scenario_name].scaled(scale)
        workload = generate_workload(spec)
        oracle_result = run_workload(workload, ORACLE)
        oracle_digest = oracle_result.transcript_digest()

        cells: Dict[str, Dict] = {ORACLE: oracle_result.as_dict()}
        for engine_name in engines:
            if engine_name == ORACLE:
                continue
            result = run_workload(workload, engine_name)
            # The golden-reference gate: byte identity, not tolerance.
            assert result.transcript == oracle_result.transcript, (
                f"{engine_name} diverged from the {ORACLE} oracle on "
                f"scenario {scenario_name!r} (digest {result.transcript_digest()[:16]} "
                f"vs {oracle_digest[:16]})"
            )
            cells[engine_name] = result.as_dict()

        matrix[scenario_name] = {
            "workload": workload.describe(),
            "oracle_digest": oracle_digest[:16],
            "engines": cells,
        }
        fastest = max(
            (name for name in cells),
            key=lambda name: cells[name]["updates_per_s"],
        )
        print(
            f"[{scenario_name}] {len(workload.stream)} updates / "
            f"{workload.num_ticks} ticks, {len(workload.queries)} queries — "
            f"all {len(cells)} engines oracle-identical; fastest: {fastest} "
            f"({cells[fastest]['updates_per_s']:.0f} upd/s)"
        )

    _write_json({"scenario_matrix": {"scale": scale, "scenarios": matrix}})
