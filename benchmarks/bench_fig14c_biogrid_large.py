"""Figure 14(c): BioGRID at larger scale — TRIC, TRIC+ and the graph database.

Paper setup: the BioGRID stream grows to 1M edges; TRIC and TRIC+ achieve
the lowest answering times while Neo4j exceeds the 24-hour threshold at
550K edges.  At benchmark scale the graph-database baseline likewise
processes the smallest share of the stream within the scaled budget.
"""

from __future__ import annotations

from conftest import timed_out_at_last_x


def test_fig14c_biogrid_large(run_figure):
    result = run_figure("fig14c")

    assert set(result.engines()) == {"TRIC", "TRIC+", "GraphDB"}

    by_engine = {}
    for point in result.points:
        by_engine[point.engine] = max(by_engine.get(point.engine, 0), point.updates_processed)
    assert by_engine["TRIC+"] >= by_engine["GraphDB"], (
        "GraphDB processed more of the BioGRID stream than TRIC+"
    )
    if not timed_out_at_last_x(result, "GraphDB"):
        # If even the graph database finished, the trie engines must have too.
        assert not timed_out_at_last_x(result, "TRIC+")
