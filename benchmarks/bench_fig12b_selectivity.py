"""Figure 12(b): query answering time vs. selectivity σ on the SNB dataset.

Paper setup: σ varies over 10 %, 15 %, 20 %, 25 %, 30 % with |QDB| = 5K and
|GE| = 100K.  A larger fraction of satisfied queries means more work for
every algorithm, but the relative ordering (TRIC+ fastest, TRIC fastest
non-caching engine) is preserved at every σ.
"""

from __future__ import annotations

from conftest import assert_clustering_not_slower


def test_fig12b_selectivity(run_figure):
    result = run_figure("fig12b")

    # Five selectivity values, as in the paper.
    assert result.x_values() == [0.10, 0.15, 0.20, 0.25, 0.30]
    assert_clustering_not_slower(result, clustered="TRIC+", baseline="INV")

    # The series contains a value for every engine at every σ.
    series = result.series()
    for engine, points in series.items():
        assert len(points) == 5, f"missing selectivity points for {engine}"
