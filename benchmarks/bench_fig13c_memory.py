"""Figure 13(c): main-memory requirements per algorithm and dataset.

Paper setup: |QDB| = 5K and |GE| = 100K on SNB, TAXI and BioGRID.  The
non-caching algorithms (TRIC, INV, INC) have the lowest footprint, their
caching (+) variants are slightly larger because the join structures are
retained, and Neo4j is the largest because it is a full database system.

The absolute numbers here are Python-object sizes (not JVM heap sizes), but
the benchmark reproduces the relative ordering: caching variants are never
smaller than their non-caching counterparts.
"""

from __future__ import annotations


def test_fig13c_memory(run_figure):
    result = run_figure("fig13c")

    assert result.metric == "memory_mb"
    assert result.x_values() == ["snb", "taxi", "biogrid"]

    by_key = {(p.x, p.engine): p.memory_mb for p in result.points}
    for dataset in ("snb", "taxi", "biogrid"):
        for base, plus in (("TRIC", "TRIC+"), ("INV", "INV+"), ("INC", "INC+")):
            base_mb = by_key.get((dataset, base))
            plus_mb = by_key.get((dataset, plus))
            assert base_mb is not None and plus_mb is not None
            assert plus_mb >= base_mb * 0.8, (
                f"{plus} reported a much smaller footprint than {base} on {dataset}"
            )
