"""Figure 12(d): query answering time vs. average query size l (SNB).

Paper setup: l takes the values 3, 5, 7, 9 with |QDB| = 5K and |GE| = 100K.
Answering time increases with l for every algorithm; the baselines degrade
much faster than TRIC/TRIC+ at l = 9.
"""

from __future__ import annotations

from conftest import assert_clustering_not_slower


def test_fig12d_query_size(run_figure):
    result = run_figure("fig12d")

    assert result.x_values() == [3, 5, 7, 9]
    assert_clustering_not_slower(result, clustered="TRIC+", baseline="INV")

    # Every engine reports a measurement at every query size.
    for engine, points in result.series().items():
        assert len(points) == 4, f"missing query-size points for {engine}"
