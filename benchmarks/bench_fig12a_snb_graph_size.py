"""Figure 12(a): query answering time vs. graph size on the SNB dataset.

Paper setup: |QDB| = 5K, l = 5, σ = 25 %, o = 35 %, graph growing from 10K to
100K edges.  Reported claim: TRIC improves answering time over INV, INC and
Neo4j by 99.15 %, 98.14 % and 91.86 % respectively; all caching (+) variants
beat their non-caching counterparts.

This benchmark replays the scaled SNB stream through all seven engines and
prints the answering-time series at five graph-size checkpoints.
"""

from __future__ import annotations

from conftest import assert_clustering_not_slower, timed_out_at_last_x, value_at_last_x


def test_fig12a_snb_graph_size(run_figure):
    result = run_figure("fig12a")

    # Every engine produced a full series.
    assert len(result.x_values()) >= 1
    assert set(result.engines()) == {"TRIC", "TRIC+", "INV", "INV+", "INC", "INC+", "GraphDB"}

    # Shape: the clustering engines do not lose to the join-and-explore
    # baselines once the graph has grown.
    assert_clustering_not_slower(result, clustered="TRIC+", baseline="INV")
    assert_clustering_not_slower(result, clustered="TRIC", baseline="INV")

    # The graph-database baseline must never be the overall winner at the end.
    final_values = {
        engine: value_at_last_x(result, engine)
        for engine in result.engines()
        if value_at_last_x(result, engine) is not None and not timed_out_at_last_x(result, engine)
    }
    if "GraphDB" in final_values and len(final_values) > 1:
        assert min(final_values, key=final_values.get) != "GraphDB"
