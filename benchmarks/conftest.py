"""Shared fixtures for the figure-regeneration benchmark suite.

Every file in this directory regenerates one figure/table of the paper's
evaluation (Section 6).  The experiments run at a small scale by default so
the whole suite finishes in minutes; set the ``REPRO_BENCH_SCALE``
environment variable (e.g. ``REPRO_BENCH_SCALE=0.2``) to run larger streams
and query databases and sharpen the separation between the engines.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import pytest

from repro.bench import ExperimentResult, bench_scale_from_env, render_experiment, run_experiment


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Scale factor applied to every experiment in the suite."""
    return bench_scale_from_env()


@pytest.fixture
def run_figure(benchmark, bench_scale) -> Callable[..., ExperimentResult]:
    """Run one experiment under pytest-benchmark and print its series table."""

    def _run(experiment_id: str, **overrides) -> ExperimentResult:
        result = benchmark.pedantic(
            lambda: run_experiment(experiment_id, scale=bench_scale, **overrides),
            rounds=1,
            iterations=1,
        )
        print()
        print(render_experiment(result))
        return result

    return _run


def value_at_last_x(result: ExperimentResult, engine: str) -> Optional[float]:
    """Metric value of ``engine`` at the largest x value (None when absent)."""
    series = result.series().get(engine)
    if not series:
        return None
    return series[-1][1]


def timed_out_at_last_x(result: ExperimentResult, engine: str) -> bool:
    """Whether ``engine`` had exhausted the time budget by the last x value."""
    series = result.series().get(engine)
    if not series:
        return False
    return series[-1][2]


def assert_clustering_not_slower(
    result: ExperimentResult, *, clustered: str = "TRIC+", baseline: str = "INV", slack: float = 1.5
) -> None:
    """Loose shape check: the clustering engine is not slower than a baseline.

    ``slack`` tolerates measurement noise at the very small default scale;
    when the baseline timed out and the clustering engine did not, the check
    passes immediately (that *is* the paper's shape).
    """
    if timed_out_at_last_x(result, baseline) and not timed_out_at_last_x(result, clustered):
        return
    clustered_value = value_at_last_x(result, clustered)
    baseline_value = value_at_last_x(result, baseline)
    if clustered_value is None or baseline_value is None:
        return
    assert clustered_value <= baseline_value * slack, (
        f"{clustered} ({clustered_value:.3f}) unexpectedly slower than "
        f"{baseline} ({baseline_value:.3f}) at the largest graph size"
    )
