"""Hot-path benchmark: interned vertices + maintained adjacency indexes.

The seed implementation paid two avoidable costs on every probe of the
matching layer: vertex tuples carried full identifier strings, and the
prefix/edge-view hash indexes behind ``extend_path_rows`` and
``_delta_against_parent`` were rebuilt from the full view whenever no
:class:`JoinCache` was active (and the cache itself re-bucketed raw string
tuples).  The current pipeline dictionary-encodes the vertex universe at the
stream boundary and keeps every index *maintained* — patched in place by the
relation's own mutations, never rebuilt — so each probe is O(bucket).

This benchmark replays the same workloads through the current engines and
through ``Legacy*`` engine subclasses that reproduce the seed behaviour
(``NullInterner`` string rows + per-call index builds + a local stand-in
for the removed ``JoinCache``), asserts answer equivalence, and writes the
measured throughputs to ``BENCH_hotpath.json`` at the repository root so
later PRs have a performance trajectory.

Two further workloads target the re-differentiated ``+`` tier (answer
materialisation, see ``src/repro/matching/answers.py``): a
``matches_of``-heavy polling stream and a deletion-invalidation stream,
each comparing every base engine against its ``+`` variant with
byte-identical answers required.

The serving-layer sections measure the pub/sub tier: ``subscription_delivery``
(broker k-of-n delta delivery vs ``poll_every`` polling), ``affected_flush``
(the BatchReport-consulting broker vs PR 4's flush-everything broker), and
``parallel_shards`` (the serial/thread/process shard fan-out executors vs
PR 4's per-run serialized fan-out, with answers asserted byte-identical
across every executor x shard-count cell; the host CPU count is recorded —
process-executor wall-clock wins need real cores, and this grid keeps the
overheads honest on any host).

Run directly (the file name keeps it out of the default tier-1 collection)::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py -q -s
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.bench.configs import bench_scale_from_env
from repro.bench.experiments import build_stream, build_workload
from repro.core.engine import ContinuousEngine
from repro.core.tric import TRICEngine, TRICPlusEngine
from repro.pubsub import ShardedEngineGroup
from repro.engines import create_engine
from repro.graph.interning import NullInterner
from repro.graph.elements import Update, delete
from repro.matching.plans import bindings_to_dicts
from repro.matching.relation import Relation, Row, build_row_index
from repro.matching.views import EDGE_VIEW_SCHEMA, EdgeViewRegistry
from repro.query.generator import QueryWorkload
from repro.streams import StreamRunner
from repro.streams.report import format_table

#: Where the committed performance trajectory lives (repository root).
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_hotpath.json"

#: Default scale (overridable via ``REPRO_BENCH_SCALE``).  The hot-path
#: asymmetry only shows once the graph has real density: below ~0.3 the
#: views are so small that fixed per-update overheads dominate both sides.
DEFAULT_SCALE = 0.5

#: Deletion-heavy workload shape (mirrors benchmarks/bench_deletions.py).
DELETION_PRESSURE = 0.45
WARMUP_EDGES = 50

#: Ceiling for the deletion-heavy comparison: the *legacy* invalidation
#: path re-materialises every affected query's full answer set per
#: deletion, which grows combinatorially with graph density — above this
#: scale the seed side alone runs for hours.  The no-regression property
#: being asserted is scale-insensitive, so the deletion workload is capped
#: while the addition workload runs at full requested scale.
DELETION_SCALE_CAP = 0.25


#: Scale cap and poll cadence for the matches_of / invalidation workloads:
#: the *base* engines re-derive every polled answer set from scratch (INV
#: and INC re-materialise full paths per poll), which grows far faster than
#: the maintained-answer side — the capped scale keeps the base side of the
#: comparison tractable while the asserted property is scale-insensitive.
POLLING_SCALE_CAP = 0.2
MAX_POLLED_QUERIES = 20

#: Base engine -> its answer-materialising ``+`` variant.
ENGINE_PAIRS = (("TRIC", "TRIC+"), ("INV", "INV+"), ("INC", "INC+"))

#: Scale from which the strict "`+` beats base" assertion applies: below
#: it the polled answer sets are so small that maintainer upkeep and fixed
#: per-update overheads drown the differential and the ratio is timer
#: noise either way, so CI smoke scales only guard against gross
#: regressions (answer byte-identity stays asserted at every scale).  The
#: committed ``BENCH_hotpath.json`` is generated at the default scale,
#: where the strict property holds for every pair on the polling workload
#: (and for the counted-maintenance TRIC pair on the invalidation one).
STRICT_PAIR_SCALE = 0.1
PAIR_NOISE_TOLERANCE = 1.5


# ----------------------------------------------------------------------
# Legacy engines: the seed hot path, byte for byte
# ----------------------------------------------------------------------
class _SeedJoinCache:
    """Local stand-in for the seed's ``JoinCache`` (removed from ``src/``).

    Build-side hash tables keyed by ``(relation uid, key columns)``,
    patched by replaying the relation's signed delta log — the behaviour
    the seed's ``+`` variants relied on before maintained indexes made it
    redundant.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        # cache key -> [index, version, log_position, epoch]
        self._entries: Dict[Tuple[int, Tuple[int, ...]], List] = {}

    def build_index(self, relation: Relation, key_positions: Tuple[int, ...]):
        cache_key = (relation.uid, key_positions)
        entry = self._entries.get(cache_key)
        if entry is not None and entry[3] == relation.epoch:
            index, version, log_position, _ = entry
            if version != relation.version:
                for row, sign in relation.deltas_since(log_position):
                    key = tuple(row[i] for i in key_positions)
                    if sign > 0:
                        index.setdefault(key, []).append(row)
                    else:
                        bucket = index.get(key)
                        if bucket is not None:
                            try:
                                bucket.remove(row)
                            except ValueError:  # pragma: no cover - defensive
                                pass
                            if not bucket:
                                del index[key]
                entry[1] = relation.version
                entry[2] = relation.log_length
            return index
        index = build_row_index(relation.rows, key_positions)
        self._entries[cache_key] = [
            index, relation.version, relation.log_length, relation.epoch
        ]
        return index


class _LegacyEdgeViewRegistry(EdgeViewRegistry):
    """Seed-style registry: no birth-time adjacency indexes on the views."""

    def register(self, key):
        view = self._views.get(key)
        if view is None:
            view = Relation(EDGE_VIEW_SCHEMA)
            self._views[key] = view
            self._keys_by_label.setdefault(key.label, set()).add(key)
        return view


class LegacyTRICEngine(TRICEngine):
    """TRIC with the seed probe strategy and the string vertex pipeline.

    Every overridden method is the seed implementation verbatim: hash
    indexes over prefix/edge views are rebuilt per call (or fetched from the
    JoinCache when caching is enabled), and rows carry raw identifier
    strings via :class:`NullInterner`.
    """

    name = "TRIC(legacy)"

    def __init__(self, *, cache: bool = False, **kwargs) -> None:
        super().__init__(**kwargs)
        self.legacy_cache_enabled = cache
        self._join_cache = _SeedJoinCache() if cache else None
        self._views = _LegacyEdgeViewRegistry(interner=NullInterner())

    def _extend_rows(self, rows, base):
        if self._join_cache is not None:
            index = self._join_cache.build_index(base, (0,))
        else:
            index = build_row_index(base.rows, (0,))
        extended: List[Row] = []
        for row in rows:
            bucket = index.get((row[-1],))
            if bucket:
                extended.extend(row + (base_row[1],) for base_row in bucket)
        return extended

    def _delta_against_parent(self, node, new_rows):
        parent_view = node.parent.view
        last_position = parent_view.arity - 1
        if self._join_cache is not None:
            index = self._join_cache.build_index(parent_view, (last_position,))
        elif len(new_rows) > 1:
            index = build_row_index(parent_view.rows, (last_position,))
        else:
            source, target = new_rows[0]
            return [
                parent_row + (target,)
                for parent_row in parent_view.rows
                if parent_row[-1] == source
            ]
        delta: List[Row] = []
        for source, target in new_rows:
            bucket = index.get((source,))
            if bucket:
                delta.extend(parent_row + (target,) for parent_row in bucket)
        return delta

    def _direct_dead_rows(self, node, removed_rows):
        position = node.depth - 1
        view = node.view
        if self._join_cache is not None:
            index = self._join_cache.build_index(view, (position, position + 1))
            dead: List[Row] = []
            for pair in removed_rows:
                dead.extend(index.get(pair, ()))
            return dead
        return [
            row for row in view.rows if (row[position], row[position + 1]) in removed_rows
        ]

    def _propagate_removals(self, node, removed, affected_queries):
        removed_prefixes = set(removed)
        for child in node.children:
            child_view = child.view
            if not child_view:
                continue
            if self._join_cache is not None:
                prefix_positions = tuple(range(child_view.arity - 1))
                index = self._join_cache.build_index(child_view, prefix_positions)
                dead: List[Row] = []
                for prefix in removed_prefixes:
                    dead.extend(index.get(prefix, ()))
            else:
                dead = [row for row in child_view.rows if row[:-1] in removed_prefixes]
            child_removed = child_view.remove_all(dead)
            if not child_removed:
                continue
            affected_queries.update(query_id for query_id, _ in child.query_paths)
            self._propagate_removals(child, child_removed, affected_queries)

    def _evaluate_affected(self, affected):
        matched = set()
        for query_id, deltas in affected.items():
            plan = self._plans[query_id]
            terminals = self._terminals[query_id]
            full_rows = [terminal.view.rows for terminal in terminals]
            binding_relations = (
                self._refresh_binding_relations(query_id)
                if self.legacy_cache_enabled
                else None
            )
            new_bindings = plan.evaluate_delta(
                deltas,
                full_rows,
                binding_relations=binding_relations,
                injective=self.injective,
            )
            if new_bindings:
                matched.add(query_id)
        return frozenset(matched)

    def matches_of(self, query_id):
        self._require_known(query_id)
        plan = self._plans[query_id]
        terminals = self._terminals[query_id]
        full_rows = [terminal.view.rows for terminal in terminals]
        binding_relations = (
            self._refresh_binding_relations(query_id)
            if self.legacy_cache_enabled
            else None
        )
        bindings = plan.evaluate_full(
            full_rows,
            binding_relations=binding_relations,
            injective=self.injective,
        )
        return bindings_to_dicts(bindings)

    def has_matches(self, query_id):
        # The seed re-checked deletion-time satisfaction by materialising
        # the query's full answer set; the current engines' witness probe
        # must not leak into the legacy baseline.
        return bool(self.matches_of(query_id))


class LegacyTRICPlusEngine(LegacyTRICEngine):
    """Seed TRIC+: legacy probes backed by the seed-style join cache."""

    name = "TRIC+(legacy)"

    def __init__(self, **kwargs) -> None:
        super().__init__(cache=True, **kwargs)


_FACTORIES = {
    ("TRIC", "legacy"): LegacyTRICEngine,
    ("TRIC", "current"): TRICEngine,
    ("TRIC+", "legacy"): LegacyTRICPlusEngine,
    ("TRIC+", "current"): TRICPlusEngine,
}


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def _addition_heavy_workload(scale: float) -> tuple[List[Update], QueryWorkload]:
    """A fig12a-style SNB addition stream with the paper's baseline knobs."""
    num_updates = max(400, int(8_000 * scale))
    stream = build_stream("snb", num_updates, seed=17)
    workload = build_workload(
        stream,
        num_queries=max(20, int(400 * scale)),
        avg_edges=5,
        selectivity=0.25,
        overlap=0.35,
        seed=18,
    )
    return list(stream), workload


def _deletion_heavy_workload(scale: float) -> tuple[List[Update], QueryWorkload]:
    """The addition stream interleaved with ~45 % deletions after warm-up."""
    additions, workload = _addition_heavy_workload(scale)
    rng = random.Random(7)
    live: List = []
    updates: List[Update] = []
    for update in additions:
        updates.append(update)
        live.append(update.edge)
        if len(live) > WARMUP_EDGES and rng.random() < DELETION_PRESSURE:
            edge = live.pop(rng.randrange(len(live)))
            updates.append(delete(edge.label, edge.source, edge.target))
    return updates, workload


def _replay(factory, updates: Sequence[Update], workload, *, repeats: int = 3):
    """Best-of-N replay on fresh engines; returns (seconds, satisfied ids)."""
    best, satisfied = float("inf"), frozenset()
    for _ in range(repeats):
        engine = factory()
        runner = StreamRunner(engine)
        runner.index_queries(workload.queries)
        start = time.perf_counter()
        runner.replay(updates)
        best = min(best, time.perf_counter() - start)
        satisfied = engine.satisfied_queries()
    return best, satisfied


def _measure(updates, workload, *, repeats: int) -> Dict[str, Dict[str, float]]:
    """legacy-vs-current timings for TRIC and TRIC+ on one workload."""
    results: Dict[str, Dict[str, float]] = {}
    for engine_name in ("TRIC", "TRIC+"):
        timings = {}
        satisfied = {}
        for variant in ("legacy", "current"):
            elapsed, sat = _replay(
                _FACTORIES[(engine_name, variant)], updates, workload, repeats=repeats
            )
            timings[variant] = elapsed
            satisfied[variant] = sat
        # The legacy pipeline must agree with the current one, answer for answer.
        assert satisfied["legacy"] == satisfied["current"], engine_name
        results[engine_name] = {
            "legacy_s": round(timings["legacy"], 4),
            "current_s": round(timings["current"], 4),
            "legacy_updates_per_s": round(len(updates) / timings["legacy"], 1),
            "current_updates_per_s": round(len(updates) / timings["current"], 1),
            "speedup": round(timings["legacy"] / timings["current"], 2),
        }
    return results


def _print_results(title: str, num_updates: int, results: Dict[str, Dict[str, float]]) -> None:
    rows = [
        (
            name,
            f"{r['legacy_s']:.3f}",
            f"{r['current_s']:.3f}",
            f"{r['current_updates_per_s']:.0f}",
            f"{r['speedup']:.2f}x",
        )
        for name, r in results.items()
    ]
    print()
    print(f"{title} ({num_updates} updates)")
    print(format_table(("engine", "legacy (s)", "current (s)", "updates/s", "speedup"), rows))


def _write_json(payload: Dict) -> None:
    existing = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            existing = {}
    existing.update(payload)
    RESULT_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n", encoding="utf-8")


# ----------------------------------------------------------------------
# Benchmarks (pytest entry points)
# ----------------------------------------------------------------------
def _repeats_for(scale: float) -> int:
    """Best-of-3 at smoke scales (noise), single run once the gap is wide."""
    return 3 if scale < 0.3 else 1


def test_addition_hot_path_beats_the_seed():
    """Interned + indexed probes are >=2x the seed throughput on additions."""
    scale = bench_scale_from_env(default=DEFAULT_SCALE)
    updates, workload = _addition_heavy_workload(scale)
    results = _measure(updates, workload, repeats=_repeats_for(scale))
    _print_results("addition-heavy SNB stream (fig12a-style)", len(updates), results)
    _write_json(
        {
            "additions_fig12a": {
                "scale": scale,
                "num_updates": len(updates),
                "num_queries": len(workload.queries),
                "engines": results,
            }
        }
    )
    # The >=2x claim holds from ~scale 0.3 upward (the committed
    # BENCH_hotpath.json is generated at the default scale, where the gap
    # is an order of magnitude).  At CI smoke scales the views are tiny and
    # fixed per-update overheads flatten the ratio, so only answer
    # equivalence plus no-regression is asserted there.
    floor = 2.0 if scale >= 0.3 else 1.0
    for engine_name, r in results.items():
        assert r["speedup"] >= floor, (
            f"{engine_name}: addition-heavy speedup {r['speedup']:.2f}x < {floor}x "
            f"(legacy {r['legacy_s']:.3f}s vs current {r['current_s']:.3f}s)"
        )


def test_deletion_hot_path_does_not_regress():
    """Deletion-heavy streams must not regress vs the seed pipeline (<5 %)."""
    scale = min(bench_scale_from_env(default=DEFAULT_SCALE), DELETION_SCALE_CAP)
    updates, workload = _deletion_heavy_workload(scale)
    num_deletions = sum(1 for update in updates if update.is_deletion)
    results = _measure(updates, workload, repeats=_repeats_for(scale))
    _print_results(
        f"deletion-heavy SNB stream ({num_deletions} deletions)", len(updates), results
    )
    _write_json(
        {
            "deletions": {
                "scale": scale,
                "num_updates": len(updates),
                "num_deletions": num_deletions,
                "num_queries": len(workload.queries),
                "engines": results,
            }
        }
    )
    for engine_name, r in results.items():
        assert r["current_s"] <= r["legacy_s"] * 1.05, (
            f"{engine_name}: deletion-heavy path regressed "
            f"(legacy {r['legacy_s']:.3f}s vs current {r['current_s']:.3f}s)"
        )


# ----------------------------------------------------------------------
# Re-differentiated `+` tier: matches_of polling and deletion invalidation
# ----------------------------------------------------------------------
def _poll_cadence(num_updates: int) -> int:
    """Poll every ~1.25 % of the stream, at least every 5 updates."""
    return max(5, num_updates // 80)


def _drive_with_polls(
    engine_name: str,
    updates: Sequence[Update],
    workload,
    *,
    poll_every: int,
    repeats: int,
):
    """Replay with periodic ``matches_of`` polling; best-of-N total time.

    After every ``poll_every`` updates the first ``MAX_POLLED_QUERIES``
    currently satisfied queries (sorted, so both sides of a comparison poll
    the same ids) are polled.  Returns ``(best seconds, polls, answers,
    answer log)`` where the answer log is the concatenated per-round
    ``(query id, matches_of result)`` pairs — compared byte for byte
    between a base engine and its ``+`` variant.
    """
    best = float("inf")
    log: List = []
    polls = answers = 0
    for _ in range(repeats):
        engine = create_engine(engine_name)
        runner = StreamRunner(engine)
        runner.index_queries(workload.queries)
        log = []
        polls = answers = 0
        start = time.perf_counter()
        for index in range(0, len(updates), poll_every):
            engine.on_batch(updates[index : index + poll_every])
            for query_id in sorted(engine.satisfied_queries())[:MAX_POLLED_QUERIES]:
                matches = engine.matches_of(query_id)
                polls += 1
                answers += len(matches)
                log.append((query_id, matches))
        best = min(best, time.perf_counter() - start)
    return best, polls, answers, log


def _measure_pairs(updates, workload, *, repeats: int) -> Dict[str, Dict[str, float]]:
    """Base-vs-`+` timings (and answer identity) on one polled workload."""
    poll_every = _poll_cadence(len(updates))
    results: Dict[str, Dict[str, float]] = {}
    for base_name, plus_name in ENGINE_PAIRS:
        base_s, polls, answers, base_log = _drive_with_polls(
            base_name, updates, workload, poll_every=poll_every, repeats=repeats
        )
        plus_s, _, _, plus_log = _drive_with_polls(
            plus_name, updates, workload, poll_every=poll_every, repeats=repeats
        )
        # The materialised answers must be byte-identical to the base
        # engine's freshly joined ones, round for round.
        assert json.dumps(base_log) == json.dumps(plus_log), base_name
        results[base_name] = {
            "base_s": round(base_s, 4),
            "plus_s": round(plus_s, 4),
            "speedup": round(base_s / plus_s, 2),
            "poll_every": poll_every,
            "polls": polls,
            "answers_decoded": answers,
        }
    return results


def _print_pair_results(title: str, num_updates: int, results: Dict[str, Dict]) -> None:
    rows = [
        (
            f"{name} vs {name}+",
            f"{r['base_s']:.3f}",
            f"{r['plus_s']:.3f}",
            r["polls"],
            f"{r['speedup']:.2f}x",
        )
        for name, r in results.items()
    ]
    print()
    print(f"{title} ({num_updates} updates)")
    print(format_table(("pair", "base (s)", "+ (s)", "polls", "speedup"), rows))


def test_matches_of_polling_plus_engines_beat_base():
    """Answer materialisation beats per-poll joins on a matches_of-heavy stream."""
    scale = min(bench_scale_from_env(default=DEFAULT_SCALE), POLLING_SCALE_CAP)
    updates, workload = _addition_heavy_workload(scale)
    results = _measure_pairs(updates, workload, repeats=_repeats_for(scale))
    _print_pair_results("matches_of-heavy SNB stream", len(updates), results)
    _write_json(
        {
            "matches_of_polling": {
                "scale": scale,
                "num_updates": len(updates),
                "num_queries": len(workload.queries),
                "pairs": results,
            }
        }
    )
    ceiling = 1.0 if scale >= STRICT_PAIR_SCALE else PAIR_NOISE_TOLERANCE
    for base_name, r in results.items():
        assert r["plus_s"] < r["base_s"] * ceiling, (
            f"{base_name}+: polling workload not faster than {base_name} "
            f"({r['plus_s']:.3f}s vs {r['base_s']:.3f}s)"
        )


def test_deletion_invalidation_plus_engines_beat_base():
    """Maintained answers beat re-derivation under deletions + polling."""
    scale = min(bench_scale_from_env(default=DEFAULT_SCALE), POLLING_SCALE_CAP)
    updates, workload = _deletion_heavy_workload(scale)
    num_deletions = sum(1 for update in updates if update.is_deletion)
    results = _measure_pairs(updates, workload, repeats=_repeats_for(scale))
    _print_pair_results(
        f"deletion-invalidation SNB stream ({num_deletions} deletions)",
        len(updates),
        results,
    )
    _write_json(
        {
            "deletion_invalidation": {
                "scale": scale,
                "num_updates": len(updates),
                "num_deletions": num_deletions,
                "num_queries": len(workload.queries),
                "pairs": results,
            }
        }
    )
    # Under deletion churn the tiers differ by maintenance strategy: TRIC+
    # patches its counted answer relations with negative deltas, so it must
    # beat base TRIC strictly; INV+/INC+ are recompute-style caches whose
    # entries are dirtied by almost every deletion round, so they converge
    # to their base engines here (their strict win is the polling workload)
    # and are held to a no-regression bound instead.
    strict = scale >= STRICT_PAIR_SCALE
    for base_name, r in results.items():
        if strict and base_name == "TRIC":
            assert r["plus_s"] < r["base_s"], (
                f"TRIC+: invalidation workload not faster than TRIC "
                f"({r['plus_s']:.3f}s vs {r['base_s']:.3f}s)"
            )
        else:
            assert r["plus_s"] <= r["base_s"] * PAIR_NOISE_TOLERANCE, (
                f"{base_name}+: invalidation workload regressed vs {base_name} "
                f"({r['plus_s']:.3f}s vs {r['base_s']:.3f}s)"
            )


# ----------------------------------------------------------------------
# Subscription delivery vs poll_every polling (the pub/sub serving layer)
# ----------------------------------------------------------------------
#: Queries a serving listener subscribes to (the k of k-of-n) and the shard
#: counts the broker is exercised over.
SUBSCRIBED_QUERIES = 5
SHARD_COUNTS = (1, 2, 4)


def _drive_poll_all(updates: Sequence[Update], workload, *, poll_every: int, repeats: int):
    """poll_every baseline: decode every satisfied query's answers per round."""
    best = float("inf")
    polls = answers = 0
    engine = None
    for _ in range(repeats):
        engine = create_engine("TRIC+")
        runner = StreamRunner(engine)
        runner.index_queries(workload.queries)
        polls = answers = 0
        start = time.perf_counter()
        for index in range(0, len(updates), poll_every):
            engine.on_batch(updates[index : index + poll_every])
            for query_id in sorted(engine.satisfied_queries()):
                answers += len(engine.matches_of(query_id))
                polls += 1
        best = min(best, time.perf_counter() - start)
    return best, polls, answers, engine


def _drive_subscribed(
    updates: Sequence[Update], workload, *, shards: int, poll_every: int, repeats: int
):
    """Subscription mode: broker-delivered match deltas for k-of-n queries."""
    from repro.engines import create_sharded_engine
    from repro.bench.experiments import pick_subscribed_queries
    from repro.pubsub import SubscriptionBroker, replay_deltas

    best = float("inf")
    received: List = []
    engine = None
    subscribed: List[str] = []
    for _ in range(repeats):
        engine = create_sharded_engine("TRIC+", shards)
        runner = StreamRunner(engine)
        runner.index_queries(workload.queries)
        broker = SubscriptionBroker(engine)
        subscribed = pick_subscribed_queries(list(engine.queries), SUBSCRIBED_QUERIES)
        subscription = broker.subscribe("bench", subscribed)
        received = []
        start = time.perf_counter()
        for index in range(0, len(updates), poll_every):
            broker.on_batch(updates[index : index + poll_every])
            received.extend(subscription.drain())
        best = min(best, time.perf_counter() - start)
    state = replay_deltas(received)
    reconstructed = {
        query_id: sorted(state.get(query_id, set())) for query_id in subscribed
    }
    return best, received, reconstructed, subscribed, engine


def test_subscription_delivery_beats_polling():
    """Broker-delivered k-of-n match deltas beat polling every satisfied query.

    Also the sharding equivalence gate: the reconstructed per-query states
    (cumulative delivered deltas) must be byte-identical across 1, 2 and 4
    shards and equal to a fresh ``matches_of`` on every side.
    """
    scale = min(bench_scale_from_env(default=DEFAULT_SCALE), POLLING_SCALE_CAP)
    updates, workload = _deletion_heavy_workload(scale)
    poll_every = _poll_cadence(len(updates))
    repeats = _repeats_for(scale)

    poll_s, polls, answers_decoded, poll_engine = _drive_poll_all(
        updates, workload, poll_every=poll_every, repeats=repeats
    )

    per_shard: Dict[str, Dict[str, float]] = {}
    reconstructions: Dict[int, str] = {}
    deltas_delivered = 0
    subscribed: List[str] = []
    for shards in SHARD_COUNTS:
        sub_s, received, reconstructed, subscribed, engine = _drive_subscribed(
            updates, workload, shards=shards, poll_every=poll_every, repeats=repeats
        )
        # Byte-identity gate 1: delivered deltas compose to fresh matches_of
        # on the engine that produced them *and* on the polling baseline.
        for query_id in subscribed:
            expected = [
                tuple(sorted(b.items())) for b in engine.matches_of(query_id)
            ]
            assert reconstructed[query_id] == sorted(set(expected)), (shards, query_id)
            baseline = [
                tuple(sorted(b.items())) for b in poll_engine.matches_of(query_id)
            ]
            assert sorted(set(baseline)) == reconstructed[query_id], (shards, query_id)
        reconstructions[shards] = json.dumps(
            {q: [list(map(list, key)) for key in rows] for q, rows in reconstructed.items()},
            sort_keys=True,
        )
        deltas_delivered = len(received)
        per_shard[str(shards)] = round(sub_s, 4)

    # Byte-identity gate 2: identical reconstructions across shard counts.
    assert len(set(reconstructions.values())) == 1, "sharded answers diverged"

    results = {
        "TRIC+": {
            "poll_all_s": round(poll_s, 4),
            "polls": polls,
            "answers_decoded": answers_decoded,
            "subscribe_s": per_shard,
            "subscribed": len(subscribed),
            "deltas_delivered": deltas_delivered,
            "speedup_vs_poll": round(poll_s / float(per_shard["1"]), 2),
        }
    }
    print()
    print(
        f"subscription vs polling ({len(updates)} updates, poll_every={poll_every}, "
        f"{len(subscribed)}-of-{len(workload.queries)} subscribed)"
    )
    rows = [
        (
            "TRIC+",
            f"{poll_s:.3f}",
            *(f"{per_shard[str(s)]:.3f}" for s in SHARD_COUNTS),
            f"{results['TRIC+']['speedup_vs_poll']:.2f}x",
        )
    ]
    print(
        format_table(
            ("engine", "poll-all (s)", "sub x1 (s)", "sub x2 (s)", "sub x4 (s)", "speedup"),
            rows,
        )
    )
    _write_json(
        {
            "subscription_delivery": {
                "scale": scale,
                "num_updates": len(updates),
                "num_queries": len(workload.queries),
                "poll_every": poll_every,
                "engines": results,
            }
        }
    )
    # Delivering deltas for k watched queries must beat decoding every
    # satisfied query's full answer set each round.  At the committed scale
    # this holds for *every* shard count (the replay is single-threaded, so
    # sharding adds serialized fan-out overhead and can only lose ground
    # here — its win is per-shard parallelism and index locality at real
    # deployment scale); below the strict scale the answer sets are tiny
    # and fixed per-shard overheads dominate, so CI smokes hold only the
    # unsharded comparison to a noise bound (identity stays asserted above).
    strict = scale >= STRICT_PAIR_SCALE
    for shards in SHARD_COUNTS if strict else (1,):
        sub_s = float(per_shard[str(shards)])
        ceiling = 1.0 if strict else PAIR_NOISE_TOLERANCE
        assert sub_s < poll_s * ceiling, (
            f"subscription mode (x{shards}) not cheaper than polling "
            f"({sub_s:.3f}s vs {poll_s:.3f}s)"
        )


# ----------------------------------------------------------------------
# Affected-aware flushing vs PR 4's flush-everything broker
# ----------------------------------------------------------------------
#: Engines compared on the affected-flush workload: the slow path (base
#: TRIC snapshot-diffs matches_of for every flushed query) is where
#: skipping pays most; the fast path (TRIC+ delta-log reads) shows the
#: remaining per-query bookkeeping being skipped too.
AFFECTED_FLUSH_ENGINES = ("TRIC", "TRIC+")

#: Watched queries for the affected-flush comparison: a dashboard-style
#: listener over a quarter of the query database, driven per update — the
#: tick shape where "most ticks touch few watched queries" and PR 4's
#: flush-everything broker pays per-watched-query work every single tick.
AFFECTED_WATCHED_QUERIES = 20


def _drive_broker_subscribed(
    engine_name: str,
    updates: Sequence[Update],
    workload,
    *,
    affected_flush: bool,
    batch_size: int,
    repeats: int,
    shards: int = 1,
    executor: str = "serial",
    watched: int = SUBSCRIBED_QUERIES,
    group_factory=None,
):
    """Replay through a subscribed broker; best-of-N seconds plus state.

    ``batch_size == 1`` drives per-update ticks (``broker.on_update``),
    larger values micro-batch ticks.  Returns ``(best seconds,
    reconstructed states, subscribed ids, flush counters, engine)`` — the
    reconstruction (fold of every delivered delta) is what the
    byte-identity assertions compare across brokers, executors and shard
    counts.  ``group_factory`` swaps in a custom sharded-group class (the
    per-run fan-out baseline).
    """
    from repro.bench.experiments import pick_subscribed_queries
    from repro.engines import create_sharded_engine
    from repro.pubsub import SubscriptionBroker, replay_deltas

    best = float("inf")
    received: List = []
    engine = None
    broker = None
    subscribed: List[str] = []
    for _ in range(repeats):
        if engine is not None and hasattr(engine, "close"):
            engine.close()
        if group_factory is not None:
            engine = group_factory()
        else:
            engine = create_sharded_engine(engine_name, shards, executor=executor)
        runner = StreamRunner(engine)
        runner.index_queries(workload.queries)
        broker = SubscriptionBroker(engine, affected_flush=affected_flush)
        subscribed = pick_subscribed_queries(list(engine.queries), watched)
        subscription = broker.subscribe("bench", subscribed)
        received = []
        start = time.perf_counter()
        if batch_size == 1:
            for update in updates:
                broker.on_update(update)
                received.extend(subscription.drain())
        else:
            for index in range(0, len(updates), batch_size):
                broker.on_batch(updates[index : index + batch_size])
                received.extend(subscription.drain())
        best = min(best, time.perf_counter() - start)
    state = replay_deltas(received)
    reconstructed = {
        query_id: sorted(state.get(query_id, set())) for query_id in subscribed
    }
    counters = {
        "flushes": broker.flushes,
        "queries_flushed": broker.queries_flushed,
        "queries_skipped": broker.queries_skipped,
    }
    return best, reconstructed, subscribed, counters, engine


def test_affected_flush_beats_flush_everything():
    """Consulting the BatchReport beats flushing every watched query per tick.

    Per-update ticks over the deletion-heavy stream with a dashboard-style
    listener (20 of the ~80 queries watched) are exactly the shape the
    report targets: most ticks touch few (often none) of the watched
    queries, so the flush-everything broker pays per-watched-query work —
    a full ``matches_of`` snapshot diff per tick on the slow path — that
    the affected-aware broker provably skips.  Delivered states must stay
    byte-identical, and equal to a fresh ``matches_of``, on both sides.
    """
    scale = min(bench_scale_from_env(default=DEFAULT_SCALE), POLLING_SCALE_CAP)
    updates, workload = _deletion_heavy_workload(scale)
    repeats = _repeats_for(scale)

    results: Dict[str, Dict[str, object]] = {}
    for engine_name in AFFECTED_FLUSH_ENGINES:
        flush_all_s, state_all, subscribed, _, _ = _drive_broker_subscribed(
            engine_name,
            updates,
            workload,
            affected_flush=False,
            batch_size=1,
            repeats=repeats,
            watched=AFFECTED_WATCHED_QUERIES,
        )
        affected_s, state_affected, _, counters, engine = _drive_broker_subscribed(
            engine_name,
            updates,
            workload,
            affected_flush=True,
            batch_size=1,
            repeats=repeats,
            watched=AFFECTED_WATCHED_QUERIES,
        )
        # Byte-identity: skipping flushes must not change what is delivered.
        assert state_affected == state_all, engine_name
        for query_id in subscribed:
            fresh = sorted(
                {tuple(sorted(b.items())) for b in engine.matches_of(query_id)}
            )
            assert state_affected[query_id] == fresh, (engine_name, query_id)
        results[engine_name] = {
            "flush_all_s": round(flush_all_s, 4),
            "affected_s": round(affected_s, 4),
            "speedup": round(flush_all_s / affected_s, 2),
            "queries_flushed": counters["queries_flushed"],
            "queries_skipped": counters["queries_skipped"],
        }
    print()
    print(
        f"affected-aware flush vs flush-everything ({len(updates)} per-update "
        f"ticks, {AFFECTED_WATCHED_QUERIES} watched)"
    )
    rows = [
        (
            name,
            f"{r['flush_all_s']:.3f}",
            f"{r['affected_s']:.3f}",
            r["queries_skipped"],
            f"{r['speedup']:.2f}x",
        )
        for name, r in results.items()
    ]
    print(
        format_table(
            ("engine", "flush-all (s)", "affected (s)", "skipped", "speedup"), rows
        )
    )
    _write_json(
        {
            "affected_flush": {
                "scale": scale,
                "num_updates": len(updates),
                "num_queries": len(workload.queries),
                "batch_size": 1,
                "subscribed": AFFECTED_WATCHED_QUERIES,
                "engines": results,
            }
        }
    )
    # The skip accounting itself must show the workload shape: most ticks
    # touch few watched queries.
    for engine_name, r in results.items():
        assert r["queries_skipped"] > r["queries_flushed"], engine_name
    # >=1.5x on the slow path at the committed scale (the affected set
    # spares a full matches_of diff per skipped query per tick); the
    # fast path must at least never regress.  Smoke scales only guard
    # against gross regression (tiny answer sets flatten the ratio).
    strict = scale >= STRICT_PAIR_SCALE
    floor = 1.5 if strict else 1.0 / PAIR_NOISE_TOLERANCE
    assert results["TRIC"]["speedup"] >= floor, (
        f"affected-aware flushing only {results['TRIC']['speedup']:.2f}x vs "
        f"flush-everything on TRIC (target {floor}x)"
    )
    assert results["TRIC+"]["speedup"] >= (1.0 if strict else 1.0 / PAIR_NOISE_TOLERANCE), (
        f"affected-aware flushing regressed on TRIC+ "
        f"({results['TRIC+']['speedup']:.2f}x)"
    )


# ----------------------------------------------------------------------
# Parallel shard fan-out: serial vs thread vs process executors
# ----------------------------------------------------------------------
SHARD_EXECUTORS_BENCHED = ("serial", "thread", "process")

#: Micro-batch size for the executor grid: large enough that per-batch
#: shard work dominates dispatch overhead (the regime sharded serving
#: targets — repro-serve and the harness batch their ticks), and the
#: regime where the per-run fan-out baseline pays one shard call per
#: add/delete run instead of one per batch.
PARALLEL_BATCH_SIZE = 128

#: Tolerated wall-clock ratio vs the per-run fan-out baseline for the
#: process executor on a single-CPU host, where its IPC cost buys nothing
#: back (no second core to overlap on) — the bound that keeps the IPC
#: overhead honest instead of pretending a parallelism win.
PROCESS_SINGLE_CPU_FLOOR = 0.5


class _PerRunFanOutGroup(ShardedEngineGroup):
    """PR 4's fan-out, byte for byte: one shard call per per-kind run.

    The current group hands every shard its whole label-relevant batch
    subsequence in a single call; this baseline reverts to the base-class
    ``on_batch`` (split into per-kind runs, fan each run out separately),
    which is what made sharding a pure wall-clock loss in PR 4.
    """

    on_batch = ContinuousEngine.on_batch


def test_parallel_shard_fanout():
    """Concurrent shard execution, byte-identical across executors x shards.

    PR 4 measured that per-run serialized fan-out makes sharding a
    wall-clock *loss*.  This PR attacks both halves: batches now reach each
    shard as one call (run splitting happens inside the shard), and the
    call layer is a pluggable executor.  The grid records
    serial/thread/process x 1/2/4 shards on the deletion-heavy
    subscription workload against the PR 4 per-run baseline, asserts every
    cell reconstructs the same answer states byte for byte, and gates the
    in-process executors on beating that baseline (fan-out scaling >= 1 —
    sharded ticks no longer pay the per-run fan-out tax).  True
    multi-core speedup needs more than one CPU by definition; the host's
    CPU count is committed with the numbers, and on a multi-core host the
    process executor must additionally beat serial fan-out outright.
    """
    scale = min(bench_scale_from_env(default=DEFAULT_SCALE), POLLING_SCALE_CAP)
    updates, workload = _deletion_heavy_workload(scale)
    batch_size = PARALLEL_BATCH_SIZE
    repeats = _repeats_for(scale)
    cpus = os.cpu_count() or 1

    timings: Dict[str, Dict[str, float]] = {"per_run": {}}
    shard_calls: Dict[str, Dict[str, int]] = {"per_run": {}}
    reconstructions: Dict[Tuple[str, int], str] = {}

    def run_cell(executor, shards, group_factory=None):
        seconds, reconstructed, subscribed, _, engine = _drive_broker_subscribed(
            "TRIC+",
            updates,
            workload,
            affected_flush=True,
            batch_size=batch_size,
            repeats=repeats,
            shards=shards,
            executor=executor,
            group_factory=group_factory,
        )
        for query_id in subscribed:
            fresh = sorted(
                {tuple(sorted(b.items())) for b in engine.matches_of(query_id)}
            )
            assert reconstructed[query_id] == fresh, (executor, shards, query_id)
        calls = 0
        if hasattr(engine, "shard_statistics"):
            calls = sum(engine.describe()["shard_batches"])
        if hasattr(engine, "close"):
            engine.close()
        reconstructions[(executor, shards)] = json.dumps(
            {
                q: [list(map(list, key)) for key in rows]
                for q, rows in reconstructed.items()
            },
            sort_keys=True,
        )
        return round(seconds, 4), calls

    for executor in SHARD_EXECUTORS_BENCHED:
        timings[executor] = {}
        shard_calls[executor] = {}
        for shards in SHARD_COUNTS:
            if shards == 1 and executor != "serial":
                continue  # one shard is the unsharded engine; executor moot
            timings[executor][str(shards)], shard_calls[executor][str(shards)] = (
                run_cell(executor, shards)
            )
    for shards in (2, 4):
        timings["per_run"][str(shards)], shard_calls["per_run"][str(shards)] = (
            run_cell(
                "per-run",
                shards,
                group_factory=lambda shards=shards: _PerRunFanOutGroup(
                    "TRIC+", shards, assignment="hash"
                ),
            )
        )
    assert len(set(reconstructions.values())) == 1, (
        "answers diverged across executors/shard counts"
    )

    unsharded_s = timings["serial"]["1"]
    fanout_speedup = {
        executor: {
            shards: round(timings["per_run"][shards] / seconds, 2)
            for shards, seconds in shard_timings.items()
            if shards != "1"
        }
        for executor, shard_timings in timings.items()
        if executor != "per_run"
    }
    scaling_vs_unsharded = {
        executor: {
            shards: round(unsharded_s / seconds, 2)
            for shards, seconds in shard_timings.items()
            if shards != "1"
        }
        for executor, shard_timings in timings.items()
    }
    print()
    print(
        f"parallel shard fan-out ({len(updates)} updates, batch={batch_size}, "
        f"{SUBSCRIBED_QUERIES} subscribed, {cpus} cpu(s); "
        "fan-out scaling = per-run baseline / executor time)"
    )
    rows = []
    for executor in ("per_run",) + SHARD_EXECUTORS_BENCHED:
        shard_timings = timings[executor]
        rows.append(
            (
                executor,
                f"{shard_timings['1']:.3f}" if "1" in shard_timings else "-",
                f"{shard_timings['2']:.3f}",
                f"{shard_timings['4']:.3f}",
                *(
                    (
                        f"{fanout_speedup[executor][s]:.2f}x"
                        if executor in fanout_speedup
                        else "1.00x"
                    )
                    for s in ("2", "4")
                ),
            )
        )
    print(
        format_table(
            ("executor", "x1 (s)", "x2 (s)", "x4 (s)", "fan-out x2", "fan-out x4"),
            rows,
        )
    )
    _write_json(
        {
            "parallel_shards": {
                "scale": scale,
                "num_updates": len(updates),
                "num_queries": len(workload.queries),
                "batch_size": batch_size,
                "subscribed": SUBSCRIBED_QUERIES,
                "cpus": cpus,
                "seconds": timings,
                "shard_calls": shard_calls,
                "fanout_speedup_vs_per_run": fanout_speedup,
                "scaling_vs_unsharded": scaling_vs_unsharded,
            }
        }
    )
    # Deterministic gate on the mechanism itself: the single-call fan-out
    # issues one shard call per batch per relevant shard, where the
    # per-run baseline issues one per add/delete *run* — the overhead that
    # made PR 4's sharding a wall-clock loss.  (Timer-free, so it holds at
    # every scale.)
    for shards in ("2", "4"):
        current = shard_calls["serial"][shards]
        assert shard_calls["thread"][shards] == current, "call counts diverged"
        assert shard_calls["process"][shards] == current, "call counts diverged"
        assert shard_calls["per_run"][shards] >= 4 * current, (
            f"per-run baseline at x{shards} no longer pays per-run fan-out "
            f"({shard_calls['per_run'][shards]} vs {current} calls) — "
            "baseline broken?"
        )
    strict = scale >= STRICT_PAIR_SCALE
    if strict:
        for shards in ("2", "4"):
            # In-process executors must at least match PR 4's per-run
            # fan-out (parity within timer noise on a single-CPU host,
            # where concurrency cannot buy wall-clock back): sharded ticks
            # no longer pay the per-run fan-out tax.
            for executor in ("serial", "thread"):
                assert fanout_speedup[executor][shards] >= 0.85, (
                    f"{executor} fan-out at x{shards} behind the per-run "
                    f"baseline ({fanout_speedup[executor][shards]:.2f}x)"
                )
            # The process executor's IPC must stay bounded everywhere, and
            # on a real multi-core host it must win outright.
            floor = 1.0 if cpus >= 2 else PROCESS_SINGLE_CPU_FLOOR
            assert fanout_speedup["process"][shards] >= floor, (
                f"process fan-out at x{shards} below its floor "
                f"({fanout_speedup['process'][shards]:.2f}x < {floor}x, "
                f"{cpus} cpu(s))"
            )


# ----------------------------------------------------------------------
# Durability: journal overhead and snapshot/restore latency
# ----------------------------------------------------------------------
#: Micro-batch size for the durability comparison — one journal append
#: (and, with fsync on, one ``fsync``) per batch of this many additions.
DURABILITY_BATCH_SIZE = 32


def test_durability_overhead():
    """What the write-ahead journal costs, and what a restore buys back.

    Replays the addition-heavy stream three ways — no journal, journal
    without fsync, journal with fsync-per-batch (the durability contract) —
    asserting the per-batch reports byte-identical across all three, then
    times a full snapshot write and a cold ``DurableEngine.recover`` of the
    final state.  The recovered engine must answer byte-identically to the
    engine that never stopped.  No speed gate: fsync cost is storage
    hardware, not code — the committed numbers ARE the deliverable.
    """
    import shutil
    import tempfile

    from repro.persistence import DurableEngine

    scale = min(bench_scale_from_env(default=DEFAULT_SCALE), POLLING_SCALE_CAP)
    updates, workload = _addition_heavy_workload(scale)
    repeats = _repeats_for(scale)
    batch_size = DURABILITY_BATCH_SIZE

    def drive(mode: str, directory):
        best = float("inf")
        reports: List = []
        engine = None
        for _ in range(repeats):
            shutil.rmtree(directory, ignore_errors=True)
            plain = create_engine("TRIC+")
            if mode == "plain":
                engine = plain
            else:
                engine = DurableEngine(
                    plain, directory, fsync=(mode == "journal_fsync")
                )
            runner = StreamRunner(engine)
            runner.index_queries(workload.queries)
            reports = []
            start = time.perf_counter()
            for index in range(0, len(updates), batch_size):
                reports.append(engine.on_batch(updates[index : index + batch_size]))
            best = min(best, time.perf_counter() - start)
        return best, reports, engine

    with tempfile.TemporaryDirectory() as scratch:
        directory = Path(scratch) / "durability"
        plain_s, plain_reports, _ = drive("plain", directory)
        nofsync_s, nofsync_reports, _ = drive("journal_nofsync", directory)
        fsync_s, fsync_reports, durable = drive("journal_fsync", directory)

        # Journaling must be behaviourally invisible, report for report.
        assert plain_reports == nofsync_reports == fsync_reports
        journal_bytes = durable.journal.size_bytes

        start = time.perf_counter()
        durable.write_snapshot()
        snapshot_s = time.perf_counter() - start
        snapshot_bytes = (directory / "snapshot.bin").stat().st_size
        durable.close()

        start = time.perf_counter()
        recovered = DurableEngine.recover(directory)
        restore_s = time.perf_counter() - start
        assert recovered.satisfied_queries() == durable.satisfied_queries()
        for query_id in sorted(recovered.satisfied_queries())[:MAX_POLLED_QUERIES]:
            assert recovered.matches_of(query_id) == durable.matches_of(query_id)
        recovered.close()

    results = {
        "TRIC+": {
            "plain_s": round(plain_s, 4),
            "journal_s": round(nofsync_s, 4),
            "journal_fsync_s": round(fsync_s, 4),
            "plain_updates_per_s": round(len(updates) / plain_s, 1),
            "journal_updates_per_s": round(len(updates) / nofsync_s, 1),
            "journal_fsync_updates_per_s": round(len(updates) / fsync_s, 1),
            "fsync_overhead": round(fsync_s / plain_s, 2),
            "journal_bytes": journal_bytes,
            "snapshot_s": round(snapshot_s, 4),
            "snapshot_bytes": snapshot_bytes,
            "restore_s": round(restore_s, 4),
        }
    }
    print()
    print(
        f"durability overhead ({len(updates)} additions, journal append per "
        f"{batch_size}-update batch)"
    )
    rows = [
        (
            "TRIC+",
            f"{plain_s:.3f}",
            f"{nofsync_s:.3f}",
            f"{fsync_s:.3f}",
            f"{snapshot_s * 1000:.1f}",
            f"{restore_s * 1000:.1f}",
        )
    ]
    print(
        format_table(
            (
                "engine",
                "no journal (s)",
                "journal (s)",
                "journal+fsync (s)",
                "snapshot (ms)",
                "restore (ms)",
            ),
            rows,
        )
    )
    _write_json(
        {
            "durability": {
                "scale": scale,
                "num_updates": len(updates),
                "num_queries": len(workload.queries),
                "batch_size": batch_size,
                "engines": results,
            }
        }
    )


# ----------------------------------------------------------------------
# Replication: replica read scaling, failover & rolling-restart pauses
# ----------------------------------------------------------------------
#: Replica counts per shard for the read-throughput grid.
REPLICA_COUNTS = (0, 1, 2)
#: Read rounds over the polled query subset per grid cell.
REPLICA_READ_ROUNDS = 3
#: Primary kills (and rolling restarts) sampled for the pause percentiles.
FAILOVER_SAMPLES = 3


def _pause_percentiles(samples: Sequence[float]) -> Dict[str, float]:
    ordered = sorted(samples)

    def pick(q: float) -> float:
        return round(ordered[min(len(ordered) - 1, int(q * len(ordered)))], 6)

    return {"p50": pick(0.5), "p90": pick(0.9), "max": round(ordered[-1], 6)}


def test_replication_reads_and_pauses():
    """Replica read scaling plus failover and rolling-restart pauses.

    Three measurements over the deletion-heavy stream on the process
    executor: (1) ``matches_of`` read throughput at 0/1/2 replicas per
    shard — with replicas attached the reads must actually be served by
    them, and every cell's answers must be byte-identical; (2) the pause
    a SIGKILLed primary imposes on the next batch (replica promotion vs
    the 0-replica snapshot-respawn path); (3) the pause of a full
    ``rolling_restart()``.  No speed gate — replica reads pay one IPC
    round-trip either way, so single-host throughput parity plus the
    mechanics assertions (reads served by replicas, promotions not
    respawns, zero degraded shards) are the deliverable, and the
    committed pause percentiles are the paper-facing numbers.
    """
    scale = min(bench_scale_from_env(default=DEFAULT_SCALE), POLLING_SCALE_CAP)
    updates, workload = _deletion_heavy_workload(scale)
    batch_size = PARALLEL_BATCH_SIZE
    cpus = os.cpu_count() or 1

    def build_group(replicas):
        group = ShardedEngineGroup("TRIC+", 2, executor="process", replicas=replicas)
        group.register_all(workload.queries)
        for index in range(0, len(updates), batch_size):
            group.on_batch(updates[index : index + batch_size])
        return group

    def answers_of(group, queries):
        return json.dumps(
            {
                query_id: [
                    sorted(map(list, sorted(binding.items())))
                    for binding in group.matches_of(query_id)
                ]
                for query_id in queries
            },
            sort_keys=True,
        )

    # -- read throughput at 0/1/2 replicas per shard -------------------
    read_grid: Dict[str, Dict[str, float]] = {}
    answers: Dict[int, str] = {}
    for replicas in REPLICA_COUNTS:
        group = build_group(replicas)
        queries = sorted(group.queries)[:MAX_POLLED_QUERIES]
        reads = 0
        start = time.perf_counter()
        for _ in range(REPLICA_READ_ROUNDS):
            for query_id in queries:
                group.matches_of(query_id)
                reads += 1
        read_s = time.perf_counter() - start
        answers[replicas] = answers_of(group, queries)
        served = sum(
            info["replicas"]["reads_served"]
            for info in group.replication_statistics()
            if info["replicas"] is not None
        )
        if replicas:
            assert served >= reads, "replica reads not routed to replicas"
        read_grid[str(replicas)] = {
            "seconds": round(read_s, 4),
            "reads": reads,
            "reads_per_s": round(reads / read_s, 1),
            "served_by_replicas": served,
        }
        group.close()
    assert len(set(answers.values())) == 1, "replica answers diverged"

    # -- failover pause: SIGKILL a primary, time the next batch --------
    def sample_failover(replicas):
        group = build_group(replicas)
        tick = updates[:batch_size]
        baseline = time.perf_counter()
        group.on_batch(tick)
        baseline = time.perf_counter() - baseline
        pauses = []
        for index in range(FAILOVER_SAMPLES):
            group.shards[index % 2].kill_worker()
            start = time.perf_counter()
            group.on_batch(tick)
            pauses.append(time.perf_counter() - start)
        stats = group.replication_statistics()
        promotions = sum(info["promotions"] for info in stats)
        respawns = sum(info["respawns"] for info in stats)
        degraded = group.describe()["degraded_shards"]
        group.close()
        return baseline, pauses, promotions, respawns, degraded

    promote_base, promote_pauses, promotions, promote_respawns, degraded = (
        sample_failover(replicas=1)
    )
    assert promotions == FAILOVER_SAMPLES, "primary kills did not promote"
    assert promote_respawns == 0, "promotion fell back to respawn"
    assert degraded == 0
    respawn_base, respawn_pauses, _, respawns, degraded = sample_failover(replicas=0)
    assert respawns == FAILOVER_SAMPLES, "primary kills did not respawn"
    assert degraded == 0

    # -- rolling-restart pause -----------------------------------------
    group = build_group(replicas=1)
    restart_pauses = []
    for _ in range(FAILOVER_SAMPLES):
        report = group.rolling_restart()
        restart_pauses.extend(report["pause_seconds"])
    assert group.rolling_restarts == FAILOVER_SAMPLES
    queries = sorted(group.queries)[:MAX_POLLED_QUERIES]
    assert answers_of(group, queries) == answers[1], "restart changed answers"
    group.close()

    print()
    print(
        f"replication ({len(updates)} updates, 2 shards, {cpus} cpu(s); "
        f"reads over {MAX_POLLED_QUERIES} queries x {REPLICA_READ_ROUNDS} rounds)"
    )
    rows = [
        (
            f"x{replicas}",
            f"{read_grid[str(replicas)]['seconds']:.3f}",
            f"{read_grid[str(replicas)]['reads_per_s']:.0f}",
            str(read_grid[str(replicas)]["served_by_replicas"]),
        )
        for replicas in REPLICA_COUNTS
    ]
    print(format_table(("replicas", "read (s)", "reads/s", "via replicas"), rows))
    rows = [
        ("promote (1 replica)", *(f"{p * 1000:.1f}" for p in sorted(promote_pauses))),
        ("respawn (0 replicas)", *(f"{p * 1000:.1f}" for p in sorted(respawn_pauses))),
        (
            "rolling restart/shard",
            *(f"{p * 1000:.1f}" for p in sorted(restart_pauses)[:FAILOVER_SAMPLES]),
        ),
    ]
    print(format_table(("pause (ms, sorted)", "fastest", "mid", "slowest"), rows))
    _write_json(
        {
            "replication": {
                "scale": scale,
                "num_updates": len(updates),
                "num_queries": len(workload.queries),
                "batch_size": batch_size,
                "cpus": cpus,
                "shards": 2,
                "read_throughput": read_grid,
                "failover_pause_s": {
                    "batch_baseline_s": round(promote_base, 6),
                    "promote": _pause_percentiles(promote_pauses),
                    "respawn": _pause_percentiles(respawn_pauses),
                    "promotions": promotions,
                    "respawns": respawns,
                },
                "rolling_restart_pause_s": dict(
                    _pause_percentiles(restart_pauses),
                    restarts=FAILOVER_SAMPLES,
                    baseline_s=round(respawn_base, 6),
                ),
            }
        }
    )
