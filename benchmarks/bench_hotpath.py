"""Hot-path benchmark: interned vertices + maintained adjacency indexes.

The seed implementation paid two avoidable costs on every probe of the
matching layer: vertex tuples carried full identifier strings, and the
prefix/edge-view hash indexes behind ``extend_path_rows`` and
``_delta_against_parent`` were rebuilt from the full view whenever no
:class:`JoinCache` was active (and the cache itself re-bucketed raw string
tuples).  The current pipeline dictionary-encodes the vertex universe at the
stream boundary and keeps every index *maintained* — patched in place by the
relation's own mutations, never rebuilt — so each probe is O(bucket).

This benchmark replays the same workloads through the current engines and
through ``Legacy*`` engine subclasses that reproduce the seed behaviour
exactly (``NullInterner`` string rows + per-call index builds + JoinCache),
asserts answer equivalence, and writes the measured throughputs to
``BENCH_hotpath.json`` at the repository root so later PRs have a
performance trajectory.

Run directly (the file name keeps it out of the default tier-1 collection)::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py -q -s
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import Dict, List, Sequence

from repro.bench.configs import bench_scale_from_env
from repro.bench.experiments import build_stream, build_workload
from repro.core.tric import TRICEngine
from repro.graph.interning import NullInterner
from repro.graph.elements import Update, delete
from repro.matching.plans import bindings_to_dicts
from repro.matching.relation import Relation, Row, build_row_index
from repro.matching.views import EDGE_VIEW_SCHEMA, EdgeViewRegistry
from repro.query.generator import QueryWorkload
from repro.streams import StreamRunner
from repro.streams.report import format_table

#: Where the committed performance trajectory lives (repository root).
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_hotpath.json"

#: Default scale (overridable via ``REPRO_BENCH_SCALE``).  The hot-path
#: asymmetry only shows once the graph has real density: below ~0.3 the
#: views are so small that fixed per-update overheads dominate both sides.
DEFAULT_SCALE = 0.5

#: Deletion-heavy workload shape (mirrors benchmarks/bench_deletions.py).
DELETION_PRESSURE = 0.45
WARMUP_EDGES = 50

#: Ceiling for the deletion-heavy comparison: the *legacy* invalidation
#: path re-materialises every affected query's full answer set per
#: deletion, which grows combinatorially with graph density — above this
#: scale the seed side alone runs for hours.  The no-regression property
#: being asserted is scale-insensitive, so the deletion workload is capped
#: while the addition workload runs at full requested scale.
DELETION_SCALE_CAP = 0.25


# ----------------------------------------------------------------------
# Legacy engines: the seed hot path, byte for byte
# ----------------------------------------------------------------------
class _LegacyEdgeViewRegistry(EdgeViewRegistry):
    """Seed-style registry: no birth-time adjacency indexes on the views."""

    def register(self, key):
        view = self._views.get(key)
        if view is None:
            view = Relation(EDGE_VIEW_SCHEMA)
            self._views[key] = view
            self._keys_by_label.setdefault(key.label, set()).add(key)
        return view


class LegacyTRICEngine(TRICEngine):
    """TRIC with the seed probe strategy and the string vertex pipeline.

    Every overridden method is the seed implementation verbatim: hash
    indexes over prefix/edge views are rebuilt per call (or fetched from the
    JoinCache when caching is enabled), and rows carry raw identifier
    strings via :class:`NullInterner`.
    """

    name = "TRIC(legacy)"

    def __init__(self, *, cache: bool = False, **kwargs) -> None:
        super().__init__(cache=cache, **kwargs)
        self._views = _LegacyEdgeViewRegistry(interner=NullInterner())

    def _extend_rows(self, rows, base):
        if self._join_cache is not None:
            index = self._join_cache.build_index(base, (0,))
        else:
            index = build_row_index(base.rows, (0,))
        extended: List[Row] = []
        for row in rows:
            bucket = index.get((row[-1],))
            if bucket:
                extended.extend(row + (base_row[1],) for base_row in bucket)
        return extended

    def _delta_against_parent(self, node, new_rows):
        parent_view = node.parent.view
        last_position = parent_view.arity - 1
        if self._join_cache is not None:
            index = self._join_cache.build_index(parent_view, (last_position,))
        elif len(new_rows) > 1:
            index = build_row_index(parent_view.rows, (last_position,))
        else:
            source, target = new_rows[0]
            return [
                parent_row + (target,)
                for parent_row in parent_view.rows
                if parent_row[-1] == source
            ]
        delta: List[Row] = []
        for source, target in new_rows:
            bucket = index.get((source,))
            if bucket:
                delta.extend(parent_row + (target,) for parent_row in bucket)
        return delta

    def _direct_dead_rows(self, node, removed_rows):
        position = node.depth - 1
        view = node.view
        if self._join_cache is not None:
            index = self._join_cache.build_index(view, (position, position + 1))
            dead: List[Row] = []
            for pair in removed_rows:
                dead.extend(index.get(pair, ()))
            return dead
        return [
            row for row in view.rows if (row[position], row[position + 1]) in removed_rows
        ]

    def _propagate_removals(self, node, removed, affected_queries):
        removed_prefixes = set(removed)
        for child in node.children:
            child_view = child.view
            if not child_view:
                continue
            if self._join_cache is not None:
                prefix_positions = tuple(range(child_view.arity - 1))
                index = self._join_cache.build_index(child_view, prefix_positions)
                dead: List[Row] = []
                for prefix in removed_prefixes:
                    dead.extend(index.get(prefix, ()))
            else:
                dead = [row for row in child_view.rows if row[:-1] in removed_prefixes]
            child_removed = child_view.remove_all(dead)
            if not child_removed:
                continue
            affected_queries.update(query_id for query_id, _ in child.query_paths)
            self._propagate_removals(child, child_removed, affected_queries)

    def _evaluate_affected(self, affected):
        matched = set()
        for query_id, deltas in affected.items():
            plan = self._plans[query_id]
            terminals = self._terminals[query_id]
            full_rows = [terminal.view.rows for terminal in terminals]
            binding_relations = (
                self._refresh_binding_relations(query_id) if self.cache_enabled else None
            )
            new_bindings = plan.evaluate_delta(
                deltas,
                full_rows,
                join_cache=self._join_cache,
                binding_relations=binding_relations,
                injective=self.injective,
            )
            if new_bindings:
                matched.add(query_id)
        return frozenset(matched)

    def matches_of(self, query_id):
        self._require_known(query_id)
        plan = self._plans[query_id]
        terminals = self._terminals[query_id]
        full_rows = [terminal.view.rows for terminal in terminals]
        binding_relations = (
            self._refresh_binding_relations(query_id) if self.cache_enabled else None
        )
        bindings = plan.evaluate_full(
            full_rows,
            join_cache=self._join_cache,
            binding_relations=binding_relations,
            injective=self.injective,
        )
        return bindings_to_dicts(bindings)


class LegacyTRICPlusEngine(LegacyTRICEngine):
    """Seed TRIC+: legacy probes backed by the JoinCache."""

    name = "TRIC+(legacy)"

    def __init__(self, **kwargs) -> None:
        super().__init__(cache=True, **kwargs)


_FACTORIES = {
    ("TRIC", "legacy"): LegacyTRICEngine,
    ("TRIC", "current"): TRICEngine,
    ("TRIC+", "legacy"): LegacyTRICPlusEngine,
    ("TRIC+", "current"): lambda: TRICEngine(cache=True),
}


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def _addition_heavy_workload(scale: float) -> tuple[List[Update], QueryWorkload]:
    """A fig12a-style SNB addition stream with the paper's baseline knobs."""
    num_updates = max(400, int(8_000 * scale))
    stream = build_stream("snb", num_updates, seed=17)
    workload = build_workload(
        stream,
        num_queries=max(20, int(400 * scale)),
        avg_edges=5,
        selectivity=0.25,
        overlap=0.35,
        seed=18,
    )
    return list(stream), workload


def _deletion_heavy_workload(scale: float) -> tuple[List[Update], QueryWorkload]:
    """The addition stream interleaved with ~45 % deletions after warm-up."""
    additions, workload = _addition_heavy_workload(scale)
    rng = random.Random(7)
    live: List = []
    updates: List[Update] = []
    for update in additions:
        updates.append(update)
        live.append(update.edge)
        if len(live) > WARMUP_EDGES and rng.random() < DELETION_PRESSURE:
            edge = live.pop(rng.randrange(len(live)))
            updates.append(delete(edge.label, edge.source, edge.target))
    return updates, workload


def _replay(factory, updates: Sequence[Update], workload, *, repeats: int = 3):
    """Best-of-N replay on fresh engines; returns (seconds, satisfied ids)."""
    best, satisfied = float("inf"), frozenset()
    for _ in range(repeats):
        engine = factory()
        runner = StreamRunner(engine)
        runner.index_queries(workload.queries)
        start = time.perf_counter()
        runner.replay(updates)
        best = min(best, time.perf_counter() - start)
        satisfied = engine.satisfied_queries()
    return best, satisfied


def _measure(updates, workload, *, repeats: int) -> Dict[str, Dict[str, float]]:
    """legacy-vs-current timings for TRIC and TRIC+ on one workload."""
    results: Dict[str, Dict[str, float]] = {}
    for engine_name in ("TRIC", "TRIC+"):
        timings = {}
        satisfied = {}
        for variant in ("legacy", "current"):
            elapsed, sat = _replay(
                _FACTORIES[(engine_name, variant)], updates, workload, repeats=repeats
            )
            timings[variant] = elapsed
            satisfied[variant] = sat
        # The legacy pipeline must agree with the current one, answer for answer.
        assert satisfied["legacy"] == satisfied["current"], engine_name
        results[engine_name] = {
            "legacy_s": round(timings["legacy"], 4),
            "current_s": round(timings["current"], 4),
            "legacy_updates_per_s": round(len(updates) / timings["legacy"], 1),
            "current_updates_per_s": round(len(updates) / timings["current"], 1),
            "speedup": round(timings["legacy"] / timings["current"], 2),
        }
    return results


def _print_results(title: str, num_updates: int, results: Dict[str, Dict[str, float]]) -> None:
    rows = [
        (
            name,
            f"{r['legacy_s']:.3f}",
            f"{r['current_s']:.3f}",
            f"{r['current_updates_per_s']:.0f}",
            f"{r['speedup']:.2f}x",
        )
        for name, r in results.items()
    ]
    print()
    print(f"{title} ({num_updates} updates)")
    print(format_table(("engine", "legacy (s)", "current (s)", "updates/s", "speedup"), rows))


def _write_json(payload: Dict) -> None:
    existing = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            existing = {}
    existing.update(payload)
    RESULT_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n", encoding="utf-8")


# ----------------------------------------------------------------------
# Benchmarks (pytest entry points)
# ----------------------------------------------------------------------
def _repeats_for(scale: float) -> int:
    """Best-of-3 at smoke scales (noise), single run once the gap is wide."""
    return 3 if scale < 0.3 else 1


def test_addition_hot_path_beats_the_seed():
    """Interned + indexed probes are >=2x the seed throughput on additions."""
    scale = bench_scale_from_env(default=DEFAULT_SCALE)
    updates, workload = _addition_heavy_workload(scale)
    results = _measure(updates, workload, repeats=_repeats_for(scale))
    _print_results("addition-heavy SNB stream (fig12a-style)", len(updates), results)
    _write_json(
        {
            "additions_fig12a": {
                "scale": scale,
                "num_updates": len(updates),
                "num_queries": len(workload.queries),
                "engines": results,
            }
        }
    )
    # The >=2x claim holds from ~scale 0.3 upward (the committed
    # BENCH_hotpath.json is generated at the default scale, where the gap
    # is an order of magnitude).  At CI smoke scales the views are tiny and
    # fixed per-update overheads flatten the ratio, so only answer
    # equivalence plus no-regression is asserted there.
    floor = 2.0 if scale >= 0.3 else 1.0
    for engine_name, r in results.items():
        assert r["speedup"] >= floor, (
            f"{engine_name}: addition-heavy speedup {r['speedup']:.2f}x < {floor}x "
            f"(legacy {r['legacy_s']:.3f}s vs current {r['current_s']:.3f}s)"
        )


def test_deletion_hot_path_does_not_regress():
    """Deletion-heavy streams must not regress vs the seed pipeline (<5 %)."""
    scale = min(bench_scale_from_env(default=DEFAULT_SCALE), DELETION_SCALE_CAP)
    updates, workload = _deletion_heavy_workload(scale)
    num_deletions = sum(1 for update in updates if update.is_deletion)
    results = _measure(updates, workload, repeats=_repeats_for(scale))
    _print_results(
        f"deletion-heavy SNB stream ({num_deletions} deletions)", len(updates), results
    )
    _write_json(
        {
            "deletions": {
                "scale": scale,
                "num_updates": len(updates),
                "num_deletions": num_deletions,
                "num_queries": len(workload.queries),
                "engines": results,
            }
        }
    )
    for engine_name, r in results.items():
        assert r["current_s"] <= r["legacy_s"] * 1.05, (
            f"{engine_name}: deletion-heavy path regressed "
            f"(legacy {r['legacy_s']:.3f}s vs current {r['current_s']:.3f}s)"
        )
