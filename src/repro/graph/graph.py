"""In-memory attribute graph (directed labelled multigraph).

This is the substrate graph the engines evolve while consuming a stream.  It
supports multi-edges, O(1) amortised insertion, per-label adjacency indexes
(used by the graph-database baseline and by the correctness oracle), and edge
deletions for the extended model of Section 4.3 of the paper.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, Iterator, Set, Tuple

from .elements import Edge, Update, UpdateKind, Vertex
from .errors import EdgeNotFoundError, VertexNotFoundError
from .interning import VertexInterner

__all__ = ["Graph"]


class Graph:
    """A directed labelled multigraph keyed by vertex labels.

    The graph keeps:

    * a multiset of edges (multiplicity counted),
    * per-vertex outgoing / incoming adjacency grouped by edge label,
    * a per-label edge index (``label -> set of (source, target)``).

    These indexes are what a production graph store would maintain and they
    are exactly what the Neo4j-substitute baseline relies on to re-execute
    affected queries.

    Internally the adjacency structures carry interned vertex ids (one
    dictionary-encoded int per distinct identifier string) and decode back
    to strings at the public navigation surface, so identifier strings are
    stored once no matter how many adjacency entries reference them.
    """

    def __init__(self, edges: Iterable[Edge] | None = None) -> None:
        self._interner = VertexInterner()
        self._edge_counts: Counter[Edge] = Counter()
        self._vertices: Set[int] = set()
        # adjacency: vertex id -> label -> set of neighbour ids
        self._out: Dict[int, Dict[str, Set[int]]] = defaultdict(dict)
        self._in: Dict[int, Dict[str, Set[int]]] = defaultdict(dict)
        # label -> set of (source id, target id)
        self._by_label: Dict[str, Set[Tuple[int, int]]] = defaultdict(set)
        if edges is not None:
            for edge in edges:
                self.add_edge(edge)

    @property
    def interner(self) -> VertexInterner:
        """The vertex string <-> dense-int encoding (read-only use)."""
        return self._interner

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of distinct vertices."""
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        """Number of edges counting multiplicities."""
        return sum(self._edge_counts.values())

    @property
    def num_distinct_edges(self) -> int:
        """Number of distinct ``(label, source, target)`` triples."""
        return len(self._edge_counts)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        label_of = self._interner.label_of
        return (label_of(vid) for vid in self._vertices)

    def edges(self) -> Iterator[Edge]:
        """Iterate over distinct edges (ignoring multiplicity)."""
        return iter(self._edge_counts)

    def edge_labels(self) -> Set[str]:
        """Return the set of edge labels present in the graph."""
        return {label for label, pairs in self._by_label.items() if pairs}

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` when ``vertex`` is present."""
        vid = self._interner.lookup(vertex)
        return vid is not None and vid in self._vertices

    def has_edge(self, edge: Edge) -> bool:
        """Return ``True`` when at least one copy of ``edge`` is present."""
        return self._edge_counts.get(edge, 0) > 0

    def multiplicity(self, edge: Edge) -> int:
        """Return how many copies of ``edge`` are present."""
        return self._edge_counts.get(edge, 0)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, edge: Edge) -> None:
        """Add one copy of ``edge``, creating endpoints as needed."""
        self._edge_counts[edge] += 1
        source_id, target_id = self._interner.intern_pair(edge.source, edge.target)
        self._vertices.add(source_id)
        self._vertices.add(target_id)
        self._out[source_id].setdefault(edge.label, set()).add(target_id)
        self._in[target_id].setdefault(edge.label, set()).add(source_id)
        self._by_label[edge.label].add((source_id, target_id))

    def remove_edge(self, edge: Edge) -> None:
        """Remove one copy of ``edge``.

        Raises
        ------
        EdgeNotFoundError
            If no copy of the edge exists.
        """
        count = self._edge_counts.get(edge, 0)
        if count == 0:
            raise EdgeNotFoundError(f"edge not present: {edge}")
        if count == 1:
            del self._edge_counts[edge]
            source_id, target_id = self._interner.intern_pair(edge.source, edge.target)
            self._out[source_id][edge.label].discard(target_id)
            if not self._out[source_id][edge.label]:
                del self._out[source_id][edge.label]
            self._in[target_id][edge.label].discard(source_id)
            if not self._in[target_id][edge.label]:
                del self._in[target_id][edge.label]
            self._by_label[edge.label].discard((source_id, target_id))
        else:
            self._edge_counts[edge] = count - 1

    def apply(self, update: Update) -> None:
        """Apply a stream update (addition or deletion) to the graph."""
        if update.kind is UpdateKind.ADD:
            self.add_edge(update.edge)
        else:
            self.remove_edge(update.edge)

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def successors(self, vertex: Vertex, label: str | None = None) -> Set[Vertex]:
        """Return successors of ``vertex`` (optionally restricted to ``label``)."""
        vid = self._interner.lookup(vertex)
        per_label = self._out.get(vid) if vid is not None else None
        if not per_label:
            return set()
        label_of = self._interner.label_of
        if label is not None:
            return {label_of(t) for t in per_label.get(label, ())}
        result: Set[Vertex] = set()
        for targets in per_label.values():
            result.update(label_of(t) for t in targets)
        return result

    def predecessors(self, vertex: Vertex, label: str | None = None) -> Set[Vertex]:
        """Return predecessors of ``vertex`` (optionally restricted to ``label``)."""
        vid = self._interner.lookup(vertex)
        per_label = self._in.get(vid) if vid is not None else None
        if not per_label:
            return set()
        label_of = self._interner.label_of
        if label is not None:
            return {label_of(s) for s in per_label.get(label, ())}
        result: Set[Vertex] = set()
        for sources in per_label.values():
            result.update(label_of(s) for s in sources)
        return result

    def out_degree(self, vertex: Vertex) -> int:
        """Number of distinct outgoing (label, target) pairs of ``vertex``."""
        vid = self._interner.lookup(vertex)
        if vid is None or vid not in self._vertices:
            raise VertexNotFoundError(f"vertex not present: {vertex}")
        return sum(len(ts) for ts in self._out.get(vid, {}).values())

    def in_degree(self, vertex: Vertex) -> int:
        """Number of distinct incoming (label, source) pairs of ``vertex``."""
        vid = self._interner.lookup(vertex)
        if vid is None or vid not in self._vertices:
            raise VertexNotFoundError(f"vertex not present: {vertex}")
        return sum(len(ss) for ss in self._in.get(vid, {}).values())

    def edges_with_label(self, label: str) -> Set[Tuple[Vertex, Vertex]]:
        """Return the set of (source, target) pairs carrying ``label``."""
        label_of = self._interner.label_of
        return {(label_of(s), label_of(t)) for s, t in self._by_label.get(label, ())}

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, item: object) -> bool:
        if isinstance(item, Edge):
            return self.has_edge(item)
        if isinstance(item, str):
            return self.has_vertex(item)
        return False

    def __len__(self) -> int:
        return self.num_edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph(vertices={self.num_vertices}, edges={self.num_edges}, "
            f"labels={len(self.edge_labels())})"
        )

    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        clone = Graph()
        for edge, count in self._edge_counts.items():
            for _ in range(count):
                clone.add_edge(edge)
        return clone
