"""Exception hierarchy shared by the graph and query layers.

Every error raised by the library derives from :class:`ReproError` so that
applications embedding the engines can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised for invalid operations on an :class:`~repro.graph.Graph`."""


class EdgeNotFoundError(GraphError):
    """Raised when deleting or inspecting an edge that is not in the graph."""


class VertexNotFoundError(GraphError):
    """Raised when a vertex lookup fails."""


class QueryError(ReproError):
    """Raised for malformed query graph patterns."""


class DecompositionError(QueryError):
    """Raised when a query pattern cannot be decomposed into covering paths."""


class EngineError(ReproError):
    """Raised for invalid usage of a continuous query engine."""


class DuplicateQueryError(EngineError):
    """Raised when registering a query identifier twice with an engine."""


class UnknownQueryError(EngineError):
    """Raised when unregistering or inspecting a query id that is not indexed."""


class ShardUnavailableError(EngineError):
    """Raised when a shard (or its worker process) cannot serve a request.

    Recoverable from the caller's point of view: the sharded group's
    supervisor respawns dead workers with bounded retry, so this surfaces
    only once recovery itself has been exhausted (or the group is closed).
    """


class StreamError(ReproError):
    """Raised by the stream replay harness for malformed update streams."""


class SubscriptionError(ReproError):
    """Raised by the pub/sub subscription broker for invalid subscriptions."""


class DatasetError(ReproError):
    """Raised by the synthetic dataset generators for invalid configuration."""


class BenchmarkError(ReproError):
    """Raised by the experiment harness for invalid experiment configuration."""


class PersistenceError(ReproError):
    """Base class for durability-layer failures (snapshots, journals).

    Subclasses distinguish *fatal* corruption (:class:`SnapshotCorruptError`,
    :class:`JournalCorruptError`) from ordinary misuse, so recovery code can
    decide between refusing to start and starting from an older state.
    """


class SnapshotCorruptError(PersistenceError):
    """Raised when a snapshot envelope fails its magic/version/CRC checks."""


class JournalCorruptError(PersistenceError):
    """Raised when a write-ahead journal record *before* the tail is torn.

    A torn **final** record is the expected signature of a crash mid-write
    and is silently truncated during replay; corruption anywhere earlier
    means the journal cannot be trusted and raises this instead.
    """
