"""Graph streams: ordered sequences of updates (Definition 3.3).

A :class:`GraphStream` is a thin, list-backed container with helpers used by
the datasets, the replay harness and the benchmarks: slicing into prefixes,
batching, materialising the final graph, and simple statistics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence

from .elements import Edge, Update, UpdateKind, renumber
from .errors import StreamError
from .graph import Graph

__all__ = ["GraphStream", "StreamStatistics"]


@dataclass(frozen=True)
class StreamStatistics:
    """Summary statistics of a stream, used in reports and tests."""

    num_updates: int
    num_additions: int
    num_deletions: int
    num_vertices: int
    num_edge_labels: int
    label_histogram: dict[str, int] = field(default_factory=dict)


class GraphStream:
    """An ordered, replayable sequence of graph updates."""

    def __init__(self, updates: Iterable[Update] = (), name: str = "stream") -> None:
        self.name = name
        self._updates: List[Update] = list(renumber(updates))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Edge], name: str = "stream") -> "GraphStream":
        """Build an addition-only stream from an iterable of edges."""
        return cls((Update(edge) for edge in edges), name=name)

    @classmethod
    def from_triples(
        cls, triples: Iterable[tuple[str, str, str]], name: str = "stream"
    ) -> "GraphStream":
        """Build an addition-only stream from ``(label, source, target)`` triples."""
        return cls((Update(Edge(label, s, t)) for label, s, t in triples), name=name)

    def append(self, update: Update) -> None:
        """Append ``update`` to the stream, re-stamping its timestamp."""
        self._updates.append(update.with_timestamp(len(self._updates)))

    def extend(self, updates: Iterable[Update]) -> None:
        """Append every update in ``updates``."""
        for update in updates:
            self.append(update)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[Update]:
        return iter(self._updates)

    def __getitem__(self, index: int | slice) -> Update | "GraphStream":
        if isinstance(index, slice):
            return GraphStream(self._updates[index], name=self.name)
        return self._updates[index]

    def updates(self) -> Sequence[Update]:
        """Return the underlying sequence of updates (read-only use)."""
        return tuple(self._updates)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def prefix(self, num_updates: int) -> "GraphStream":
        """Return a stream containing the first ``num_updates`` updates."""
        if num_updates < 0:
            raise StreamError("prefix length must be non-negative")
        return GraphStream(self._updates[:num_updates], name=f"{self.name}[:{num_updates}]")

    def batches(self, batch_size: int) -> Iterator["GraphStream"]:
        """Yield consecutive sub-streams of ``batch_size`` updates."""
        if batch_size <= 0:
            raise StreamError("batch size must be positive")
        for start in range(0, len(self._updates), batch_size):
            yield GraphStream(
                self._updates[start : start + batch_size],
                name=f"{self.name}[{start}:{start + batch_size}]",
            )

    def additions_only(self) -> "GraphStream":
        """Return a stream with deletions filtered out."""
        return GraphStream(
            (u for u in self._updates if u.kind is UpdateKind.ADD),
            name=f"{self.name}(additions)",
        )

    def to_graph(self) -> Graph:
        """Materialise the graph obtained by applying every update in order."""
        graph = Graph()
        for update in self._updates:
            graph.apply(update)
        return graph

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def statistics(self) -> StreamStatistics:
        """Compute summary statistics for reporting and sanity checks."""
        label_histogram: Counter[str] = Counter()
        vertices: set[str] = set()
        additions = 0
        deletions = 0
        for update in self._updates:
            label_histogram[update.edge.label] += 1
            vertices.add(update.edge.source)
            vertices.add(update.edge.target)
            if update.kind is UpdateKind.ADD:
                additions += 1
            else:
                deletions += 1
        return StreamStatistics(
            num_updates=len(self._updates),
            num_additions=additions,
            num_deletions=deletions,
            num_vertices=len(vertices),
            num_edge_labels=len(label_histogram),
            label_histogram=dict(label_histogram),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphStream(name={self.name!r}, updates={len(self._updates)})"
