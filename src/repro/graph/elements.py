"""Primitive graph elements: vertices, edges, and update events.

The data model follows Definition 3.1 of the paper: an *attribute graph* is a
directed labelled multigraph.  Vertices are identified by their label (an
entity identifier such as ``"person:42"`` or ``"pst1"``), and edges carry a
label drawn from a separate label alphabet (``"knows"``, ``"posted"`` ...).

The streaming model (Definitions 3.2 and 3.3) evolves the graph through
:class:`Update` events — edge additions (and, as an extension discussed in
Section 4.3 of the paper, edge deletions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "Vertex",
    "Edge",
    "UpdateKind",
    "Update",
    "add",
    "delete",
]


# Vertices are plain strings (their label *is* their identity).  A dedicated
# alias keeps signatures readable without the cost of a wrapper object on the
# hot path of the matching engines.
Vertex = str


@dataclass(frozen=True, slots=True)
class Edge:
    """A directed labelled edge ``source --label--> target``.

    Edges are immutable and hashable so that they can serve as dictionary keys
    in the inverted indexes and materialized-view registries.  Because the
    graph is a multigraph, the same ``(label, source, target)`` triple may be
    added several times; multiplicity is tracked by the graph, not the edge.
    """

    label: str
    source: Vertex
    target: Vertex

    def endpoints(self) -> tuple[Vertex, Vertex]:
        """Return the ``(source, target)`` pair."""
        return (self.source, self.target)

    def reversed(self) -> "Edge":
        """Return the edge with source and target swapped (same label)."""
        return Edge(self.label, self.target, self.source)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source} -[{self.label}]-> {self.target}"


class UpdateKind(enum.Enum):
    """Kind of a stream update.

    The paper's core model only requires additions; deletions are supported as
    the extension sketched in its Section 4.3.
    """

    ADD = "add"
    DELETE = "delete"


@dataclass(frozen=True, slots=True)
class Update:
    """A single graph-stream event: one edge addition or deletion.

    Parameters
    ----------
    edge:
        The edge being added or removed.
    kind:
        :attr:`UpdateKind.ADD` (default) or :attr:`UpdateKind.DELETE`.
    timestamp:
        Logical position of the update in the stream.  The replay harness
        assigns consecutive integers when the producer does not.
    """

    edge: Edge
    kind: UpdateKind = UpdateKind.ADD
    timestamp: int = 0

    @property
    def is_addition(self) -> bool:
        """``True`` when this update adds an edge."""
        return self.kind is UpdateKind.ADD

    @property
    def is_deletion(self) -> bool:
        """``True`` when this update removes an edge."""
        return self.kind is UpdateKind.DELETE

    def with_timestamp(self, timestamp: int) -> "Update":
        """Return a copy of this update carrying ``timestamp``."""
        return Update(self.edge, self.kind, timestamp)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        sign = "+" if self.is_addition else "-"
        return f"{sign}{self.edge} @t{self.timestamp}"


def add(label: str, source: Vertex, target: Vertex, timestamp: int = 0) -> Update:
    """Convenience constructor for an edge-addition update."""
    return Update(Edge(label, source, target), UpdateKind.ADD, timestamp)


def delete(label: str, source: Vertex, target: Vertex, timestamp: int = 0) -> Update:
    """Convenience constructor for an edge-deletion update."""
    return Update(Edge(label, source, target), UpdateKind.DELETE, timestamp)


def renumber(updates: Iterable[Update], start: int = 0) -> Iterator[Update]:
    """Yield ``updates`` with consecutive timestamps starting at ``start``.

    Producers frequently build updates without caring about timestamps; the
    replay harness uses this helper to impose a total order.
    """
    for offset, update in enumerate(updates):
        yield update.with_timestamp(start + offset)
