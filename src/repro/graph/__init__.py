"""Attribute-graph data model and graph streams (paper Section 3.1).

Public surface:

* :class:`~repro.graph.elements.Edge`, :class:`~repro.graph.elements.Update`
  and the ``add`` / ``delete`` constructors,
* :class:`~repro.graph.graph.Graph` — the in-memory directed labelled
  multigraph,
* :class:`~repro.graph.stream.GraphStream` — replayable update sequences.
"""

from .elements import Edge, Update, UpdateKind, Vertex, add, delete, renumber
from .errors import (
    BenchmarkError,
    DatasetError,
    DecompositionError,
    DuplicateQueryError,
    EdgeNotFoundError,
    EngineError,
    GraphError,
    QueryError,
    ReproError,
    StreamError,
    UnknownQueryError,
    VertexNotFoundError,
)
from .graph import Graph
from .interning import NullInterner, VertexInterner
from .stream import GraphStream, StreamStatistics

__all__ = [
    "Edge",
    "Update",
    "UpdateKind",
    "Vertex",
    "VertexInterner",
    "NullInterner",
    "add",
    "delete",
    "renumber",
    "Graph",
    "GraphStream",
    "StreamStatistics",
    "ReproError",
    "GraphError",
    "EdgeNotFoundError",
    "VertexNotFoundError",
    "QueryError",
    "DecompositionError",
    "EngineError",
    "DuplicateQueryError",
    "UnknownQueryError",
    "StreamError",
    "DatasetError",
    "BenchmarkError",
]
