"""Vertex interning: dictionary-encoding the vertex universe.

Vertex identifiers arrive on the stream as strings (``"person:42"``,
``"pst1"`` ...).  Every structure on the matching hot path — base edge
views, trie prefix views, join buckets, binding tables — stores *tuples* of
vertices and probes hash tables keyed by them, so the cost of hashing and
comparing full identifier strings is paid over and over for the same small
vertex universe.

:class:`VertexInterner` maps each distinct identifier to a dense integer id
(first-seen order) at the graph/stream boundary; everything downstream
carries int tuples and decodes back to strings only at the public API
surface (``matches_of``, reports).  This is the dictionary-encoding move of
inverted-index systems: probes become proportional to the posting list, and
equality checks become single-word comparisons.

:class:`NullInterner` is a drop-in identity encoder used by the comparison
benchmarks (``benchmarks/bench_hotpath.py``) to replay the pre-interning
string pipeline through the same code paths.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["VertexInterner", "NullInterner"]


class VertexInterner:
    """Bijective string ↔ dense-int mapping over the vertex universe.

    Ids are assigned in first-seen order and never recycled, so an id taken
    from any row remains decodable for the lifetime of the interner.
    """

    __slots__ = ("_ids", "_labels")

    def __init__(self, labels: Iterable[str] = ()) -> None:
        self._ids: Dict[str, int] = {}
        self._labels: List[str] = []
        for label in labels:
            self.intern(label)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: str) -> bool:
        return label in self._ids

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def intern(self, label: str) -> int:
        """Id of ``label``, assigning the next dense id on first sight."""
        vid = self._ids.get(label)
        if vid is None:
            vid = len(self._labels)
            self._ids[label] = vid
            self._labels.append(label)
        return vid

    def intern_pair(self, source: str, target: str) -> Tuple[int, int]:
        """Encode an edge's endpoints as an int row (the hot-path helper)."""
        return (self.intern(source), self.intern(target))

    def intern_row(self, row: Sequence[str]) -> Tuple[int, ...]:
        """Encode a whole tuple of vertex identifiers."""
        return tuple(self.intern(value) for value in row)

    def lookup(self, label: str) -> Optional[int]:
        """Id of ``label`` or ``None``, without assigning a new id."""
        return self._ids.get(label)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def label_of(self, vid: int) -> str:
        """The identifier string behind ``vid``."""
        return self._labels[vid]

    def decode_row(self, row: Sequence[int]) -> Tuple[str, ...]:
        """Decode an int row back into the original identifier strings."""
        labels = self._labels
        return tuple(labels[vid] for vid in row)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Size statistics of the vertex dictionary.

        ``live_ids`` is the number of distinct identifiers interned so far
        (ids are never recycled, so this only grows — the measurement the
        ROADMAP's compaction concern needs before any id-recycling work),
        and ``bytes_estimate`` approximates the dictionary's retained
        memory: the identifier strings themselves plus the encode dict and
        decode list containers.  The container overhead is estimated from
        the entry count alone (eight machine words per dict entry, one
        pointer per list slot) rather than ``sys.getsizeof``, whose answer
        depends on allocation history — a snapshot-restored engine must
        ``describe()`` byte-identically to the original.  O(n) per call;
        meant for ``describe()`` reports, not the stream path.
        """
        strings = sum(sys.getsizeof(label) for label in self._labels)
        containers = 128 + 64 * len(self._ids) + 8 * len(self._labels)
        return {
            "live_ids": len(self._labels),
            "bytes_estimate": strings + containers,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VertexInterner(vertices={len(self._labels)})"


class NullInterner:
    """Identity encoder: vertices stay strings end to end.

    Exists so the comparison benchmarks can drive the exact same engine code
    over the pre-interning string representation.  API-compatible with
    :class:`VertexInterner`.
    """

    __slots__ = ("_seen",)

    def __init__(self, labels: Iterable[str] = ()) -> None:
        self._seen: Dict[str, str] = {label: label for label in labels}

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, label: str) -> bool:
        return label in self._seen

    def intern(self, label: str) -> str:
        self._seen[label] = label
        return label

    def intern_pair(self, source: str, target: str) -> Tuple[str, str]:
        self._seen[source] = source
        self._seen[target] = target
        return (source, target)

    def intern_row(self, row: Sequence[str]) -> Tuple[str, ...]:
        for value in row:
            self._seen[value] = value
        return tuple(row)

    def lookup(self, label: str) -> Optional[str]:
        return self._seen.get(label)

    def label_of(self, vid: str) -> str:
        return vid

    def decode_row(self, row: Sequence[str]) -> Tuple[str, ...]:
        return tuple(row)

    def stats(self) -> Dict[str, int]:
        """API-compatible statistics (strings are stored, not encoded).

        As with :meth:`VertexInterner.stats`, the set overhead is estimated
        from the entry count alone so the figure survives snapshot/restore
        unchanged.
        """
        strings = sum(sys.getsizeof(label) for label in self._seen)
        return {
            "live_ids": len(self._seen),
            "bytes_estimate": strings + 128 + 64 * len(self._seen),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NullInterner(vertices={len(self._seen)})"
