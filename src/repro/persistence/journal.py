"""The write-ahead delta journal: every state change, framed and fsynced.

The delta pipeline already makes each state change a signed, ordered delta;
this module gives those deltas a durable home.  A :class:`DeltaJournal` is
an append-only file of *records* — one per registration, backfill, or
update micro-batch — with the same JSON-lines framing the pub/sub layer
streams over stdout, hardened for crash recovery:

``<length:08x> <crc32:08x> <json body>\\n``

* **length/CRC prefix** — a record is only accepted when its body is
  exactly ``length`` bytes and matches its CRC32.  A crash mid-``write``
  leaves a *torn final record* (short body, bad CRC, or missing newline);
  :meth:`DeltaJournal.replay` detects it, reports it, and truncates the
  file back to the last good record instead of crashing on it.  A torn
  record anywhere *before* the tail is real corruption and raises
  :class:`~repro.graph.errors.JournalCorruptError`.
* **fsync-on-batch** — each :meth:`append` flushes and ``fsync``\\ s once,
  so an acknowledged batch survives the process (the classic WAL
  contract: journal first, apply second).
* **sequence numbers** — records carry a monotonically increasing ``seq``;
  recovery replays exactly the records after a snapshot's sequence number
  (snapshot + tail-replay).

Record bodies (JSON objects, compact separators)::

    {"seq": N, "op": "batch",    "updates": [["+","knows","a","b"], ...]}
    {"seq": N, "op": "register", "pattern": {"id": ..., "edges": [...]}}
    {"seq": N, "op": "backfill", "updates": [...]}   # silent replay
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..graph.elements import Update
from ..graph.errors import JournalCorruptError, PersistenceError
from ..query.pattern import QueryGraphPattern
from .faults import FaultInjector
from .snapshots import (
    pattern_from_payload,
    pattern_to_payload,
    updates_from_payload,
    updates_to_payload,
)

__all__ = ["JournalRecord", "DeltaJournal", "frame_record", "parse_frames"]

#: ``<8 hex length> <8 hex crc> <body>\n`` — 18 prefix bytes plus the body.
_PREFIX_LEN = 18


def frame_record(body: Dict[str, object]) -> bytes:
    """Frame one JSON record body with its length/CRC prefix."""
    encoded = json.dumps(body, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return b"%08x %08x %s\n" % (len(encoded), zlib.crc32(encoded), encoded)


class JournalRecord:
    """One parsed journal record (sequence number, op, payload)."""

    __slots__ = ("seq", "op", "payload")

    def __init__(self, seq: int, op: str, payload: Dict[str, object]) -> None:
        self.seq = seq
        self.op = op
        self.payload = payload

    def updates(self) -> List[Update]:
        """The record's update batch (``batch`` / ``backfill`` records)."""
        return updates_from_payload(self.payload["updates"])

    def pattern(self) -> QueryGraphPattern:
        """The record's query pattern (``register`` records)."""
        return pattern_from_payload(self.payload["pattern"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JournalRecord(seq={self.seq}, op={self.op!r})"


def parse_frames(data: bytes) -> Tuple[List[JournalRecord], int, bool]:
    """Parse framed records out of raw journal bytes.

    Returns ``(records, good_length, torn_tail)`` where ``good_length`` is
    the byte offset up to which the file parsed cleanly and ``torn_tail``
    is ``True`` when trailing bytes after the last good record failed
    framing — the signature of a crash mid-write, which the caller
    truncates away.

    Raises
    ------
    JournalCorruptError
        When a record *before* the final one is damaged: a torn tail is a
        crash artefact, an interior tear means the journal cannot be
        trusted at all.
    """
    records: List[JournalRecord] = []
    offset = 0
    torn_at: Optional[int] = None
    while offset < len(data):
        frame_end, record = _parse_one(data, offset)
        if record is None:
            torn_at = offset
            break
        records.append(record)
        offset = frame_end
    if torn_at is None:
        return records, offset, False
    remainder = data[torn_at:]
    # A torn *final* record may still contain newlines inside its JSON body
    # bytes only if a later complete record follows — probe for any
    # well-formed frame after the tear; finding one proves interior damage.
    probe = remainder.find(b"\n")
    while probe != -1:
        candidate = torn_at + probe + 1
        frame_end, record = _parse_one(data, candidate)
        if record is not None:
            raise JournalCorruptError(
                f"corrupt journal record at byte {torn_at} "
                f"(a valid record follows at byte {candidate})"
            )
        probe = remainder.find(b"\n", probe + 1)
    return records, torn_at, True


def _parse_one(data: bytes, offset: int) -> Tuple[int, Optional[JournalRecord]]:
    """Parse one frame at ``offset``; ``(end, None)`` when torn/invalid."""
    prefix = data[offset : offset + _PREFIX_LEN]
    if len(prefix) < _PREFIX_LEN or prefix[8:9] != b" " or prefix[17:18] != b" ":
        return offset, None
    try:
        length = int(prefix[0:8], 16)
        crc = int(prefix[9:17], 16)
    except ValueError:
        return offset, None
    body_start = offset + _PREFIX_LEN
    body_end = body_start + length
    if body_end + 1 > len(data) or data[body_end : body_end + 1] != b"\n":
        return offset, None
    body = data[body_start:body_end]
    if zlib.crc32(body) != crc:
        return offset, None
    try:
        payload = json.loads(body)
        record = JournalRecord(int(payload["seq"]), str(payload["op"]), payload)
    except (ValueError, KeyError, TypeError):
        return offset, None
    return body_end + 1, record


class DeltaJournal:
    """Append-only write-ahead journal of engine state changes.

    Parameters
    ----------
    path:
        Journal file (created empty when absent; parent directories made).
    fsync:
        ``fsync`` after every append (the durability contract).  Turning
        it off trades crash safety for throughput — the benchmark's
        journal-overhead comparison measures exactly this knob.
    faults:
        Optional :class:`~repro.persistence.faults.FaultInjector` whose
        ``journal.append.before_write`` / ``journal.append.after_write`` /
        ``journal.append.after_fsync`` points this journal reaches.
    """

    def __init__(
        self,
        path: "str | os.PathLike",
        *,
        fsync: bool = True,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.faults = faults
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "ab")
        self.records_appended = 0

    # ------------------------------------------------------------------
    # Appending (the write-ahead half)
    # ------------------------------------------------------------------
    def append(self, seq: int, op: str, payload: Dict[str, object]) -> None:
        """Durably append one record (``payload`` must not carry seq/op)."""
        if self._handle.closed:
            raise PersistenceError(f"journal {self.path} is closed")
        body = dict(payload)
        body["seq"] = seq
        body["op"] = op
        frame = frame_record(body)
        if self.faults is not None:
            self.faults.reached("journal.append.before_write")
        self._handle.write(frame)
        self._handle.flush()
        if self.faults is not None:
            self.faults.reached("journal.append.after_write")
        if self.fsync:
            os.fsync(self._handle.fileno())
            if self.faults is not None:
                self.faults.reached("journal.append.after_fsync")
        self.records_appended += 1

    def append_batch(self, seq: int, updates: Sequence[Update]) -> None:
        """Journal one update micro-batch ahead of applying it."""
        self.append(seq, "batch", {"updates": updates_to_payload(updates)})

    def append_register(self, seq: int, pattern: QueryGraphPattern) -> None:
        """Journal one query registration."""
        self.append(seq, "register", {"pattern": pattern_to_payload(pattern)})

    def append_backfill(self, seq: int, updates: Sequence[Update]) -> None:
        """Journal a silent backfill replay (sharded mid-stream gains)."""
        self.append(seq, "backfill", {"updates": updates_to_payload(updates)})

    # ------------------------------------------------------------------
    # Replay (the recovery half)
    # ------------------------------------------------------------------
    def replay(self, *, after_seq: int = -1) -> Tuple[List[JournalRecord], bool]:
        """Records with ``seq > after_seq``, tolerating a torn tail.

        Returns ``(records, truncated)``; when the file ends in a torn
        record (crash mid-write) it is truncated back to the last good
        frame and ``truncated`` is ``True``.  Interior corruption raises
        :class:`~repro.graph.errors.JournalCorruptError`.
        """
        self._handle.flush()
        data = self.path.read_bytes()
        records, good_length, torn = parse_frames(data)
        if torn:
            # Drop the torn tail in place so future appends start clean.
            self._handle.close()
            with open(self.path, "rb+") as handle:
                handle.truncate(good_length)
            self._handle = open(self.path, "ab")
        if after_seq >= 0:
            records = [record for record in records if record.seq > after_seq]
        return records, torn

    def reset(self) -> None:
        """Empty the journal (called right after a snapshot covers it)."""
        self._handle.close()
        with open(self.path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self._handle = open(self.path, "ab")
        self.records_appended = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Current journal size on disk."""
        self._handle.flush()
        return self.path.stat().st_size if self.path.exists() else 0

    def close(self) -> None:
        """Close the file handle (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "DeltaJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeltaJournal({str(self.path)!r}, appended={self.records_appended})"
