"""Engine snapshots: a checksummed envelope around full engine state.

A snapshot is the durable twin of an engine's in-memory state — the interner
table, the counted relations with their signed delta logs, the maintained
indexes, the materialised answers, and the registered query database travel
together, because they are one consistent object graph.  Serialising that
graph wholesale (pickle) is what guarantees the restore invariant the
property tests enforce: a restored engine is *behaviourally byte-identical*
to the engine that was snapshotted — same ``matches_of``, same ``describe()``
counters, same future notifications and delivered deltas for any subsequent
stream.

The envelope is deliberately paranoid: magic + version + payload length +
CRC32, so a snapshot file truncated or bit-flipped by a crashed writer is
*detected* (:class:`~repro.graph.errors.SnapshotCorruptError`) instead of
deserialised into silently wrong state.  Writers should pair this with an
atomic rename (:func:`write_snapshot_file` does) so a crash mid-write leaves
the previous snapshot intact.

This module also owns the JSON payload forms of the two value types the
write-ahead journal needs (:mod:`repro.persistence.journal`): stream updates
and query graph patterns.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Sequence

from ..graph.elements import Edge, Update, UpdateKind
from ..graph.errors import PersistenceError, SnapshotCorruptError
from ..query.pattern import QueryGraphPattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import ContinuousEngine

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "encode_snapshot",
    "decode_snapshot",
    "snapshot_engine",
    "restore_engine",
    "write_snapshot_file",
    "read_snapshot_file",
    "update_to_payload",
    "update_from_payload",
    "updates_to_payload",
    "updates_from_payload",
    "pattern_to_payload",
    "pattern_from_payload",
]

#: File magic of the snapshot envelope (any mismatch is instant corruption).
SNAPSHOT_MAGIC = b"REPROSNAP"
#: Envelope format version (bumped on incompatible layout changes).
SNAPSHOT_VERSION = 1

#: Envelope header: magic, u16 version, u32 CRC32, u64 payload length.
_HEADER = struct.Struct(">%dsHIQ" % len(SNAPSHOT_MAGIC))


# ----------------------------------------------------------------------
# Envelope
# ----------------------------------------------------------------------
def encode_snapshot(state: object) -> bytes:
    """Serialise ``state`` into a self-verifying snapshot blob."""
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(
        SNAPSHOT_MAGIC, SNAPSHOT_VERSION, zlib.crc32(payload), len(payload)
    )
    return header + payload


def decode_snapshot(blob: bytes) -> object:
    """Verify and deserialise a snapshot blob.

    Raises
    ------
    SnapshotCorruptError
        On a wrong magic, an unknown version, a truncated payload, or a
        CRC mismatch — every way a crashed or interrupted writer can leave
        a snapshot behind.
    """
    if len(blob) < _HEADER.size:
        raise SnapshotCorruptError(
            f"snapshot too short: {len(blob)} bytes < {_HEADER.size}-byte header"
        )
    magic, version, crc, length = _HEADER.unpack_from(blob)
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotCorruptError(f"bad snapshot magic: {magic!r}")
    if version != SNAPSHOT_VERSION:
        raise SnapshotCorruptError(
            f"unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"
        )
    payload = blob[_HEADER.size :]
    if len(payload) != length:
        raise SnapshotCorruptError(
            f"snapshot payload truncated: {len(payload)} of {length} bytes"
        )
    if zlib.crc32(payload) != crc:
        raise SnapshotCorruptError("snapshot payload failed its CRC check")
    try:
        return pickle.loads(payload)
    except Exception as error:  # unpickling garbage that passed the CRC
        raise SnapshotCorruptError(f"snapshot payload undecodable: {error}") from error


# ----------------------------------------------------------------------
# Engine-level snapshot / restore
# ----------------------------------------------------------------------
def snapshot_engine(engine: "ContinuousEngine") -> bytes:
    """Full state snapshot of ``engine`` as a self-verifying blob.

    The pickled object graph carries everything the engine owns — interner,
    views, tries, maintained relations and indexes (with their delta logs
    and epochs), materialised answers, registered queries, satisfied-set
    and counters — so :func:`restore_engine` yields an engine that behaves
    byte-identically from this point on.
    """
    try:
        return encode_snapshot(engine)
    except (pickle.PicklingError, TypeError, AttributeError) as error:
        raise PersistenceError(
            f"engine {getattr(engine, 'name', engine)!r} is not snapshottable: {error}"
        ) from error


def restore_engine(blob: bytes) -> "ContinuousEngine":
    """Rebuild an engine from a :func:`snapshot_engine` blob."""
    from ..core.engine import ContinuousEngine

    engine = decode_snapshot(blob)
    if not isinstance(engine, ContinuousEngine):
        raise SnapshotCorruptError(
            f"snapshot does not contain an engine (got {type(engine).__name__})"
        )
    return engine


# ----------------------------------------------------------------------
# Snapshot files (atomic replace)
# ----------------------------------------------------------------------
def write_snapshot_file(path: "str | os.PathLike", blob: bytes) -> None:
    """Write ``blob`` to ``path`` atomically (tmp file + fsync + rename).

    A crash mid-write leaves either the previous snapshot or the complete
    new one — never a torn file (and a torn tmp file fails the envelope
    checks anyway).
    """
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def read_snapshot_file(path: "str | os.PathLike") -> bytes:
    """Read a snapshot blob (existence is the caller's concern)."""
    return Path(path).read_bytes()


# ----------------------------------------------------------------------
# JSON payload forms (journal records)
# ----------------------------------------------------------------------
def update_to_payload(update: Update) -> List[str]:
    """One stream update as a JSON-friendly ``[sign, label, source, target]``."""
    sign = "+" if update.kind is UpdateKind.ADD else "-"
    edge = update.edge
    return [sign, edge.label, edge.source, edge.target]


def update_from_payload(payload: Sequence[str]) -> Update:
    """Inverse of :func:`update_to_payload`."""
    sign, label, source, target = payload
    kind = UpdateKind.ADD if sign == "+" else UpdateKind.DELETE
    return Update(Edge(label, source, target), kind)


def updates_to_payload(updates: Sequence[Update]) -> List[List[str]]:
    """A micro-batch of updates as JSON payload rows."""
    return [update_to_payload(update) for update in updates]


def updates_from_payload(payload: Sequence[Sequence[str]]) -> List[Update]:
    """Inverse of :func:`updates_to_payload`."""
    return [update_from_payload(row) for row in payload]


def pattern_to_payload(pattern: QueryGraphPattern) -> Dict[str, object]:
    """A query pattern as JSON payload (id, name, edge triples).

    Terms round-trip through their string form (``?x`` parses back to a
    variable, anything else to a literal) — the same convention the
    builder's public API uses.
    """
    return {
        "id": pattern.query_id,
        "name": pattern.name,
        "edges": [
            [edge.label, str(edge.source), str(edge.target)]
            for edge in pattern.edges
        ],
    }


def pattern_from_payload(payload: Dict[str, object]) -> QueryGraphPattern:
    """Inverse of :func:`pattern_to_payload`."""
    return QueryGraphPattern(
        payload["id"],
        [tuple(edge) for edge in payload["edges"]],
        name=payload.get("name"),
    )
