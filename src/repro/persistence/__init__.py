"""Durability & crash recovery: snapshots, write-ahead journal, fault hooks.

The persistence layer gives every engine (and sharded group) a durable
life beyond its process:

* :mod:`~repro.persistence.snapshots` — a checksummed envelope around the
  full engine object graph (interner, counted relations with their signed
  delta logs, maintained indexes, materialised answers, registered
  queries), plus the JSON payload forms journal records use.
* :mod:`~repro.persistence.journal` — the write-ahead
  :class:`~repro.persistence.journal.DeltaJournal`: length/CRC-prefixed
  JSON-lines records, fsync-on-batch, torn-tail truncation on replay.
* :mod:`~repro.persistence.durable` — the
  :class:`~repro.persistence.durable.DurableEngine` wrapper enforcing the
  journal-first/apply-second contract and snapshot + tail-replay recovery.
* :mod:`~repro.persistence.faults` — deterministic fault injection
  (:class:`~repro.persistence.faults.FaultInjector`) the recovery property
  tests and ``tools/faultinject.py`` drive.
* :mod:`~repro.persistence.replication` — the process-shard worker
  runtime plus :class:`~repro.persistence.replication.ReplicaSet`:
  replica workers that tail a primary's acknowledged-ops log, absorb
  read traffic, and stand in for a dead primary via promotion.
"""

from .durable import DurableEngine
from .faults import (
    FaultInjector,
    InjectedCrash,
    corrupt_file_tail,
    truncate_file_tail,
)
from .journal import DeltaJournal, JournalRecord, frame_record, parse_frames
from .replication import WORKER_FAILURES, ReplicaSet
from .snapshots import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    decode_snapshot,
    encode_snapshot,
    pattern_from_payload,
    pattern_to_payload,
    read_snapshot_file,
    restore_engine,
    snapshot_engine,
    update_from_payload,
    update_to_payload,
    updates_from_payload,
    updates_to_payload,
    write_snapshot_file,
)

__all__ = [
    "DurableEngine",
    "ReplicaSet",
    "WORKER_FAILURES",
    "DeltaJournal",
    "JournalRecord",
    "frame_record",
    "parse_frames",
    "FaultInjector",
    "InjectedCrash",
    "truncate_file_tail",
    "corrupt_file_tail",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "encode_snapshot",
    "decode_snapshot",
    "snapshot_engine",
    "restore_engine",
    "write_snapshot_file",
    "read_snapshot_file",
    "update_to_payload",
    "update_from_payload",
    "updates_to_payload",
    "updates_from_payload",
    "pattern_to_payload",
    "pattern_from_payload",
]
