"""Durable engine wrapper: journal first, apply second, snapshot sometimes.

:class:`DurableEngine` wraps any :class:`~repro.core.engine.ContinuousEngine`
(including a sharded group) with the classic write-ahead contract:

1. every state-changing call (``register``, ``on_update``, ``on_batch``) is
   appended to the :class:`~repro.persistence.journal.DeltaJournal` and
   fsynced **before** it is applied to the wrapped engine;
2. every ``snapshot_every`` journal records, the full engine state is
   written to an atomically-replaced snapshot file and the journal is
   reset (the snapshot now covers it);
3. :meth:`DurableEngine.recover` rebuilds the wrapper from a directory —
   snapshot (when present) plus tail-replay of the journal records after
   the snapshot's sequence number — yielding an engine byte-identical to
   one that never died.

The recovery invariant the property tests enforce: a crash *between*
journal append and state apply loses nothing (replay applies the record);
a crash *mid-append* leaves a torn final record that replay truncates
(the batch was never acknowledged, so the oracle never saw it either).
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..core.engine import BatchReport, ContinuousEngine
from ..graph.elements import Update
from ..graph.errors import (
    DuplicateQueryError,
    PersistenceError,
    SnapshotCorruptError,
)
from ..query.pattern import QueryGraphPattern
from .faults import FaultInjector
from .journal import DeltaJournal, parse_frames
from .snapshots import (
    decode_snapshot,
    encode_snapshot,
    read_snapshot_file,
    write_snapshot_file,
)

__all__ = ["DurableEngine"]

#: File names inside a durability directory.  The ``.1`` pair is the
#: previous snapshot *generation*: the snapshot that was current before
#: the last :meth:`DurableEngine.write_snapshot`, plus the journal segment
#: covering the records between the two snapshots — enough to recover when
#: the current snapshot turns out corrupt.
JOURNAL_FILE = "journal.wal"
SNAPSHOT_FILE = "snapshot.bin"
PREV_JOURNAL_FILE = "journal.wal.1"
PREV_SNAPSHOT_FILE = "snapshot.bin.1"


class DurableEngine:
    """A write-ahead-journaled, snapshotting wrapper around an engine.

    Parameters
    ----------
    engine:
        The engine (or sharded group) to make durable.  Must be fresh with
        respect to ``directory`` — use :meth:`recover` to resume from a
        directory that already holds state.
    directory:
        Durability directory holding ``journal.wal`` and ``snapshot.bin``
        (created when absent).
    snapshot_every:
        Write a snapshot (and reset the journal) every this many journal
        records; ``None`` disables periodic snapshots (journal-only
        durability — recovery replays from the last explicit snapshot).
    fsync:
        Fsync the journal on every append (the durability contract; the
        benchmark's journal-overhead comparison measures this knob).
    faults:
        Optional :class:`~repro.persistence.faults.FaultInjector`; this
        wrapper reaches ``durable.apply.before`` / ``durable.apply.after``
        around every state apply and ``durable.snapshot`` before each
        snapshot write, in addition to the journal's own points.

    Read-only calls (``matches_of``, ``has_matches``, ``describe`` inputs,
    ``answer_delta_source``, ``satisfied_queries`` …) pass straight through
    to the wrapped engine.
    """

    def __init__(
        self,
        engine: ContinuousEngine,
        directory: "str | Path",
        *,
        snapshot_every: Optional[int] = None,
        fsync: bool = True,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise PersistenceError("snapshot_every must be at least 1 (or None)")
        self.engine = engine
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = snapshot_every
        self.faults = faults
        self.journal = DeltaJournal(
            self.directory / JOURNAL_FILE, fsync=fsync, faults=faults
        )
        #: Sequence number of the last journaled record.
        self._seq = 0
        #: Sequence number the on-disk snapshot covers (0 = none yet).
        self._snapshot_seq = 0
        self.snapshots_written = 0
        self.replayed_records = 0
        self.recovered = False
        self.truncated_tail = False
        #: True when :meth:`recover` had to fall back to the previous
        #: snapshot generation because the current one was corrupt.
        self.snapshot_fallback = False
        self._closed = False
        #: Serialises state-changing calls against close/snapshot — a
        #: concurrent ``close()`` during an in-flight flush waits for the
        #: flush instead of tearing the journal out from under it.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        directory: "str | Path",
        *,
        engine_factory: Optional[Callable[[], ContinuousEngine]] = None,
        snapshot_every: Optional[int] = None,
        fsync: bool = True,
        faults: Optional[FaultInjector] = None,
    ) -> "DurableEngine":
        """Resume from ``directory``: snapshot (if any) + journal tail-replay.

        ``engine_factory`` builds the starting engine when no snapshot
        exists yet (a directory that only ever journaled); with a snapshot
        present the factory is ignored.  A torn final journal record —
        the signature of a crash mid-write — is truncated silently;
        corruption before the tail raises
        :class:`~repro.graph.errors.JournalCorruptError`.

        **Generation fallback.**  A corrupt current snapshot (or one lost
        mid-rotation) does not refuse recovery outright: when the previous
        generation (``snapshot.bin.1`` + its preserved journal segment
        ``journal.wal.1``) is present, recovery loads it, replays the
        preserved segment up to where the failed snapshot sat, then the
        live journal tail — verifying sequence continuity at every step,
        so a fallback either reconstructs the exact pre-crash state or
        raises :class:`~repro.graph.errors.SnapshotCorruptError` rather
        than silently serving a wrong one.
        """
        directory = Path(directory)
        snapshot_path = directory / SNAPSHOT_FILE
        prev_snapshot_path = directory / PREV_SNAPSHOT_FILE
        state: Optional[Dict[str, object]] = None
        fallback = False
        snapshot_error: Optional[SnapshotCorruptError] = None
        if snapshot_path.exists():
            try:
                state = cls._load_snapshot_state(snapshot_path)
            except SnapshotCorruptError as error:
                snapshot_error = error
        if state is None and snapshot_error is not None and not prev_snapshot_path.exists():
            raise snapshot_error
        if state is None and prev_snapshot_path.exists():
            # Current snapshot corrupt — or missing while the previous
            # generation exists (a crash between rotation and the new
            # snapshot's rename): fall back one generation.
            try:
                state = cls._load_snapshot_state(prev_snapshot_path)
            except SnapshotCorruptError as error:
                raise SnapshotCorruptError(
                    "both snapshot generations are corrupt: "
                    f"{snapshot_error or 'current missing'}; previous: {error}"
                ) from error
            fallback = True
        if state is not None:
            engine = state["engine"]
            seq = int(state["seq"])
        elif engine_factory is not None:
            engine = engine_factory()
            seq = 0
        else:
            raise PersistenceError(
                f"nothing to recover in {directory}: no snapshot and no "
                "engine_factory to build a fresh engine"
            )
        durable = cls(
            engine,
            directory,
            snapshot_every=snapshot_every,
            fsync=fsync,
            faults=faults,
        )
        durable._seq = seq
        durable._snapshot_seq = seq
        if fallback:
            durable._replay_previous_segment()
        records, torn = durable.journal.replay(after_seq=durable._seq)
        if fallback and records and records[0].seq != durable._seq + 1:
            raise SnapshotCorruptError(
                "generation fallback cannot bridge the journal: recovered "
                f"state sits at seq {durable._seq} but the live journal "
                f"resumes at seq {records[0].seq}"
            )
        for record in records:
            durable._apply_record(record)
        durable.replayed_records += len(records)
        durable.recovered = True
        durable.truncated_tail = torn
        durable.snapshot_fallback = fallback
        return durable

    @staticmethod
    def _load_snapshot_state(path: Path) -> Dict[str, object]:
        state = decode_snapshot(read_snapshot_file(path))
        if not isinstance(state, dict) or "engine" not in state:
            raise SnapshotCorruptError(
                "durable snapshot does not contain an engine state record"
            )
        return state

    def _apply_record(self, record) -> None:
        if record.op == "register":
            self.engine.register(record.pattern())
        else:  # "batch" / "backfill" both replay as a micro-batch
            self.engine.on_batch(record.updates())
        self._seq = record.seq

    def _replay_previous_segment(self) -> None:
        """Replay the preserved journal segment of the failed generation.

        The segment (``journal.wal.1``) holds exactly the records between
        the previous snapshot and the corrupt one; records the previous
        snapshot already covers are filtered by sequence, and any gap in
        the remainder means the segment cannot reproduce the lost state —
        a typed refusal instead of a silently-wrong recovery.
        """
        segment_path = self.directory / PREV_JOURNAL_FILE
        if not segment_path.exists():
            return
        records, _good, _torn = parse_frames(segment_path.read_bytes())
        for record in records:
            if record.seq <= self._seq:
                continue
            if record.seq != self._seq + 1:
                raise SnapshotCorruptError(
                    "generation fallback found a gap in the preserved "
                    f"journal segment: expected seq {self._seq + 1}, "
                    f"found {record.seq}"
                )
            self._apply_record(record)
            self.replayed_records += 1

    # ------------------------------------------------------------------
    # State-changing calls (journal first, apply second)
    # ------------------------------------------------------------------
    def register(self, pattern: QueryGraphPattern) -> None:
        """Durably index one continuous query (journalled before applying)."""
        with self._lock:
            self._require_open()
            if pattern.query_id in self.engine.queries:
                # Pre-check so a doomed registration is never journalled.
                raise DuplicateQueryError(
                    f"query id already registered: {pattern.query_id}"
                )
            self._seq += 1
            self.journal.append_register(self._seq, pattern)
            self._apply(self.engine.register, pattern)
            self._maybe_snapshot()

    def register_all(self, patterns) -> None:
        """Durably index every pattern in ``patterns``."""
        for pattern in patterns:
            self.register(pattern)

    def on_batch(self, updates: Sequence[Update]) -> BatchReport:
        """Durably process a micro-batch (journalled before applying)."""
        updates = list(updates)
        with self._lock:
            self._require_open()
            self._seq += 1
            self.journal.append_batch(self._seq, updates)
            report = self._apply(self.engine.on_batch, updates)
            self._maybe_snapshot()
            return report

    def _require_open(self) -> None:
        if self._closed:
            raise PersistenceError(
                f"durable engine over {self.directory} is closed"
            )

    def on_update(self, update: Update) -> BatchReport:
        """Durably process one stream update (a one-record micro-batch)."""
        return self.on_batch([update])

    def process(self, updates) -> List[BatchReport]:
        """Durably process many updates; returns per-update reports."""
        return [self.on_update(update) for update in updates]

    def process_batches(self, updates, batch_size: int) -> List[BatchReport]:
        """Durably process ``updates`` in micro-batches of ``batch_size``."""
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        updates = list(updates)
        return [
            self.on_batch(updates[start : start + batch_size])
            for start in range(0, len(updates), batch_size)
        ]

    def _apply(self, call, *args):
        if self.faults is not None:
            self.faults.reached("durable.apply.before")
        result = call(*args)
        if self.faults is not None:
            self.faults.reached("durable.apply.after")
        return result

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def write_snapshot(self) -> None:
        """Snapshot the wrapped engine now and reset the journal.

        The snapshot records the current sequence number, so recovery
        replays exactly the journal records appended after it.  The write
        is atomic (tmp file + fsync + rename) and the journal is only
        reset once the snapshot is safely in place — a crash in between
        merely replays records the snapshot already covers (idempotent for
        recovery, which filters by sequence number).

        The snapshot being replaced is kept as the previous *generation*
        (``snapshot.bin.1``) together with the journal segment covering
        the records between the two snapshots (``journal.wal.1``) —
        :meth:`recover` falls back to that pair when the current snapshot
        turns out corrupt.  Rotation order is crash-safe: the segment is
        preserved first (atomic write), then the old snapshot is renamed
        aside, then the new one lands; a crash at any point leaves at
        least one generation whose snapshot + journal records reach the
        acknowledged sequence.
        """
        with self._lock:
            self._require_open()
            if self.faults is not None:
                self.faults.reached("durable.snapshot")
            blob = encode_snapshot({"engine": self.engine, "seq": self._seq})
            snapshot_path = self.directory / SNAPSHOT_FILE
            if snapshot_path.exists():
                # Preserve the outgoing generation: its journal segment
                # (exactly the records since it was written — the journal
                # was reset then), then the snapshot itself.
                write_snapshot_file(
                    self.directory / PREV_JOURNAL_FILE,
                    self.journal.path.read_bytes(),
                )
                os.replace(snapshot_path, self.directory / PREV_SNAPSHOT_FILE)
            write_snapshot_file(snapshot_path, blob)
            self._snapshot_seq = self._seq
            self.snapshots_written += 1
            self.journal.reset()

    def _maybe_snapshot(self) -> None:
        if self.snapshot_every is None:
            return
        if self._seq - self._snapshot_seq >= self.snapshot_every:
            self.write_snapshot()

    # ------------------------------------------------------------------
    # Reads and reporting
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """The wrapped engine's description plus a ``durability`` section."""
        info = dict(self.engine.describe())
        info["durability"] = {
            "directory": str(self.directory),
            "seq": self._seq,
            "snapshot_seq": self._snapshot_seq,
            "snapshots_written": self.snapshots_written,
            "journal_records": self.journal.records_appended,
            "journal_bytes": self.journal.size_bytes if not self._closed else 0,
            "replayed_records": self.replayed_records,
            "recovered": self.recovered,
            "truncated_tail": self.truncated_tail,
            "snapshot_fallback": self.snapshot_fallback,
            "previous_generation": (
                self.directory / PREV_SNAPSHOT_FILE
            ).exists(),
            "fsync": self.journal.fsync,
        }
        return info

    def __getattr__(self, attr: str):
        # Read-only calls (matches_of, has_matches, satisfied_queries,
        # answer_delta_source, queries, name, ...) pass straight through.
        return getattr(self.engine, attr)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the journal and the wrapped engine (idempotent).

        Serialised against in-flight state changes: a close racing an
        ``on_batch`` waits for the flush to land instead of tearing the
        journal out from under it; later state changes raise a typed
        :class:`~repro.graph.errors.PersistenceError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self.journal.close()
            close = getattr(self.engine, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "DurableEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DurableEngine({self.engine!r}, directory={str(self.directory)!r}, "
            f"seq={self._seq})"
        )
