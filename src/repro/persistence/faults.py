"""Fault injection: crash the durability layer on purpose, deterministically.

Recovery code that is only exercised by real crashes is recovery code that
does not work.  This module is the hook layer the property tests (and the
``tools/faultinject.py`` harness) drive:

* :class:`FaultInjector` — a registry of named *fault points*.  Durability
  code calls :meth:`FaultInjector.reached` at its crash-relevant moments
  (``journal.append.before_write``, ``journal.append.after_write``,
  ``durable.apply.before``, ``durable.apply.after``, ``durable.snapshot``);
  an armed injector raises :class:`InjectedCrash` at the scheduled hit,
  simulating a process death at exactly that instruction boundary.
* :func:`truncate_file_tail` / :func:`corrupt_file_tail` — byte-level
  journal damage, modelling a crash mid-``write(2)`` (torn final record)
  and on-disk corruption respectively.

Fault points are *no-ops when no injector is armed* — the production path
pays one ``None`` check per point.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

__all__ = [
    "InjectedCrash",
    "FaultInjector",
    "truncate_file_tail",
    "corrupt_file_tail",
]


class InjectedCrash(BaseException):
    """An injected process death.

    Deliberately a :class:`BaseException`: recovery code must never be able
    to ``except Exception`` its way past a simulated crash — exactly like a
    real ``SIGKILL``, it propagates until the simulated process boundary
    (the test harness) catches it.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at fault point {point!r}")
        self.point = point


class FaultInjector:
    """Deterministic crash scheduler over named fault points.

    >>> faults = FaultInjector()
    >>> faults.arm("durable.apply.before", hits=1)
    >>> faults.reached("journal.append.after_write")  # not armed: no-op
    >>> try:
    ...     faults.reached("durable.apply.before")
    ... except InjectedCrash as crash:
    ...     print(crash.point)
    durable.apply.before
    """

    def __init__(self) -> None:
        #: point -> remaining calls before the crash fires (1 = next call).
        self._armed: Dict[str, int] = {}
        #: point -> times the point was reached (armed or not).
        self.hits: Dict[str, int] = {}

    def arm(self, point: str, *, hits: int = 1) -> None:
        """Schedule a crash at the ``hits``-th future call of ``point``."""
        if hits < 1:
            raise ValueError("hits must be at least 1")
        self._armed[point] = hits

    def disarm(self, point: Optional[str] = None) -> None:
        """Cancel one scheduled crash (or all of them with no argument)."""
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)

    def reached(self, point: str) -> None:
        """Record that execution reached ``point``; crash when scheduled."""
        self.hits[point] = self.hits.get(point, 0) + 1
        remaining = self._armed.get(point)
        if remaining is None:
            return
        if remaining > 1:
            self._armed[point] = remaining - 1
            return
        del self._armed[point]
        raise InjectedCrash(point)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjector(armed={sorted(self._armed)})"


def truncate_file_tail(path: "str | Path", nbytes: int) -> int:
    """Cut ``nbytes`` off the end of ``path`` (a crash mid-write).

    Returns the new file size.  Truncating more bytes than the file holds
    empties it, which models a crash before anything reached the disk.
    """
    path = Path(path)
    size = path.stat().st_size
    new_size = max(0, size - nbytes)
    with open(path, "rb+") as handle:
        handle.truncate(new_size)
    return new_size


def corrupt_file_tail(path: "str | Path", *, offset_from_end: int = 2) -> None:
    """Flip one byte near the end of ``path`` (on-disk corruption).

    ``offset_from_end`` counts backwards from the final byte; the default
    lands inside the last record's body on any non-empty journal.
    """
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        return
    position = max(0, size - 1 - offset_from_end)
    with open(path, "rb+") as handle:
        handle.seek(position)
        byte = handle.read(1)
        handle.seek(position)
        handle.write(bytes([byte[0] ^ 0xFF]))
