"""Per-shard replication: replica workers, failover reads, promotion.

A process-executor shard (see :mod:`repro.pubsub.sharding`) is a primary
worker process driven over picklable command frames.  This module adds the
replication substrate around that primary:

* the **worker runtime** shared by primaries and replicas — the pool
  initializer (:func:`worker_init`), the command dispatcher
  (:func:`worker_call` / :func:`shard_op`) and the failure signature
  (:data:`WORKER_FAILURES`) that distinguishes "the worker process died"
  from an engine-level exception;
* :class:`ReplicaSet` — ``N`` replica workers per shard that bootstrap
  from the primary's snapshot and stay current by consuming its
  acknowledged-ops log (the supervision command log *is* the replication
  stream).  Replicas absorb read traffic (each read first drains the
  replica to the primary's acknowledged sequence, so answers are
  byte-identical to the primary's), a dead replica is detached and
  re-seeded from a fresh primary snapshot, and a dead primary *promotes*
  the freshest replica — the journal-seq comparison — so the shard keeps
  serving without replaying its history.

Replication is asynchronous but loss-free: an op is forwarded to replicas
only **after** the primary acknowledged it, so a promoted replica (drained
of its queued ops) is exactly the primary's acknowledged state, and the
in-flight batch the dead primary never acknowledged is re-run exactly once
by the proxy's supervision path — byte-identical to a never-crashed shard.
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..core.engine import ContinuousEngine
from ..graph.elements import Update
from ..graph.errors import EngineError, ShardUnavailableError

__all__ = [
    "ReplicaSet",
    "WORKER_FAILURES",
    "shard_op",
    "silent_backfill",
    "spawn_worker_pool",
    "worker_call",
    "worker_init",
]

#: Exceptions that mean "the worker process died" (vs. an engine error,
#: which travels back through the future as the engine's own exception).
WORKER_FAILURES = (BrokenProcessPool, BrokenPipeError, EOFError)

#: A seed for a fresh replica: the primary's snapshot blob (or ``None``
#: for a brand-new shard) and the acknowledged sequence it covers.
SnapshotProvider = Callable[[], Tuple[Optional[bytes], int]]


def silent_backfill(engine: ContinuousEngine, updates: Sequence[Update]) -> None:
    """Replay ``updates`` into ``engine`` without touching its satisfied-set.

    Registration backfill must not mark queries satisfied (a query only
    enters the satisfied-set through a later notification), exactly like
    the engines' own registration-time view recomputation.  Used by the
    in-process shards and by the shard workers, primary and replica alike.
    """
    satisfied_before = engine.satisfied_queries()
    engine.on_batch(updates)
    engine._satisfied.clear()
    engine._satisfied.update(satisfied_before)


# ----------------------------------------------------------------------
# Worker runtime (shared by primary and replica processes)
# ----------------------------------------------------------------------
#: The engine owned by this worker process (one engine per single-worker
#: pool; every command of that shard is executed against it).
_WORKER_ENGINE: Optional[ContinuousEngine] = None


def worker_init(
    engine_name: str, engine_kwargs: Dict[str, object], injective: bool
) -> None:
    """Pool initializer: build this worker's engine inside the process.

    Workers ignore SIGINT/SIGTERM: a terminal signal aimed at the serving
    process (or its whole process group — a ^C) must not kill the shards
    out from under the parent's graceful shutdown; the parent ends workers
    through the pool's shutdown path (and supervised respawn / promotion
    handles any worker that dies anyway).
    """
    global _WORKER_ENGINE
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    from ..engines import create_engine

    _WORKER_ENGINE = create_engine(engine_name, injective=injective, **engine_kwargs)


def shard_op(engine: ContinuousEngine, op: str, args: Tuple) -> object:
    """Dispatch one shard command against ``engine`` (any address space).

    Shared by the worker processes (:func:`worker_call`) and by the
    proxy's graceful-degradation mode, which runs the same command frames
    against an in-process engine after repeated worker failures — one
    dispatch, identical semantics on both sides of the process boundary.
    """
    if op == "batch":
        (updates,) = args
        start = time.perf_counter()
        if len(updates) == 1:
            report = engine.on_update(updates[0])
        else:
            report = engine.on_batch(updates)
        return report, engine.satisfied_queries(), time.perf_counter() - start
    if op == "register":
        (pattern,) = args
        engine.register(pattern)
        return None
    if op == "backfill":
        (updates,) = args
        silent_backfill(engine, updates)
        return None
    if op == "matches_of":
        return engine.matches_of(args[0])
    if op == "has_matches":
        return engine.has_matches(args[0])
    if op == "satisfied":
        return engine.satisfied_queries()
    if op == "describe":
        return engine.describe()
    if op == "snapshot":
        return engine.snapshot()
    raise EngineError(f"unknown process-shard command: {op!r}")  # pragma: no cover


def worker_call(op: str, args: Tuple) -> object:
    """Execute one picklable command frame against the worker's engine.

    The framing is deliberately narrow: operands are the repository's
    picklable value types (:class:`~repro.graph.elements.Update`,
    :class:`~repro.query.pattern.QueryGraphPattern`, query-id strings,
    snapshot blobs) and replies are plain data (a
    :class:`~repro.core.engine.BatchReport` with its wall-clock seconds,
    binding dictionaries, frozensets, description dictionaries) — never
    live relations or views, which stay inside the worker.

    Two commands exist purely for supervision and replication:
    ``snapshot`` ships the worker engine's full state to the parent as a
    checksummed blob, and ``restore`` rebuilds the engine from such a blob
    inside a freshly spawned worker (a respawned primary or a replica
    bootstrapping from the primary's state).
    """
    global _WORKER_ENGINE
    if op == "restore":
        (blob,) = args
        _WORKER_ENGINE = ContinuousEngine.restore(blob)
        return None
    if op == "pid":
        return os.getpid()
    engine = _WORKER_ENGINE
    if engine is None:
        raise ShardUnavailableError("process shard used before initialization")
    return shard_op(engine, op, args)


def spawn_worker_pool(
    engine_name: str, engine_kwargs: Dict[str, object], injective: bool
) -> ProcessPoolExecutor:
    """A single-worker pool whose process hosts one shard engine."""
    return ProcessPoolExecutor(
        max_workers=1,
        initializer=worker_init,
        initargs=(engine_name, dict(engine_kwargs), injective),
    )


# ----------------------------------------------------------------------
# Replica sets
# ----------------------------------------------------------------------
class _Replica:
    """One replica worker: its pool, pid, and replication progress."""

    __slots__ = ("pool", "pid", "applied_seq", "pending")

    def __init__(self, pool: ProcessPoolExecutor, pid: int, applied_seq: int) -> None:
        self.pool = pool
        self.pid = pid
        #: Sequence number of the last op this replica is known to have
        #: applied (its position in the primary's acknowledged-ops stream).
        self.applied_seq = applied_seq
        #: Forwarded-but-not-yet-acknowledged ops: (seq, future), FIFO.
        self.pending: Deque[Tuple[int, Future]] = deque()


class ReplicaSet:
    """``N`` replica workers tailing one primary's acknowledged-ops log.

    The owner (a ``_ProcessShardProxy``) calls :meth:`forward` after every
    op the primary acknowledged — the op is submitted asynchronously to
    every replica's single-worker pool, whose FIFO queue preserves the
    log order.  Reads drain the chosen replica to the primary's
    acknowledged sequence before serving, so a replica answer is
    byte-identical to the primary's.  Failure handling:

    * a replica that dies (submit/ack raises one of
      :data:`WORKER_FAILURES`) is *detached*; :meth:`replenish` re-seeds a
      replacement from a fresh primary snapshot pulled through the
      ``snapshot_provider`` callback;
    * a dead **primary** calls :meth:`promote`: every surviving replica is
      drained (safe — only primary-acknowledged ops were ever forwarded)
      and the one with the highest applied sequence is detached and handed
      back to become the new primary.
    """

    def __init__(
        self,
        engine_name: str,
        engine_kwargs: Dict[str, object],
        injective: bool,
        target: int,
        *,
        snapshot_provider: SnapshotProvider,
    ) -> None:
        if target < 1:
            raise EngineError("a replica set needs at least one replica")
        self.name = engine_name
        self._engine_kwargs = dict(engine_kwargs)
        self._injective = injective
        self.target = target
        self.snapshot_provider = snapshot_provider
        self.replicas: List[_Replica] = []
        self._rr = 0
        self.reads_served = 0
        self.read_failovers = 0
        self.reseeds = 0
        self.deaths = 0
        self._closed = False
        self.replenish(initial=True)

    # -- membership ------------------------------------------------------
    def _spawn(self, blob: Optional[bytes], seq: int) -> Optional[_Replica]:
        pool = spawn_worker_pool(self.name, self._engine_kwargs, self._injective)
        try:
            if blob is not None:
                pool.submit(worker_call, "restore", (blob,)).result()
            pid = pool.submit(worker_call, "pid", ()).result()
        except WORKER_FAILURES:
            pool.shutdown(wait=False)
            return None
        return _Replica(pool, pid, seq)

    def replenish(self, initial: bool = False) -> int:
        """Bring the set back up to ``target`` replicas.

        Newcomers bootstrap from a primary snapshot pulled once through
        ``snapshot_provider`` (their replication position is the sequence
        that snapshot covers).  A primary too sick to provide a seed ends
        the attempt quietly — the owner's supervision path deals with the
        primary, and the next interaction replenishes.  Returns the number
        of replicas spawned.
        """
        if self._closed or len(self.replicas) >= self.target:
            return 0
        try:
            blob, seq = self.snapshot_provider()
        except WORKER_FAILURES:
            return 0
        spawned = 0
        while len(self.replicas) < self.target:
            replica = self._spawn(blob, seq)
            if replica is None:
                break
            self.replicas.append(replica)
            spawned += 1
            if not initial:
                self.reseeds += 1
        return spawned

    def _detach(self, replica: _Replica) -> None:
        if replica in self.replicas:
            self.replicas.remove(replica)
            self.deaths += 1
        replica.pool.shutdown(wait=False)

    # -- the replication stream ------------------------------------------
    def forward(self, seq: int, op: str, args: Tuple) -> None:
        """Ship one primary-acknowledged op to every live replica (async)."""
        if self._closed:
            return
        for replica in list(self.replicas):
            try:
                future = replica.pool.submit(worker_call, op, args)
            except Exception:
                self._detach(replica)
                continue
            replica.pending.append((seq, future))
            self._ack(replica)

    def _ack(self, replica: _Replica) -> None:
        """Advance ``applied_seq`` over already-finished forwards (no wait)."""
        while replica.pending and replica.pending[0][1].done():
            seq, future = replica.pending.popleft()
            if future.exception() is not None:
                self._detach(replica)
                return
            replica.applied_seq = seq

    def _drain(self, replica: _Replica) -> bool:
        """Block until the replica applied every forwarded op (False: died)."""
        while replica.pending:
            seq, future = replica.pending.popleft()
            try:
                future.result()
            except Exception:
                self._detach(replica)
                return False
            replica.applied_seq = seq
        return True

    # -- reads -----------------------------------------------------------
    def read(self, op: str, args: Tuple) -> Tuple[bool, object]:
        """Serve one read from a replica: ``(served, result)``.

        Round-robin over the live replicas; the chosen one is drained to
        the primary's acknowledged sequence first, so the answer is
        byte-identical to the primary's.  A replica that dies mid-read is
        detached and the read fails over to the next; ``(False, None)``
        means no replica could serve and the caller should fall back to
        the primary (and :meth:`replenish`).
        """
        while self.replicas and not self._closed:
            replica = self.replicas[self._rr % len(self.replicas)]
            self._rr += 1
            if not self._drain(replica):
                self.read_failovers += 1
                continue
            try:
                result = replica.pool.submit(worker_call, op, args).result()
            except WORKER_FAILURES:
                self._detach(replica)
                self.read_failovers += 1
                continue
            self.reads_served += 1
            return True, result
        return False, None

    # -- promotion -------------------------------------------------------
    def promote(self) -> Optional[_Replica]:
        """Detach and return the freshest fully-drained replica.

        Called when the primary died.  Every surviving replica is drained
        — the ops queued in its pool were acknowledged by the primary
        before being forwarded, so applying them is always safe — and the
        one with the highest applied sequence wins the journal-seq
        comparison.  Replicas that die during the drain are detached.
        Returns ``None`` when no replica survives (the owner falls back to
        respawn-from-recovery-source).
        """
        best: Optional[_Replica] = None
        for replica in list(self.replicas):
            if not self._drain(replica):
                continue
            if best is None or replica.applied_seq > best.applied_seq:
                best = replica
        if best is not None:
            self.replicas.remove(best)
        return best

    # -- introspection and fault injection -------------------------------
    @property
    def attached(self) -> int:
        """Number of live replicas currently attached."""
        return len(self.replicas)

    def lags(self, primary_seq: int) -> List[int]:
        """Per-replica journal-seq delta behind the primary (no wait)."""
        for replica in list(self.replicas):
            self._ack(replica)
        return [
            max(0, primary_seq - replica.applied_seq) for replica in self.replicas
        ]

    def statistics(self, primary_seq: int) -> Dict[str, object]:
        """Counters and lag for reporting (cheap: no worker IPC)."""
        return {
            "target": self.target,
            "attached": self.attached,
            "reads_served": self.reads_served,
            "read_failovers": self.read_failovers,
            "reseeds": self.reseeds,
            "deaths": self.deaths,
            "lag": self.lags(primary_seq),
        }

    def pids(self) -> List[int]:
        """OS pids of the live replica workers."""
        return [replica.pid for replica in self.replicas]

    def kill(self, index: int = 0) -> None:
        """SIGKILL one replica worker (fault injection; tests, tooling)."""
        if not self.replicas:
            raise ShardUnavailableError("no replica attached to kill")
        os.kill(self.replicas[index % len(self.replicas)].pid, signal.SIGKILL)

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Shut every replica pool down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for replica in self.replicas:
            replica.pool.shutdown(wait=False)
        self.replicas.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplicaSet({self.name!r}, target={self.target}, "
            f"attached={self.attached})"
        )
