"""Plain-text reporting helpers shared by the benchmark harness and examples.

``NotificationLog`` moved to the pub/sub subsystem
(:class:`repro.pubsub.broker.NotificationLog`), where it doubles as a
subscribe-to-all broker adapter; it is re-exported here for compatibility.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..pubsub.broker import NotificationLog
from .runner import ReplayResult

__all__ = ["format_table", "format_replay_results", "NotificationLog"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table (no external dependencies)."""
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_replay_results(results: Iterable[ReplayResult]) -> str:
    """Tabulate replay results across engines (one row per engine)."""
    headers = (
        "engine",
        "updates",
        "answering ms/update",
        "indexing s",
        "matched updates",
        "timed out",
        "memory MB",
    )
    rows = []
    for result in results:
        memory = (
            f"{result.memory_bytes / (1024 * 1024):.1f}"
            if result.memory_bytes is not None
            else "-"
        )
        rows.append(
            (
                result.engine,
                f"{result.updates_processed}/{result.num_updates}",
                f"{result.answering_time_ms_per_update:.3f}",
                f"{result.indexing_time_s:.3f}",
                result.matched_updates,
                "yes" if result.timed_out else "no",
                memory,
            )
        )
    return format_table(headers, rows)


