"""Stream replay harness, metrics, and reporting."""

from .metrics import Timer, TimingStats, deep_sizeof
from .report import NotificationLog, format_replay_results, format_table
from .runner import MatchListener, ReplayResult, StreamRunner

__all__ = [
    "Timer",
    "TimingStats",
    "deep_sizeof",
    "StreamRunner",
    "ReplayResult",
    "MatchListener",
    "NotificationLog",
    "format_table",
    "format_replay_results",
]
