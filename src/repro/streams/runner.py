"""Stream replay harness: drive an engine with a stream and measure it.

The runner reproduces the paper's measurement protocol:

* *indexing time* — wall-clock time to register the query database,
* *answering time* — wall-clock time per update to determine the satisfied
  queries (averaged over the stream),
* *time budget* — the paper aborts algorithms that exceed 24 hours on an
  experiment; the runner accepts a (much smaller) budget and reports the
  number of updates processed before it was exhausted, which is how the
  "timed out at |GE| = X" asterisks of Figs. 12(f), 13(a) and 14 are
  regenerated,
* *subscriptions* — pub/sub delivery of per-listener match deltas through a
  :class:`~repro.pubsub.broker.SubscriptionBroker` (``broker=`` /
  ``subscriptions=``), which is how applications consume the engines and
  which subsumes the older poll-every-satisfied-query loop (``poll_every``)
  and the bare :data:`MatchListener` callbacks (deprecated, kept as a
  compatibility shim).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.engine import ContinuousEngine
from ..graph.elements import Update
from ..graph.stream import GraphStream
from ..query.pattern import QueryGraphPattern
from .metrics import TimingStats, deep_sizeof

__all__ = ["MatchListener", "ReplayResult", "StreamRunner"]

#: Callback invoked with (update, matched query ids) for non-empty answers.
#: Deprecated in favour of broker subscriptions (which deliver the *changed
#: answers*, not just the notified ids); kept as a compatibility shim.
MatchListener = Callable[[Update, FrozenSet[str]], None]


@dataclass
class ReplayResult:
    """Outcome of replaying one stream through one engine.

    With ``batch_size > 1`` the ``answering`` samples are *per micro-batch*
    (one sample per ``on_batch`` call) and ``matched_updates`` counts the
    batches that produced a non-empty answer set.
    """

    engine: str
    num_updates: int
    updates_processed: int
    indexing_time_s: float
    batch_size: int = 1
    answering: TimingStats = field(default_factory=TimingStats)
    matches_emitted: int = 0
    matched_updates: int = 0
    timed_out: bool = False
    memory_bytes: Optional[int] = None
    #: ``matches_of`` polling (``poll_every``): per-poll-round timings and
    #: the total number of answer dictionaries decoded across the replay.
    polling: TimingStats = field(default_factory=TimingStats)
    answers_decoded: int = 0
    #: Broker mode (``broker=`` / ``subscriptions=``): deltas delivered to
    #: subscriptions, answer dictionaries carried by them, and the
    #: per-policy overflow events observed across the replay.
    deltas_delivered: int = 0
    delta_answers: int = 0
    deltas_dropped: int = 0
    deltas_coalesced: int = 0
    backpressure_events: int = 0
    #: Names of subscriptions that exceeded capacity under
    #: ``OverflowPolicy.BLOCK`` at any point of the replay (including
    #: initial-snapshot deliveries) — the producer-facing backpressure flag
    #: that used to live only on the broker's internals.
    backpressured_subscriptions: Tuple[str, ...] = ()
    #: Affected-aware flushing: watched queries whose deltas were collected
    #: across the replay's ticks, and watched queries skipped because the
    #: engine's ``BatchReport`` proved the batch could not touch them.
    queries_flushed: int = 0
    queries_skipped: int = 0

    @property
    def backpressured(self) -> bool:
        """``True`` when any ``BLOCK`` subscription exceeded its capacity."""
        return bool(self.backpressured_subscriptions) or self.backpressure_events > 0

    @property
    def answering_time_ms_per_update(self) -> float:
        """Mean answering time per stream update in milliseconds.

        Computed from the total answering time over the updates actually
        processed, so it stays a *per-update* figure whatever the batch size.
        """
        if self.updates_processed == 0:
            return 0.0
        return self.answering.total_seconds / self.updates_processed * 1e3

    @property
    def total_answering_time_s(self) -> float:
        """Total answering time across the replay in seconds."""
        return self.answering.total_seconds

    @property
    def completed(self) -> bool:
        """``True`` when every update of the stream was processed."""
        return self.updates_processed == self.num_updates and not self.timed_out

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary used by reports and EXPERIMENTS.md generation."""
        return {
            "engine": self.engine,
            "batch_size": self.batch_size,
            "num_updates": self.num_updates,
            "updates_processed": self.updates_processed,
            "indexing_time_s": round(self.indexing_time_s, 6),
            "answering_ms_per_update": round(self.answering_time_ms_per_update, 6),
            "total_answering_s": round(self.total_answering_time_s, 6),
            "matches_emitted": self.matches_emitted,
            "matched_updates": self.matched_updates,
            "timed_out": self.timed_out,
            "memory_bytes": self.memory_bytes,
            "polls": self.polling.count,
            "total_polling_s": round(self.polling.total_seconds, 6),
            "answers_decoded": self.answers_decoded,
            "deltas_delivered": self.deltas_delivered,
            "delta_answers": self.delta_answers,
            "deltas_dropped": self.deltas_dropped,
            "deltas_coalesced": self.deltas_coalesced,
            "backpressure_events": self.backpressure_events,
            "backpressured_subscriptions": list(self.backpressured_subscriptions),
            "queries_flushed": self.queries_flushed,
            "queries_skipped": self.queries_skipped,
        }


class StreamRunner:
    """Replay update streams through a continuous-query engine.

    Parameters
    ----------
    engine:
        The engine under measurement.  May be omitted when ``broker`` is
        given (the broker's engine is used).
    broker:
        A :class:`~repro.pubsub.broker.SubscriptionBroker` to drive the
        stream through: every update (or micro-batch) flows through the
        broker, which forwards it to the engine and then flushes match
        deltas to its subscriptions.  Delivery work is timed as part of
        answering; delivery counts land in the ``deltas_*`` fields of
        :class:`ReplayResult`.
    subscriptions:
        Subscription specs created on the broker before the replay (a
        broker is created on demand when none was given).  Each spec is a
        query id, an iterable of query ids, or a mapping of keyword
        arguments for :meth:`~repro.pubsub.broker.SubscriptionBroker.subscribe`.
        Note the engine's queries must already be registered; use
        :meth:`subscribe` after :meth:`index_queries` otherwise.
    batch_size:
        Number of stream updates handed to the engine per call.  ``1`` (the
        default) drives the engine through :meth:`~repro.core.engine.ContinuousEngine.on_update`;
        larger values drive it through micro-batches
        (:meth:`~repro.core.engine.ContinuousEngine.on_batch`), which is
        answer-equivalent but amortizes per-update overhead.  In batched
        mode listeners are invoked once per non-empty batch with the batch's
        final update and the union of the notified query ids.
    poll_every:
        When positive, every ``poll_every`` processed updates the runner
        polls :meth:`~repro.core.engine.ContinuousEngine.matches_of` for
        every currently satisfied query — the ``matches_of``-heavy workload
        that differentiates the answer-materialising ``+`` engines from
        their base variants.  Poll rounds are timed separately from
        answering (``ReplayResult.polling`` / ``answers_decoded``).
        Broker subscriptions subsume this loop for applications that only
        watch specific queries; the polling mode is kept for the benchmark
        comparisons.
    listeners:
        Deprecated notification callbacks (see :data:`MatchListener`);
        subscribe to a broker instead.
    """

    def __init__(
        self,
        engine: Optional[ContinuousEngine] = None,
        *,
        listeners: Sequence[MatchListener] = (),
        time_budget_s: Optional[float] = None,
        batch_size: int = 1,
        poll_every: int = 0,
        broker=None,
        subscriptions: Optional[Iterable[object]] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if poll_every < 0:
            raise ValueError("poll_every must not be negative")
        if broker is not None:
            if engine is None:
                engine = broker.engine
            elif engine is not broker.engine:
                raise ValueError("broker drives a different engine than the one given")
        if engine is None:
            raise ValueError("StreamRunner needs an engine or a broker")
        self.engine = engine
        self.broker = broker
        self.listeners: List[MatchListener] = list(listeners)
        if self.listeners:
            warnings.warn(
                "StreamRunner listeners are deprecated; subscribe to a "
                "SubscriptionBroker for per-query match deltas instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self.time_budget_s = time_budget_s
        self.batch_size = batch_size
        self.poll_every = poll_every
        self.indexing_time_s = 0.0
        for spec in subscriptions or ():
            self._subscribe_spec(spec)

    # ------------------------------------------------------------------
    # Subscriptions and listeners
    # ------------------------------------------------------------------
    def _require_broker(self):
        if self.broker is None:
            from ..pubsub.broker import SubscriptionBroker

            self.broker = SubscriptionBroker(self.engine)
        return self.broker

    def _subscribe_spec(self, spec: object) -> None:
        if isinstance(spec, Mapping):
            self.subscribe(**dict(spec))
        elif isinstance(spec, str):
            self.subscribe([spec])
        else:
            self.subscribe(list(spec))  # type: ignore[arg-type]

    def subscribe(self, query_ids=None, **kwargs):
        """Create a broker subscription (building the broker on demand).

        Forwards to :meth:`SubscriptionBroker.subscribe
        <repro.pubsub.broker.SubscriptionBroker.subscribe>`
        with ``query_ids`` (``None`` = every registered query) and returns
        the :class:`~repro.pubsub.broker.Subscription`.
        """
        return self._require_broker().subscribe(
            kwargs.pop("name", None), query_ids, **kwargs
        )

    def add_listener(self, listener: MatchListener) -> None:
        """Register a notification callback.

        .. deprecated:: broker subscriptions deliver per-query match deltas
           (the changed answers) instead of bare notified-id sets; this shim
           remains for existing callers.
        """
        warnings.warn(
            "StreamRunner.add_listener is deprecated; subscribe to a "
            "SubscriptionBroker for per-query match deltas instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.listeners.append(listener)

    # ------------------------------------------------------------------
    # Query indexing
    # ------------------------------------------------------------------
    def index_queries(self, queries: Iterable[QueryGraphPattern]) -> float:
        """Register ``queries`` with the engine, returning the elapsed seconds."""
        start = time.perf_counter()
        self.engine.register_all(queries)
        elapsed = time.perf_counter() - start
        self.indexing_time_s += elapsed
        return elapsed

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(
        self,
        stream: GraphStream | Sequence[Update],
        *,
        measure_memory: bool = False,
    ) -> ReplayResult:
        """Feed every update of ``stream`` to the engine and measure it.

        The replay stops early (and flags ``timed_out``) once the cumulative
        answering time exceeds the configured time budget.  With
        ``batch_size > 1`` the stream is consumed in micro-batches through
        the engine's batch API; the budget is checked after every batch.
        In broker mode each chunk flows through the broker (engine call plus
        delta flush and delivery) and the delivery counters are accumulated
        on the result.
        """
        updates = list(stream)
        result = ReplayResult(
            engine=self.engine.name,
            num_updates=len(updates),
            updates_processed=0,
            indexing_time_s=self.indexing_time_s,
            batch_size=self.batch_size,
        )
        budget = self.time_budget_s
        elapsed_total = 0.0
        per_update = self.batch_size == 1
        broker = self.broker
        updates_since_poll = 0
        backpressured_names: set = set()
        for start_index in range(0, len(updates), self.batch_size):
            chunk = updates[start_index : start_index + self.batch_size]
            start = time.perf_counter()
            if broker is not None:
                tick = (
                    broker.on_update(chunk[0]) if per_update else broker.on_batch(chunk)
                )
                matched = tick.notified
            elif per_update:
                matched = self.engine.on_update(chunk[0])
            else:
                matched = self.engine.on_batch(chunk)
            elapsed = time.perf_counter() - start
            result.answering.record(elapsed)
            result.updates_processed += len(chunk)
            elapsed_total += elapsed
            if broker is not None:
                result.deltas_delivered += tick.delivered
                result.delta_answers += tick.num_changes
                result.deltas_dropped += tick.dropped
                result.deltas_coalesced += tick.coalesced
                result.backpressure_events += len(tick.backpressured)
                backpressured_names.update(tick.backpressured)
                result.queries_flushed += tick.flushed
                result.queries_skipped += tick.skipped
            if matched:
                result.matched_updates += 1
                result.matches_emitted += len(matched)
                for listener in self.listeners:
                    listener(chunk[-1], matched)
            if self.poll_every:
                updates_since_poll += len(chunk)
                if updates_since_poll >= self.poll_every:
                    # Keep the remainder so batched replays still poll every
                    # ~poll_every updates, not every ceil(poll_every /
                    # batch_size) batches.
                    updates_since_poll -= self.poll_every
                    poll_start = time.perf_counter()
                    for query_id in sorted(self.engine.satisfied_queries()):
                        result.answers_decoded += len(self.engine.matches_of(query_id))
                    poll_elapsed = time.perf_counter() - poll_start
                    result.polling.record(poll_elapsed)
                    elapsed_total += poll_elapsed
            if budget is not None and elapsed_total > budget:
                result.timed_out = True
                break
        if broker is not None:
            # A BLOCK queue may also have overflowed outside a tick (the
            # initial snapshot of a mid-replay subscribe); fold any
            # still-over-capacity BLOCK subscription into the flag.
            for name, subscription in broker.subscriptions.items():
                if (
                    subscription.backpressured
                    or len(subscription.queue) > subscription.capacity
                ):
                    backpressured_names.add(name)
            result.backpressured_subscriptions = tuple(sorted(backpressured_names))
        if measure_memory:
            result.memory_bytes = deep_sizeof(self.engine)
        return result
