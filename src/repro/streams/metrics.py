"""Measurement utilities: wall-clock timing and approximate memory footprints.

The paper reports (i) query answering time per update, (ii) query indexing
time, and (iii) total main-memory requirements per algorithm.  This module
provides the corresponding measurement primitives used by the replay harness
and the benchmark suite.
"""

from __future__ import annotations

import statistics
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

__all__ = ["Timer", "TimingStats", "deep_sizeof"]


class Timer:
    """A tiny ``perf_counter`` stopwatch usable as a context manager."""

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start

    @property
    def elapsed_ms(self) -> float:
        """Elapsed time in milliseconds."""
        return self.elapsed * 1e3


@dataclass
class TimingStats:
    """Accumulates per-operation latencies (seconds) and summarises them."""

    samples: List[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        """Add one latency sample."""
        self.samples.append(seconds)

    def extend(self, seconds: Iterable[float]) -> None:
        """Add many latency samples."""
        self.samples.extend(seconds)

    @property
    def count(self) -> int:
        """Number of samples."""
        return len(self.samples)

    @property
    def total_seconds(self) -> float:
        """Sum of all samples."""
        return sum(self.samples)

    @property
    def mean_ms(self) -> float:
        """Mean latency in milliseconds (0 when empty)."""
        if not self.samples:
            return 0.0
        return statistics.fmean(self.samples) * 1e3

    @property
    def median_ms(self) -> float:
        """Median latency in milliseconds (0 when empty)."""
        if not self.samples:
            return 0.0
        return statistics.median(self.samples) * 1e3

    def percentile_ms(self, fraction: float) -> float:
        """Nearest-rank ``fraction`` percentile in milliseconds (0 when empty)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
        return ordered[index] * 1e3

    @property
    def p50_ms(self) -> float:
        """50th-percentile latency in milliseconds (0 when empty)."""
        return self.percentile_ms(0.50)

    @property
    def p95_ms(self) -> float:
        """95th-percentile latency in milliseconds (0 when empty)."""
        return self.percentile_ms(0.95)

    @property
    def p99_ms(self) -> float:
        """99th-percentile latency in milliseconds (0 when empty)."""
        return self.percentile_ms(0.99)

    @property
    def max_ms(self) -> float:
        """Maximum latency in milliseconds (0 when empty)."""
        if not self.samples:
            return 0.0
        return max(self.samples) * 1e3

    def summary(self) -> Dict[str, float]:
        """All summary statistics as a dictionary."""
        return {
            "count": float(self.count),
            "total_s": self.total_seconds,
            "mean_ms": self.mean_ms,
            "median_ms": self.median_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }


def deep_sizeof(obj: object, _seen: set | None = None) -> int:
    """Approximate deep memory footprint of ``obj`` in bytes.

    Recursively follows containers, instance ``__dict__``s and ``__slots__``;
    shared objects are counted once.  The absolute numbers are Python-object
    sizes (not comparable to the paper's JVM measurements), but the *relative*
    footprints across engines reproduce Fig. 13(c)'s ordering.
    """
    seen = _seen if _seen is not None else set()
    object_id = id(obj)
    if object_id in seen:
        return 0
    seen.add(object_id)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += deep_sizeof(key, seen)
            size += deep_sizeof(value, seen)
        return size
    if isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += deep_sizeof(item, seen)
        return size
    if isinstance(obj, (str, bytes, bytearray, int, float, bool, complex)) or obj is None:
        return size
    if hasattr(obj, "__dict__"):
        size += deep_sizeof(vars(obj), seen)
    slots = getattr(type(obj), "__slots__", ())
    if isinstance(slots, str):
        slots = (slots,)
    for slot in slots:
        if hasattr(obj, slot):
            size += deep_sizeof(getattr(obj, slot), seen)
    return size
