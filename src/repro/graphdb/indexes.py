"""Secondary indexes of the embedded property-graph store.

The paper's Neo4j baseline configures the database to "build indexes on all
labels of the schema allowing for faster look up times of nodes".  The
equivalents here are:

* :class:`LabelIndex` — edge label -> set of (source, target) pairs,
* :class:`AdjacencyIndex` — per-vertex, per-label adjacency in both
  directions,
* :class:`VertexLabelIndex` — vertex label (entity class) -> vertex ids.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Set, Tuple

__all__ = ["LabelIndex", "AdjacencyIndex", "VertexLabelIndex"]


class LabelIndex:
    """Edge-label index: label -> set of (source, target) pairs."""

    def __init__(self) -> None:
        self._pairs: Dict[str, Set[Tuple[str, str]]] = defaultdict(set)

    def add(self, label: str, source: str, target: str) -> None:
        """Index one edge occurrence."""
        self._pairs[label].add((source, target))

    def remove(self, label: str, source: str, target: str) -> None:
        """Drop one edge occurrence (no-op when absent)."""
        self._pairs.get(label, set()).discard((source, target))

    def pairs(self, label: str) -> Set[Tuple[str, str]]:
        """All (source, target) pairs carrying ``label``."""
        return self._pairs.get(label, set())

    def cardinality(self, label: str) -> int:
        """Number of distinct edges with ``label`` (used by the planner)."""
        return len(self._pairs.get(label, ()))

    def labels(self) -> Iterable[str]:
        """All indexed labels."""
        return self._pairs.keys()


class AdjacencyIndex:
    """Per-vertex adjacency: ``vertex -> label -> neighbours`` (both directions)."""

    def __init__(self) -> None:
        self._out: Dict[str, Dict[str, Set[str]]] = defaultdict(dict)
        self._in: Dict[str, Dict[str, Set[str]]] = defaultdict(dict)

    def add(self, label: str, source: str, target: str) -> None:
        """Index one edge occurrence."""
        self._out[source].setdefault(label, set()).add(target)
        self._in[target].setdefault(label, set()).add(source)

    def remove(self, label: str, source: str, target: str) -> None:
        """Drop one edge occurrence (no-op when absent)."""
        targets = self._out.get(source, {}).get(label)
        if targets is not None:
            targets.discard(target)
        sources = self._in.get(target, {}).get(label)
        if sources is not None:
            sources.discard(source)

    def successors(self, vertex: str, label: str) -> Set[str]:
        """Targets reachable from ``vertex`` through ``label``."""
        return self._out.get(vertex, {}).get(label, set())

    def predecessors(self, vertex: str, label: str) -> Set[str]:
        """Sources reaching ``vertex`` through ``label``."""
        return self._in.get(vertex, {}).get(label, set())

    def out_degree(self, vertex: str) -> int:
        """Distinct outgoing (label, target) pairs of ``vertex``."""
        return sum(len(ts) for ts in self._out.get(vertex, {}).values())

    def in_degree(self, vertex: str) -> int:
        """Distinct incoming (label, source) pairs of ``vertex``."""
        return sum(len(ss) for ss in self._in.get(vertex, {}).values())


class VertexLabelIndex:
    """Vertex-label (entity class) index: class name -> vertex ids."""

    def __init__(self) -> None:
        self._members: Dict[str, Set[str]] = defaultdict(set)

    def add(self, vertex_label: str, vertex_id: str) -> None:
        """Index a vertex under its class label."""
        self._members[vertex_label].add(vertex_id)

    def remove(self, vertex_label: str, vertex_id: str) -> None:
        """Remove a vertex from a class label (no-op when absent)."""
        self._members.get(vertex_label, set()).discard(vertex_id)

    def members(self, vertex_label: str) -> Set[str]:
        """All vertices of class ``vertex_label``."""
        return self._members.get(vertex_label, set())

    def cardinality(self, vertex_label: str) -> int:
        """Number of vertices of class ``vertex_label``."""
        return len(self._members.get(vertex_label, ()))
