"""Embedded property-graph database substrate (the Neo4j substitute)."""

from .executor import ExecutionResult, QueryExecutor
from .indexes import AdjacencyIndex, LabelIndex, VertexLabelIndex
from .planner import QueryPlan, QueryPlanner
from .query import EdgeConstraint, GraphQuery, compile_pattern
from .store import PropertyGraphStore, StoredEdge, StoredVertex, StoreStatistics
from .transactions import Transaction, TransactionManager

__all__ = [
    "PropertyGraphStore",
    "StoredVertex",
    "StoredEdge",
    "StoreStatistics",
    "LabelIndex",
    "AdjacencyIndex",
    "VertexLabelIndex",
    "GraphQuery",
    "EdgeConstraint",
    "compile_pattern",
    "QueryPlanner",
    "QueryPlan",
    "QueryExecutor",
    "ExecutionResult",
    "Transaction",
    "TransactionManager",
]
