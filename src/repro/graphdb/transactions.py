"""Write batching for the embedded graph store.

The paper tunes its Neo4j baseline so that "a transaction can perform up to
20K writes in the database without degrading performance".  The
:class:`TransactionManager` mirrors that behaviour: writes are buffered into
an open transaction and flushed to the store either explicitly or when the
configured batch size is reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..graph.errors import GraphError
from .store import PropertyGraphStore, StoredEdge

__all__ = ["Transaction", "TransactionManager"]


@dataclass
class _WriteOp:
    kind: str  # "add" | "remove"
    label: str
    source: str
    target: str


class Transaction:
    """A buffered set of writes applied atomically on commit."""

    def __init__(self, store: PropertyGraphStore) -> None:
        self._store = store
        self._ops: List[_WriteOp] = []
        self._committed = False

    @property
    def pending_writes(self) -> int:
        """Number of buffered write operations."""
        return len(self._ops)

    @property
    def committed(self) -> bool:
        """``True`` once the transaction has been committed."""
        return self._committed

    def add_edge(self, label: str, source: str, target: str) -> None:
        """Buffer an edge addition."""
        self._ensure_open()
        self._ops.append(_WriteOp("add", label, source, target))

    def remove_edge(self, label: str, source: str, target: str) -> None:
        """Buffer an edge removal."""
        self._ensure_open()
        self._ops.append(_WriteOp("remove", label, source, target))

    def commit(self) -> int:
        """Apply every buffered write to the store; returns the write count."""
        self._ensure_open()
        for op in self._ops:
            if op.kind == "add":
                self._store.add_edge(op.label, op.source, op.target)
            else:
                self._store.remove_edge(op.label, op.source, op.target)
        count = len(self._ops)
        self._ops.clear()
        self._committed = True
        return count

    def rollback(self) -> None:
        """Discard every buffered write."""
        self._ensure_open()
        self._ops.clear()
        self._committed = True

    def _ensure_open(self) -> None:
        if self._committed:
            raise GraphError("transaction already committed or rolled back")


class TransactionManager:
    """Create transactions and auto-commit them every ``writes_per_transaction`` writes."""

    def __init__(self, store: PropertyGraphStore, writes_per_transaction: int = 20_000) -> None:
        if writes_per_transaction <= 0:
            raise GraphError("writes_per_transaction must be positive")
        self.store = store
        self.writes_per_transaction = writes_per_transaction
        self._current: Optional[Transaction] = None
        self.transactions_committed = 0
        self.writes_committed = 0

    def begin(self) -> Transaction:
        """Return the open transaction, creating one when needed."""
        if self._current is None or self._current.committed:
            self._current = Transaction(self.store)
        return self._current

    def write_edge_addition(self, label: str, source: str, target: str) -> None:
        """Buffer an addition, auto-committing full batches."""
        tx = self.begin()
        tx.add_edge(label, source, target)
        self._maybe_autocommit(tx)

    def write_edge_removal(self, label: str, source: str, target: str) -> None:
        """Buffer a removal, auto-committing full batches."""
        tx = self.begin()
        tx.remove_edge(label, source, target)
        self._maybe_autocommit(tx)

    def flush(self) -> int:
        """Commit any pending writes; returns how many were applied."""
        if self._current is None or self._current.committed:
            return 0
        written = self._current.commit()
        if written:
            self.transactions_committed += 1
            self.writes_committed += written
        return written

    def _maybe_autocommit(self, tx: Transaction) -> None:
        if tx.pending_writes >= self.writes_per_transaction:
            self.flush()
