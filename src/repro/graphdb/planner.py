"""Cost-based ordering of edge constraints for the embedded executor.

Like a real graph database, the executor does not evaluate constraints in
declaration order: the planner orders them so that highly selective
constraints (literal endpoints, rare labels) are matched first and every
subsequent constraint is connected to the already-bound variables whenever
possible.  Plans are cheap to build and are cached per query by the
executor, mirroring Neo4j's parameterised query-plan cache that the paper's
baseline relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from ..query.terms import Literal, Variable
from .query import EdgeConstraint, GraphQuery
from .store import PropertyGraphStore

__all__ = ["QueryPlan", "QueryPlanner"]


@dataclass(frozen=True)
class QueryPlan:
    """An ordered sequence of edge constraints plus its estimated cost."""

    query_id: str
    ordered_constraints: Tuple[EdgeConstraint, ...]
    estimated_cost: float

    @property
    def num_steps(self) -> int:
        """Number of constraint-matching steps."""
        return len(self.ordered_constraints)


class QueryPlanner:
    """Greedy selectivity-driven planner over store statistics."""

    def __init__(self, store: PropertyGraphStore) -> None:
        self.store = store

    def plan(self, query: GraphQuery) -> QueryPlan:
        """Order the constraints of ``query`` for execution."""
        remaining: List[EdgeConstraint] = list(query.constraints)
        ordered: List[EdgeConstraint] = []
        bound: Set[str] = set()
        total_cost = 0.0
        while remaining:
            scored = [
                (self._constraint_cost(constraint, bound), index, constraint)
                for index, constraint in enumerate(remaining)
            ]
            cost, index, constraint = min(scored, key=lambda item: (item[0], item[1]))
            ordered.append(constraint)
            total_cost += cost
            bound.update(constraint.bound_terms())
            remaining.pop(index)
        return QueryPlan(query.query_id, tuple(ordered), total_cost)

    def _constraint_cost(self, constraint: EdgeConstraint, bound: Set[str]) -> float:
        """Estimated number of candidate edges for ``constraint``.

        Literal or already-bound endpoints restrict the scan to an adjacency
        list (estimated as the square root of the label cardinality); fully
        unbound constraints scan the whole label.
        """
        cardinality = max(1, self.store.label_cardinality(constraint.label))
        source_known = self._is_known(constraint.source, bound)
        target_known = self._is_known(constraint.target, bound)
        if source_known and target_known:
            return 1.0
        if source_known or target_known:
            return float(cardinality) ** 0.5
        return float(cardinality)

    @staticmethod
    def _is_known(term, bound: Set[str]) -> bool:
        if isinstance(term, Literal):
            return True
        if isinstance(term, Variable):
            return term.name in bound
        return False
