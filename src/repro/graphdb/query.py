"""Declarative graph queries for the embedded store.

The paper's baseline converts every continuous query into Neo4j's Cypher
language before execution.  :class:`GraphQuery` plays the same role here: a
compiled, store-independent description of the pattern (edge constraints over
literals and named parameters/variables), together with a Cypher-like textual
rendering used in logs and documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..query.pattern import QueryGraphPattern
from ..query.terms import Literal, Term, Variable

__all__ = ["EdgeConstraint", "GraphQuery", "compile_pattern"]


@dataclass(frozen=True)
class EdgeConstraint:
    """One relationship constraint: ``source --label--> target``."""

    label: str
    source: Term
    target: Term

    def bound_terms(self) -> Tuple[str, ...]:
        """Names of the variables referenced by this constraint."""
        names = []
        for term in (self.source, self.target):
            if isinstance(term, Variable):
                names.append(term.name)
        return tuple(names)


@dataclass(frozen=True)
class GraphQuery:
    """A compiled pattern query over the property-graph store."""

    query_id: str
    constraints: Tuple[EdgeConstraint, ...]
    variables: Tuple[str, ...]

    @property
    def num_constraints(self) -> int:
        """Number of relationship constraints."""
        return len(self.constraints)

    def to_text(self) -> str:
        """Cypher-flavoured textual form (for logs, docs, and debugging)."""
        parts: List[str] = []
        for constraint in self.constraints:
            source = _render_term(constraint.source)
            target = _render_term(constraint.target)
            parts.append(f"({source})-[:{constraint.label}]->({target})")
        return_clause = ", ".join(self.variables) if self.variables else "*"
        return f"MATCH {', '.join(parts)} RETURN {return_clause}"


def _render_term(term: Term) -> str:
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Literal):
        return f"{{id: {term.value!r}}}"
    raise TypeError(f"unexpected term: {term!r}")


def compile_pattern(pattern: QueryGraphPattern) -> GraphQuery:
    """Compile a :class:`QueryGraphPattern` into a :class:`GraphQuery`."""
    constraints = tuple(
        EdgeConstraint(edge.label, edge.source, edge.target) for edge in pattern.edges
    )
    variables = tuple(variable.name for variable in pattern.variables())
    return GraphQuery(pattern.query_id, constraints, variables)
