"""Backtracking executor for the embedded property-graph store.

Executes a compiled :class:`~repro.graphdb.query.GraphQuery` against a
:class:`~repro.graphdb.store.PropertyGraphStore` following the order chosen
by the :class:`~repro.graphdb.planner.QueryPlanner`.  Plans are cached per
query id and invalidated when the store has grown substantially, emulating
the parameterised query-plan cache the paper's Neo4j baseline enables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..query.terms import Literal, Variable
from .planner import QueryPlan, QueryPlanner
from .query import EdgeConstraint, GraphQuery
from .store import PropertyGraphStore

__all__ = ["QueryExecutor", "ExecutionResult"]

Assignment = Dict[str, str]


class ExecutionResult:
    """Execution outcome: bindings plus simple execution counters."""

    __slots__ = ("assignments", "constraints_checked", "candidates_scanned")

    def __init__(self, assignments: List[Assignment], constraints_checked: int, candidates_scanned: int) -> None:
        self.assignments = assignments
        self.constraints_checked = constraints_checked
        self.candidates_scanned = candidates_scanned

    def __len__(self) -> int:
        return len(self.assignments)

    def __bool__(self) -> bool:
        return bool(self.assignments)

    def __iter__(self):
        return iter(self.assignments)


class QueryExecutor:
    """Plan-driven backtracking pattern matcher with a per-query plan cache."""

    def __init__(self, store: PropertyGraphStore, planner: QueryPlanner | None = None, *, plan_cache_growth: float = 2.0) -> None:
        self.store = store
        self.planner = planner or QueryPlanner(store)
        self._plan_cache: Dict[str, Tuple[int, QueryPlan]] = {}
        self._plan_cache_growth = plan_cache_growth
        self.plans_built = 0
        self.plan_cache_hits = 0
        # Literal vertices of the query currently being executed; injective
        # semantics forbid variables from binding to them.
        self._literal_values: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Plan cache
    # ------------------------------------------------------------------
    def plan_for(self, query: GraphQuery) -> QueryPlan:
        """Return a (possibly cached) execution plan for ``query``."""
        entry = self._plan_cache.get(query.query_id)
        current_size = max(1, self.store.num_edges)
        if entry is not None:
            planned_size, plan = entry
            if current_size <= planned_size * self._plan_cache_growth:
                self.plan_cache_hits += 1
                return plan
        plan = self.planner.plan(query)
        self.plans_built += 1
        self._plan_cache[query.query_id] = (current_size, plan)
        return plan

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: GraphQuery,
        *,
        injective: bool = False,
        limit: Optional[int] = None,
    ) -> ExecutionResult:
        """Enumerate the bindings of ``query`` over the current store contents."""
        plan = self.plan_for(query)
        counters = {"constraints": 0, "candidates": 0}
        results: List[Assignment] = []
        literal_values = tuple(
            term.value
            for constraint in query.constraints
            for term in (constraint.source, constraint.target)
            if isinstance(term, Literal)
        )
        self._literal_values = literal_values
        self._search(plan.ordered_constraints, 0, {}, injective, limit, results, counters)
        unique = self._dedupe(results)
        return ExecutionResult(unique, counters["constraints"], counters["candidates"])

    def _search(
        self,
        constraints: Sequence[EdgeConstraint],
        position: int,
        assignment: Assignment,
        injective: bool,
        limit: Optional[int],
        results: List[Assignment],
        counters: Dict[str, int],
    ) -> None:
        if limit is not None and len(results) >= limit:
            return
        if position == len(constraints):
            if not injective or self._is_injective(assignment):
                results.append(dict(assignment))
            return
        constraint = constraints[position]
        counters["constraints"] += 1
        for source, target in self._candidates(constraint, assignment, counters):
            extended = self._bind(constraint, source, target, assignment)
            if extended is None:
                continue
            self._search(constraints, position + 1, extended, injective, limit, results, counters)
            if limit is not None and len(results) >= limit:
                return

    def _candidates(
        self, constraint: EdgeConstraint, assignment: Assignment, counters: Dict[str, int]
    ):
        source = self._resolve(constraint.source, assignment)
        target = self._resolve(constraint.target, assignment)
        label = constraint.label
        if source is not None and target is not None:
            counters["candidates"] += 1
            if self.store.has_edge(label, source, target):
                yield (source, target)
            return
        if source is not None:
            for candidate in self.store.successors(source, label):
                counters["candidates"] += 1
                yield (source, candidate)
            return
        if target is not None:
            for candidate in self.store.predecessors(target, label):
                counters["candidates"] += 1
                yield (candidate, target)
            return
        for pair in self.store.edges_with_label(label):
            counters["candidates"] += 1
            yield pair

    # ------------------------------------------------------------------
    # Binding helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(term, assignment: Assignment) -> Optional[str]:
        if isinstance(term, Literal):
            return term.value
        if isinstance(term, Variable):
            return assignment.get(term.name)
        return None

    @staticmethod
    def _bind(constraint: EdgeConstraint, source: str, target: str, assignment: Assignment) -> Optional[Assignment]:
        extended = dict(assignment)
        for term, value in ((constraint.source, source), (constraint.target, target)):
            if isinstance(term, Literal):
                if term.value != value:
                    return None
            else:
                bound = extended.get(term.name)
                if bound is None:
                    extended[term.name] = value
                elif bound != value:
                    return None
        return extended

    def _is_injective(self, assignment: Assignment) -> bool:
        values = list(assignment.values()) + list(self._literal_values)
        return len(set(values)) == len(values)

    @staticmethod
    def _dedupe(assignments: List[Assignment]) -> List[Assignment]:
        seen: Set[Tuple[Tuple[str, str], ...]] = set()
        unique: List[Assignment] = []
        for assignment in assignments:
            key = tuple(sorted(assignment.items()))
            if key not in seen:
                seen.add(key)
                unique.append(assignment)
        return unique
