"""Embedded in-memory property-graph store.

This is the repository's stand-in for the embedded Neo4j instance used by the
paper's third baseline: a persistent (for the process lifetime) multigraph
store with label indexes, adjacency indexes, per-label statistics and
multi-edge support.  The continuous-query baseline applies every stream
update to this store and re-executes affected queries against it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from ..graph.elements import Edge
from ..graph.errors import EdgeNotFoundError
from .indexes import AdjacencyIndex, LabelIndex, VertexLabelIndex

__all__ = ["StoredVertex", "StoredEdge", "PropertyGraphStore", "StoreStatistics"]


@dataclass
class StoredVertex:
    """A vertex record: id, optional class labels, optional properties."""

    vertex_id: str
    labels: Set[str] = field(default_factory=set)
    properties: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class StoredEdge:
    """An edge record with a unique id (multi-edges get distinct ids)."""

    edge_id: int
    label: str
    source: str
    target: str

    def as_edge(self) -> Edge:
        """Convert to the lightweight :class:`~repro.graph.elements.Edge`."""
        return Edge(self.label, self.source, self.target)


@dataclass(frozen=True)
class StoreStatistics:
    """Summary counts used by reports and by the query planner."""

    num_vertices: int
    num_edges: int
    num_labels: int
    label_cardinalities: Dict[str, int]


class PropertyGraphStore:
    """In-memory property graph with label and adjacency indexes."""

    def __init__(self) -> None:
        self._vertices: Dict[str, StoredVertex] = {}
        self._edges: Dict[int, StoredEdge] = {}
        self._edge_ids_by_triple: Dict[Tuple[str, str, str], list] = {}
        self._next_edge_id = 0
        self._label_index = LabelIndex()
        self._adjacency = AdjacencyIndex()
        self._vertex_labels = VertexLabelIndex()
        self._label_counts: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------
    def create_vertex(
        self,
        vertex_id: str,
        labels: Iterable[str] = (),
        properties: Optional[Dict[str, object]] = None,
    ) -> StoredVertex:
        """Create (or fetch) a vertex, merging labels and properties."""
        vertex = self._vertices.get(vertex_id)
        if vertex is None:
            vertex = StoredVertex(vertex_id)
            self._vertices[vertex_id] = vertex
        for label in labels:
            if label not in vertex.labels:
                vertex.labels.add(label)
                self._vertex_labels.add(label, vertex_id)
        if properties:
            vertex.properties.update(properties)
        return vertex

    def vertex(self, vertex_id: str) -> Optional[StoredVertex]:
        """Return the vertex record or ``None``."""
        return self._vertices.get(vertex_id)

    def has_vertex(self, vertex_id: str) -> bool:
        """``True`` when the vertex exists."""
        return vertex_id in self._vertices

    def vertices_with_label(self, label: str) -> Set[str]:
        """Vertex ids carrying the class label ``label``."""
        return set(self._vertex_labels.members(label))

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, label: str, source: str, target: str) -> StoredEdge:
        """Add one edge occurrence, creating endpoints as needed."""
        self.create_vertex(source)
        self.create_vertex(target)
        edge_id = self._next_edge_id
        self._next_edge_id += 1
        record = StoredEdge(edge_id, label, source, target)
        self._edges[edge_id] = record
        self._edge_ids_by_triple.setdefault((label, source, target), []).append(edge_id)
        self._label_index.add(label, source, target)
        self._adjacency.add(label, source, target)
        self._label_counts[label] += 1
        return record

    def remove_edge(self, label: str, source: str, target: str) -> StoredEdge:
        """Remove one occurrence of the edge; raises when absent."""
        triple = (label, source, target)
        ids = self._edge_ids_by_triple.get(triple)
        if not ids:
            raise EdgeNotFoundError(f"edge not present in store: {source}-[{label}]->{target}")
        edge_id = ids.pop()
        record = self._edges.pop(edge_id)
        if not ids:
            del self._edge_ids_by_triple[triple]
            self._label_index.remove(label, source, target)
            self._adjacency.remove(label, source, target)
        self._label_counts[label] -= 1
        if self._label_counts[label] == 0:
            del self._label_counts[label]
        return record

    def has_edge(self, label: str, source: str, target: str) -> bool:
        """``True`` when at least one occurrence of the edge exists."""
        return (label, source, target) in self._edge_ids_by_triple

    def multiplicity(self, label: str, source: str, target: str) -> int:
        """Number of occurrences of the edge."""
        return len(self._edge_ids_by_triple.get((label, source, target), ()))

    def edges(self) -> Iterator[StoredEdge]:
        """Iterate over every stored edge occurrence."""
        return iter(self._edges.values())

    # ------------------------------------------------------------------
    # Navigation (used by the executor)
    # ------------------------------------------------------------------
    def successors(self, vertex: str, label: str) -> Set[str]:
        """Targets of ``vertex`` through ``label``."""
        return self._adjacency.successors(vertex, label)

    def predecessors(self, vertex: str, label: str) -> Set[str]:
        """Sources reaching ``vertex`` through ``label``."""
        return self._adjacency.predecessors(vertex, label)

    def edges_with_label(self, label: str) -> Set[Tuple[str, str]]:
        """Distinct (source, target) pairs carrying ``label``."""
        return self._label_index.pairs(label)

    def label_cardinality(self, label: str) -> int:
        """Number of distinct edges carrying ``label`` (planner statistic)."""
        return self._label_index.cardinality(label)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the store."""
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        """Number of edge occurrences in the store."""
        return len(self._edges)

    def statistics(self) -> StoreStatistics:
        """Planner / report statistics snapshot."""
        cardinalities = {
            label: self._label_index.cardinality(label) for label in self._label_index.labels()
        }
        return StoreStatistics(
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
            num_labels=len(cardinalities),
            label_cardinalities=cardinalities,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PropertyGraphStore(vertices={self.num_vertices}, edges={self.num_edges})"
