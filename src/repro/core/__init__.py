"""Core contribution: the TRIC / TRIC+ engines and the trie forest."""

from .engine import BatchReport, ContinuousEngine
from .tric import TRICEngine, TRICPlusEngine
from .trie import Trie, TrieForest, TrieNode

__all__ = [
    "BatchReport",
    "ContinuousEngine",
    "TRICEngine",
    "TRICPlusEngine",
    "Trie",
    "TrieForest",
    "TrieNode",
]
