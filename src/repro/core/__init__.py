"""Core contribution: the TRIC / TRIC+ engines and the trie forest."""

from .engine import ContinuousEngine
from .tric import TRICEngine, TRICPlusEngine
from .trie import Trie, TrieForest, TrieNode

__all__ = [
    "ContinuousEngine",
    "TRICEngine",
    "TRICPlusEngine",
    "Trie",
    "TrieForest",
    "TrieNode",
]
