"""Abstract interface shared by every continuous multi-query engine.

An engine is a long-lived object that

1. *indexes* a set of continuous query graph patterns (the query database
   ``QDB``), and
2. consumes a stream of graph updates, reporting after each update which
   queries gained new answers (for additions) or lost all answers (for
   deletions).

All engines in this repository — TRIC, TRIC+, INV, INV+, INC, INC+, the
graph-database baseline and the naive oracle — implement this interface, so
the replay harness, the benchmarks, and the equivalence tests treat them
uniformly.
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, Iterable, List, Mapping

from ..graph.elements import Edge, Update, UpdateKind
from ..graph.errors import DuplicateQueryError, UnknownQueryError
from ..query.pattern import QueryGraphPattern

__all__ = ["ContinuousEngine"]


class ContinuousEngine(abc.ABC):
    """Base class for continuous multi-query processing engines.

    Parameters
    ----------
    injective:
        When ``True`` answers must map distinct query vertices to distinct
        graph vertices (sub-graph isomorphism); the default follows the
        paper's join-based semantics (homomorphism).
    """

    #: Short engine name used in reports and plots (overridden by subclasses).
    name: str = "abstract"

    def __init__(self, *, injective: bool = False) -> None:
        self.injective = injective
        self._queries: Dict[str, QueryGraphPattern] = {}
        self._satisfied: set[str] = set()
        self._updates_processed = 0

    # ------------------------------------------------------------------
    # Query database management
    # ------------------------------------------------------------------
    @property
    def queries(self) -> Mapping[str, QueryGraphPattern]:
        """The registered query database keyed by query id."""
        return dict(self._queries)

    @property
    def num_queries(self) -> int:
        """Number of registered queries."""
        return len(self._queries)

    def register(self, pattern: QueryGraphPattern) -> None:
        """Index one continuous query.

        Raises
        ------
        DuplicateQueryError
            If a query with the same id is already registered.
        """
        if pattern.query_id in self._queries:
            raise DuplicateQueryError(f"query id already registered: {pattern.query_id}")
        self._queries[pattern.query_id] = pattern
        self._index_query(pattern)

    def register_all(self, patterns: Iterable[QueryGraphPattern]) -> None:
        """Index every pattern in ``patterns``."""
        for pattern in patterns:
            self.register(pattern)

    def _require_known(self, query_id: str) -> QueryGraphPattern:
        pattern = self._queries.get(query_id)
        if pattern is None:
            raise UnknownQueryError(f"unknown query id: {query_id}")
        return pattern

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def on_update(self, update: Update) -> FrozenSet[str]:
        """Process one stream update.

        For an addition, returns the ids of queries that gained at least one
        new answer because of this update.  For a deletion, returns the ids
        of queries that were satisfied before and no longer have any answer.
        """
        self._updates_processed += 1
        if update.kind is UpdateKind.ADD:
            matched = self._on_addition(update.edge)
            self._satisfied.update(matched)
            return matched
        invalidated = self._on_deletion(update.edge)
        self._satisfied.difference_update(invalidated)
        return invalidated

    def process(self, updates: Iterable[Update]) -> List[FrozenSet[str]]:
        """Process many updates; returns the per-update answer sets."""
        return [self.on_update(update) for update in updates]

    @property
    def updates_processed(self) -> int:
        """Number of stream updates consumed so far."""
        return self._updates_processed

    def satisfied_queries(self) -> FrozenSet[str]:
        """Ids of queries that currently have at least one reported answer."""
        return frozenset(self._satisfied)

    # ------------------------------------------------------------------
    # Hooks implemented by concrete engines
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _index_query(self, pattern: QueryGraphPattern) -> None:
        """Index ``pattern`` into the engine's data structures."""

    @abc.abstractmethod
    def _on_addition(self, edge: Edge) -> FrozenSet[str]:
        """Handle an edge addition; return queries with new answers."""

    @abc.abstractmethod
    def _on_deletion(self, edge: Edge) -> FrozenSet[str]:
        """Handle an edge deletion; return queries that lost all answers."""

    @abc.abstractmethod
    def matches_of(self, query_id: str) -> List[Dict[str, str]]:
        """Current answers of ``query_id`` as variable-binding dictionaries."""

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Small description dictionary used in benchmark reports."""
        return {
            "engine": self.name,
            "queries": self.num_queries,
            "updates_processed": self._updates_processed,
            "satisfied": len(self._satisfied),
            "injective": self.injective,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(queries={self.num_queries})"
