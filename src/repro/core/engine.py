"""Abstract interface shared by every continuous multi-query engine.

An engine is a long-lived object that

1. *indexes* a set of continuous query graph patterns (the query database
   ``QDB``), and
2. consumes a stream of graph updates, reporting after each update which
   queries gained new answers (for additions) or lost all answers (for
   deletions).

All engines in this repository — TRIC, TRIC+, INV, INV+, INC, INC+, the
graph-database baseline and the naive oracle — implement this interface, so
the replay harness, the benchmarks, and the equivalence tests treat them
uniformly.
"""

from __future__ import annotations

import abc
import types
from typing import Dict, FrozenSet, Iterable, List, Mapping, NamedTuple, Optional, Sequence, Set

from ..graph.elements import Edge, Update, UpdateKind
from ..graph.errors import DuplicateQueryError, UnknownQueryError
from ..query.pattern import QueryGraphPattern

__all__ = ["BatchReport", "ContinuousEngine", "MaintainedAnswerSource"]


def _restore_report(notified, affected, additions, deletions):
    """Pickle constructor for :class:`BatchReport` (see ``__reduce__``)."""
    return BatchReport(
        notified, affected=affected, additions=additions, deletions=deletions
    )


class BatchReport(frozenset):
    """What one update (or micro-batch) did, as seen by the serving layer.

    A :class:`BatchReport` *is* the ``frozenset`` of notified query ids that
    :meth:`ContinuousEngine.on_update` / :meth:`~ContinuousEngine.on_batch`
    have always returned (queries that gained new answers, plus queries
    invalidated by deletions), so every existing caller keeps working
    unchanged.  On top of the set it carries the batch metadata that makes
    a tick O(affected work) downstream:

    ``affected``
        The ids of every query the batch *could have touched* — a superset
        of the queries whose ``matches_of`` changed (the completeness
        contract the property tests enforce), and usually a far smaller set
        than the registered query database.  ``None`` means the engine
        could not narrow it (the conservative fallback for engines without
        a native report — consumers must then treat every query as
        potentially affected).  Notified ids are always affected:
        ``self <= self.affected`` whenever ``affected`` is not ``None``.
    ``additions`` / ``deletions``
        Per-batch update counters (how many stream updates of each kind
        the report covers).

    The :class:`~repro.pubsub.broker.SubscriptionBroker` consults
    ``affected`` to skip flushing watched queries the batch cannot have
    changed; :class:`~repro.pubsub.sharding.ShardedEngineGroup` merges the
    per-shard reports deterministically.  Reports are picklable (the
    process-executor shards ship them between processes).
    """

    __slots__ = ("affected", "additions", "deletions")

    def __new__(
        cls,
        notified: Iterable[str] = (),
        *,
        affected: Optional[Iterable[str]] = None,
        additions: int = 0,
        deletions: int = 0,
    ) -> "BatchReport":
        report = super().__new__(cls, notified)
        report.affected = None if affected is None else frozenset(affected)
        report.additions = additions
        report.deletions = deletions
        return report

    @classmethod
    def wrap(
        cls,
        notified: FrozenSet[str],
        *,
        additions: int = 0,
        deletions: int = 0,
    ) -> "BatchReport":
        """Promote a hook result to a report, preserving a native ``affected``.

        Engines' per-kind hooks may return a plain frozenset (affected
        unknown) or a :class:`BatchReport` carrying their native affected
        set; either way the per-batch counters are (re)stamped here.
        """
        affected = notified.affected if isinstance(notified, cls) else None
        return cls(
            notified, affected=affected, additions=additions, deletions=deletions
        )

    @property
    def notified(self) -> FrozenSet[str]:
        """The notified ids — the report itself, named for readability."""
        return self

    @property
    def updates(self) -> int:
        """Stream updates covered by this report."""
        return self.additions + self.deletions

    @staticmethod
    def merge(reports: Iterable["BatchReport"]) -> "BatchReport":
        """Combine per-run (or per-shard) reports into one batch report.

        Notified ids and affected sets union; one constituent without an
        affected set (``None``) makes the merged set ``None`` too — the
        conservative direction.  Counters add up.
        """
        notified: Set[str] = set()
        affected: Optional[Set[str]] = set()
        additions = deletions = 0
        for report in reports:
            notified.update(report)
            if affected is not None:
                if report.affected is None:
                    affected = None
                else:
                    affected.update(report.affected)
            additions += report.additions
            deletions += report.deletions
        return BatchReport(
            notified, affected=affected, additions=additions, deletions=deletions
        )

    def __reduce__(self):
        return (
            _restore_report,
            (tuple(self), self.affected, self.additions, self.deletions),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        affected = "?" if self.affected is None else len(self.affected)
        return (
            f"BatchReport(notified={len(self)}, affected={affected}, "
            f"additions={self.additions}, deletions={self.deletions})"
        )


class MaintainedAnswerSource(NamedTuple):
    """A maintained answer relation exposed for exact delta consumption.

    ``relation`` is a live :class:`~repro.matching.relation.Relation` (its
    rows are the query's current answers and its *signed delta log* records
    every answer appearance/disappearance in order) and ``interner`` is the
    vertex encoding needed to decode its rows back to identifier strings.
    Consumers (the pub/sub layer's delta tracker) read
    ``relation.deltas_since(position)`` and must treat a ``uid``/``epoch``
    change as a wholesale replacement.
    """

    relation: object
    interner: object


class ContinuousEngine(abc.ABC):
    """Base class for continuous multi-query processing engines.

    Parameters
    ----------
    injective:
        When ``True`` answers must map distinct query vertices to distinct
        graph vertices (sub-graph isomorphism); the default follows the
        paper's join-based semantics (homomorphism).
    """

    #: Short engine name used in reports and plots (overridden by subclasses).
    name: str = "abstract"

    def __init__(self, *, injective: bool = False) -> None:
        self.injective = injective
        self._queries: Dict[str, QueryGraphPattern] = {}
        self._satisfied: set[str] = set()
        self._updates_processed = 0

    # ------------------------------------------------------------------
    # Query database management
    # ------------------------------------------------------------------
    @property
    def queries(self) -> Mapping[str, QueryGraphPattern]:
        """Read-only view of the registered query database keyed by query id.

        A :class:`types.MappingProxyType` over the live dictionary — O(1) to
        obtain (no copy per access) and always current.  Callers that need a
        snapshot can ``dict(engine.queries)`` explicitly.
        """
        return types.MappingProxyType(self._queries)

    @property
    def num_queries(self) -> int:
        """Number of registered queries."""
        return len(self._queries)

    def register(self, pattern: QueryGraphPattern) -> None:
        """Index one continuous query.

        Raises
        ------
        DuplicateQueryError
            If a query with the same id is already registered.
        """
        if pattern.query_id in self._queries:
            raise DuplicateQueryError(f"query id already registered: {pattern.query_id}")
        self._queries[pattern.query_id] = pattern
        self._index_query(pattern)

    def register_all(self, patterns: Iterable[QueryGraphPattern]) -> None:
        """Index every pattern in ``patterns``."""
        for pattern in patterns:
            self.register(pattern)

    def _require_known(self, query_id: str) -> QueryGraphPattern:
        pattern = self._queries.get(query_id)
        if pattern is None:
            raise UnknownQueryError(f"unknown query id: {query_id}")
        return pattern

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def on_update(self, update: Update) -> "BatchReport":
        """Process one stream update.

        For an addition, returns the ids of queries that gained at least one
        new answer because of this update.  For a deletion, returns the ids
        of queries that were satisfied before and no longer have any answer.
        The result is a :class:`BatchReport` — a frozenset of those ids that
        additionally carries the batch's *affected-query* set (when the
        engine can narrow it) for the serving layer.
        """
        self._updates_processed += 1
        if update.kind is UpdateKind.ADD:
            report = BatchReport.wrap(self._on_addition(update.edge), additions=1)
            self._satisfied.update(report)
            return report
        report = BatchReport.wrap(self._on_deletion(update.edge), deletions=1)
        self._satisfied.difference_update(report)
        return report

    def on_batch(self, updates: Sequence[Update]) -> "BatchReport":
        """Process a micro-batch of stream updates.

        Returns the union of the notifications a per-update replay of the
        batch would emit: ids of queries that gained new answers through the
        batch's additions plus ids of queries invalidated by its deletions.
        The final engine state is identical to processing the updates one by
        one (batching is answer-equivalent).  The result is a
        :class:`BatchReport`; its ``affected`` set unions the per-run
        affected sets (and degrades to ``None`` when any run could not
        narrow its own).

        Consecutive updates of the same kind form *runs* that are handed to
        the per-kind batch hooks, which engines override with native
        micro-batch implementations (one delta join per affected structure
        per run instead of one per update).  The default hooks fall back to
        per-update processing.
        """
        updates = list(updates)
        reports: List[BatchReport] = []
        start = 0
        while start < len(updates):
            kind = updates[start].kind
            stop = start
            while stop < len(updates) and updates[stop].kind is kind:
                stop += 1
            edges = [update.edge for update in updates[start:stop]]
            self._updates_processed += len(edges)
            if kind is UpdateKind.ADD:
                matched = BatchReport.wrap(
                    self._on_addition_batch(edges), additions=len(edges)
                )
                self._satisfied.update(matched)
            else:
                matched = BatchReport.wrap(
                    self._on_deletion_batch(edges), deletions=len(edges)
                )
                self._satisfied.difference_update(matched)
            reports.append(matched)
            start = stop
        return BatchReport.merge(reports)

    def process(self, updates: Iterable[Update]) -> List[FrozenSet[str]]:
        """Process many updates; returns the per-update answer sets."""
        return [self.on_update(update) for update in updates]

    def process_batches(self, updates: Iterable[Update], batch_size: int) -> List[FrozenSet[str]]:
        """Process ``updates`` in micro-batches; returns per-batch answer sets."""
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        updates = list(updates)
        return [
            self.on_batch(updates[start : start + batch_size])
            for start in range(0, len(updates), batch_size)
        ]

    @property
    def updates_processed(self) -> int:
        """Number of stream updates consumed so far."""
        return self._updates_processed

    def satisfied_queries(self) -> FrozenSet[str]:
        """Ids of queries that currently have at least one reported answer."""
        return frozenset(self._satisfied)

    # ------------------------------------------------------------------
    # Hooks implemented by concrete engines
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _index_query(self, pattern: QueryGraphPattern) -> None:
        """Index ``pattern`` into the engine's data structures."""

    @abc.abstractmethod
    def _on_addition(self, edge: Edge) -> FrozenSet[str]:
        """Handle an edge addition; return queries with new answers."""

    @abc.abstractmethod
    def _on_deletion(self, edge: Edge) -> FrozenSet[str]:
        """Handle an edge deletion; return queries that lost all answers."""

    def _on_addition_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        """Handle a run of edge additions; return queries with new answers.

        Default fallback: per-edge processing (``_satisfied`` is kept in
        step between edges so semantics match a per-update replay exactly).
        Engines override this with native micro-batch processing.  Per-edge
        results that carry a native affected set merge into the run's
        report; one bare frozenset degrades the run to affected-unknown.
        """
        per_edge: List[BatchReport] = []
        for edge in edges:
            new = BatchReport.wrap(self._on_addition(edge), additions=1)
            self._satisfied.update(new)
            per_edge.append(new)
        return BatchReport.merge(per_edge)

    def _on_deletion_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        """Handle a run of edge deletions; return queries that lost all answers.

        Default fallback: per-edge processing, mirroring
        :meth:`_on_addition_batch`.
        """
        per_edge: List[BatchReport] = []
        for edge in edges:
            gone = BatchReport.wrap(self._on_deletion(edge), deletions=1)
            self._satisfied.difference_update(gone)
            per_edge.append(gone)
        return BatchReport.merge(per_edge)

    @abc.abstractmethod
    def matches_of(self, query_id: str) -> List[Dict[str, str]]:
        """Current answers of ``query_id`` as variable-binding dictionaries."""

    def has_matches(self, query_id: str) -> bool:
        """``True`` iff ``query_id`` currently has at least one answer.

        The default materialises the full answer set; engines override
        this with an existence probe — an ``evaluate_full(limit=1)``
        backtracking search that stops at the first surviving witness, or
        an O(1) emptiness check of a maintained answer relation — which is
        what keeps deletion-time invalidation re-checks O(witness).
        """
        return bool(self.matches_of(query_id))

    def answer_delta_source(self, query_id: str) -> Optional[MaintainedAnswerSource]:
        """Maintained answer relation of ``query_id`` for exact delta reads.

        The narrow delta-emission hook behind the pub/sub layer
        (:mod:`repro.pubsub`): engines that keep a query's answer relation
        *maintained* (the answer-materialising tier — see
        :class:`~repro.matching.answers.MaterializedAnswers`) return it
        here, so per-listener match deltas are read straight off the
        relation's signed delta log — O(changed answers) per flush, no
        ``matches_of`` re-poll.  Engines without an exactly maintained
        relation for the query return ``None`` (the default) and the
        consumer falls back to snapshot diffing of ``matches_of``.

        Calling this may materialise the query (the same lazy step a first
        ``matches_of`` poll performs).
        """
        self._require_known(query_id)
        return None

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Full engine state as a self-verifying snapshot blob.

        The blob covers everything the engine owns — the interner table,
        the counted relations with their signed delta logs, the maintained
        indexes, the materialised answers, and the registered query
        database — so :meth:`restore` yields an engine behaviourally
        byte-identical to this one for any subsequent stream.  See
        :mod:`repro.persistence` for the envelope format and the
        write-ahead journal that pairs with it.
        """
        from ..persistence.snapshots import snapshot_engine

        return snapshot_engine(self)

    @staticmethod
    def restore(blob: bytes) -> "ContinuousEngine":
        """Rebuild an engine from a :meth:`snapshot` blob.

        Raises
        ------
        repro.graph.errors.SnapshotCorruptError
            When the blob fails its magic/version/CRC envelope checks or
            does not decode to an engine.
        """
        from ..persistence.snapshots import restore_engine

        return restore_engine(blob)

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Small description dictionary used in benchmark reports."""
        return {
            "engine": self.name,
            "queries": self.num_queries,
            "updates_processed": self._updates_processed,
            "satisfied": len(self._satisfied),
            "injective": self.injective,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(queries={self.num_queries})"
