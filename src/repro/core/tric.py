"""TRIC and TRIC+: trie-based clustering of continuous graph queries.

This module implements the paper's primary contribution (Section 4):

* **Indexing phase** — every registered query is decomposed into covering
  paths; each path (generalised: variables become the anonymous ``?var``) is
  inserted into the trie forest so that structurally identical prefixes of
  different queries share trie nodes *and* their materialized views.
* **Answering phase** — an incoming edge addition is matched against the
  (at most four) generalised keys it satisfies, the affected trie nodes are
  located through ``edgeInd``, incremental deltas are joined down the tries
  (pruning sub-tries whose delta dies), and finally the affected queries'
  covering-path views are joined to produce the new answers.

``TRICEngine(cache=True)`` (exposed as :class:`TRICPlusEngine`) additionally
caches hash-join build structures and per-path binding relations, which is
the paper's TRIC+ variant.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..graph.elements import Edge
from ..matching.cache import JoinCache
from ..matching.plans import QueryEvaluationPlan, bindings_to_dicts
from ..matching.relation import Relation, Row, extend_path_rows
from ..matching.views import EdgeViewRegistry
from ..query.pattern import QueryGraphPattern
from .engine import ContinuousEngine
from .trie import TrieForest, TrieNode

__all__ = ["TRICEngine", "TRICPlusEngine"]

# affected[(query id)][path index] -> set of new positional rows at the terminal node
_AffectedMap = Dict[str, Dict[int, Set[Row]]]


class TRICEngine(ContinuousEngine):
    """Trie-based clustering engine (the paper's Algorithm TRIC).

    Parameters
    ----------
    cache:
        Enable the TRIC+ caching strategy: hash-join build structures and
        per-path binding relations are retained and patched incrementally
        instead of being rebuilt on every update.
    injective:
        Require injective (isomorphism) answer semantics.
    """

    name = "TRIC"

    def __init__(self, *, cache: bool = False, injective: bool = False) -> None:
        super().__init__(injective=injective)
        self.cache_enabled = cache
        self._forest = TrieForest()
        self._views = EdgeViewRegistry()
        self._plans: Dict[str, QueryEvaluationPlan] = {}
        self._terminals: Dict[str, List[TrieNode]] = {}
        self._join_cache: JoinCache | None = JoinCache() if cache else None
        # (query id, path index) -> (terminal-view log position, removal
        # version, cached binding relation).  The cached relation is patched
        # with the bindings of freshly appended terminal rows instead of
        # being rebuilt, and its identity stays stable so the join cache can
        # keep reusing its build-side hash tables.
        self._binding_cache: Dict[Tuple[str, int], Tuple[int, int, Relation]] = {}

    # ------------------------------------------------------------------
    # Indexing phase (paper Fig. 5)
    # ------------------------------------------------------------------
    def _index_query(self, pattern: QueryGraphPattern) -> None:
        plan = QueryEvaluationPlan(pattern)
        query_id = pattern.query_id
        self._plans[query_id] = plan
        terminals: List[TrieNode] = []
        for path_index, path_plan in enumerate(plan.path_plans):
            keys = path_plan.key_sequence
            self._views.register_all(keys)
            terminal = self._forest.index_path(keys)
            terminal.query_paths.append((query_id, path_index))
            terminals.append(terminal)
            self._backfill_chain(terminal)
        self._terminals[query_id] = terminals

    def _backfill_chain(self, terminal: TrieNode) -> None:
        """Recompute the views along a freshly indexed path.

        Registering a query after updates have already been consumed must
        leave its trie nodes consistent with the base views accumulated so
        far (shared prefixes may already carry data).  Recomputing the chain
        root-to-terminal is idempotent for nodes that were already correct.
        """
        chain: List[TrieNode] = []
        node: TrieNode | None = terminal
        while node is not None:
            chain.append(node)
            node = node.parent
        chain.reverse()
        for node in chain:
            base = self._views.view(node.key)
            if node.is_root:
                rows: Iterable[Row] = set(base.rows)
            else:
                rows = self._extend_rows(node.parent.view.rows, base)
            if set(rows) != node.view.rows:
                node.view.replace_rows(rows)

    # ------------------------------------------------------------------
    # Answering phase — additions (paper Figs. 8 and 10)
    # ------------------------------------------------------------------
    def _on_addition(self, edge: Edge) -> FrozenSet[str]:
        changed = self._views.apply_addition(edge)
        new_keys = [key for key, is_new in changed if is_new]
        if not new_keys:
            return frozenset()

        affected_nodes: Dict[int, TrieNode] = {}
        for key in new_keys:
            for node in self._forest.nodes_with_key(key):
                affected_nodes[node.node_id] = node
        if not affected_nodes:
            return frozenset()

        affected: _AffectedMap = {}
        update_row = (edge.source, edge.target)
        # Shallow nodes first so a parent's view already contains the new
        # delta when a deeper node with the same key computes its own delta.
        for node in sorted(affected_nodes.values(), key=lambda n: n.depth):
            if node.is_root:
                delta = [update_row]
            else:
                delta = self._delta_against_parent(node, edge)
            added = node.view.add_all(delta)
            if not added:
                continue
            self._record_terminal(node, added, affected)
            self._propagate(node, added, affected)

        return self._evaluate_affected(affected)

    def _delta_against_parent(self, node: TrieNode, edge: Edge) -> List[Row]:
        """Delta of a non-root node hit directly by the update.

        Joins the parent's prefix view with the single update tuple: rows of
        the parent whose last vertex equals the update's source, extended
        with the update's target.  With caching enabled the parent view's
        build-side index (keyed by its last column) is cached and patched.
        """
        parent_view = node.parent.view
        last_position = parent_view.arity - 1
        if self._join_cache is not None:
            index = self._join_cache.build_index(parent_view, (last_position,))
            bucket = index.get((edge.source,), ())
            return [parent_row + (edge.target,) for parent_row in bucket]
        return [
            parent_row + (edge.target,)
            for parent_row in parent_view.rows
            if parent_row[-1] == edge.source
        ]

    def _propagate(self, node: TrieNode, delta_rows: Sequence[Row], affected: _AffectedMap) -> None:
        """Push a delta down the sub-trie, pruning branches whose delta dies."""
        for child in node.children:
            base = self._views.get(child.key)
            if base is None or not base:
                continue
            extended = self._extend_rows(delta_rows, base)
            if not extended:
                continue
            added = child.view.add_all(extended)
            if not added:
                continue
            self._record_terminal(child, added, affected)
            self._propagate(child, added, affected)

    def _extend_rows(self, rows: Iterable[Row], base: Relation) -> List[Row]:
        """Join prefix rows with a base edge view on ``last column == source``."""
        return extend_path_rows(rows, base, cache=self._join_cache, direction="forward")

    @staticmethod
    def _record_terminal(node: TrieNode, added: Sequence[Row], affected: _AffectedMap) -> None:
        if not node.query_paths:
            return
        for query_id, path_index in node.query_paths:
            affected.setdefault(query_id, {}).setdefault(path_index, set()).update(added)

    def _evaluate_affected(self, affected: _AffectedMap) -> FrozenSet[str]:
        matched: Set[str] = set()
        for query_id, deltas in affected.items():
            plan = self._plans[query_id]
            terminals = self._terminals[query_id]
            full_rows = [terminal.view.rows for terminal in terminals]
            binding_relations = (
                self._refresh_binding_relations(query_id) if self.cache_enabled else None
            )
            new_bindings = plan.evaluate_delta(
                deltas,
                full_rows,
                join_cache=self._join_cache,
                binding_relations=binding_relations,
                injective=self.injective,
            )
            if new_bindings:
                matched.add(query_id)
        return frozenset(matched)

    # ------------------------------------------------------------------
    # Answering phase — deletions (extension, paper Section 4.3)
    # ------------------------------------------------------------------
    def _on_deletion(self, edge: Edge) -> FrozenSet[str]:
        affected_keys = self._views.apply_deletion(edge)
        if not affected_keys:
            return frozenset()
        # Deletions are rare in the paper's model; correctness is achieved by
        # rebuilding the affected sub-tries from the base views and dropping
        # the caches, rather than by counting-based incremental maintenance.
        if self._join_cache is not None:
            self._join_cache.clear()
        self._binding_cache.clear()

        rebuilt: Set[int] = set()
        affected_queries: Set[str] = set()
        nodes: Dict[int, TrieNode] = {}
        for key in affected_keys:
            for node in self._forest.nodes_with_key(key):
                nodes[node.node_id] = node
        for node in sorted(nodes.values(), key=lambda n: n.depth):
            if node.node_id in rebuilt:
                continue
            self._rebuild_subtree(node, rebuilt, affected_queries)

        invalidated: Set[str] = set()
        for query_id in affected_queries:
            if query_id not in self._satisfied:
                continue
            if not self.matches_of(query_id):
                invalidated.add(query_id)
        return frozenset(invalidated)

    def _rebuild_subtree(self, node: TrieNode, rebuilt: Set[int], affected_queries: Set[str]) -> None:
        base = self._views.view(node.key)
        if node.is_root:
            rows: Iterable[Row] = set(base.rows)
        else:
            rows = self._extend_rows(node.parent.view.rows, base)
        node.view.replace_rows(rows)
        rebuilt.add(node.node_id)
        affected_queries.update(query_id for query_id, _ in node.query_paths)
        for child in node.children:
            self._rebuild_subtree(child, rebuilt, affected_queries)

    # ------------------------------------------------------------------
    # Answers
    # ------------------------------------------------------------------
    def matches_of(self, query_id: str) -> List[Dict[str, str]]:
        self._require_known(query_id)
        plan = self._plans[query_id]
        terminals = self._terminals[query_id]
        full_rows = [terminal.view.rows for terminal in terminals]
        binding_relations = (
            self._refresh_binding_relations(query_id) if self.cache_enabled else None
        )
        bindings = plan.evaluate_full(
            full_rows,
            join_cache=self._join_cache,
            binding_relations=binding_relations,
            injective=self.injective,
        )
        return bindings_to_dicts(bindings)

    # ------------------------------------------------------------------
    # TRIC+ binding-relation cache
    # ------------------------------------------------------------------
    def _refresh_binding_relations(self, query_id: str) -> List[Relation]:
        plan = self._plans[query_id]
        terminals = self._terminals[query_id]
        relations: List[Relation] = []
        for path_index, (path_plan, terminal) in enumerate(zip(plan.path_plans, terminals)):
            cache_key = (query_id, path_index)
            entry = self._binding_cache.get(cache_key)
            view = terminal.view
            if entry is not None and entry[1] == view.last_removal_version:
                log_position, _, cached = entry
                if log_position < view.log_length:
                    # Patch with the bindings of the rows appended since the
                    # cache entry was last refreshed; the relation object (and
                    # therefore its join-cache identity) stays stable.
                    fresh = path_plan.bindings_from_rows(view.appended_since(log_position))
                    cached.add_all(fresh.rows - cached.rows)
                    self._binding_cache[cache_key] = (
                        view.log_length,
                        view.last_removal_version,
                        cached,
                    )
                relations.append(cached)
                continue
            rebuilt = path_plan.bindings_from_rows(view.rows)
            self._binding_cache[cache_key] = (
                view.log_length,
                view.last_removal_version,
                rebuilt,
            )
            relations.append(rebuilt)
        return relations

    # ------------------------------------------------------------------
    # Introspection used by tests and reports
    # ------------------------------------------------------------------
    @property
    def forest(self) -> TrieForest:
        """The underlying trie forest (read-only use)."""
        return self._forest

    @property
    def views(self) -> EdgeViewRegistry:
        """The base materialized views (read-only use)."""
        return self._views

    def statistics(self) -> Dict[str, int]:
        """Structural statistics used by reports and clustering tests."""
        total_path_edges = sum(
            path_plan.path.length
            for plan in self._plans.values()
            for path_plan in plan.path_plans
        )
        return {
            "tries": self._forest.num_tries(),
            "trie_nodes": self._forest.num_nodes(),
            "indexed_path_edges": total_path_edges,
            "base_views": len(self._views),
            "base_view_rows": self._views.total_rows(),
        }

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(self.statistics())
        description["cache"] = self.cache_enabled
        return description


class TRICPlusEngine(TRICEngine):
    """TRIC+ — TRIC with cached join structures (paper Section 4.2, Caching)."""

    name = "TRIC+"

    def __init__(self, *, injective: bool = False) -> None:
        super().__init__(cache=True, injective=injective)
