"""TRIC and TRIC+: trie-based clustering of continuous graph queries.

This module implements the paper's primary contribution (Section 4):

* **Indexing phase** — every registered query is decomposed into covering
  paths; each path (generalised: variables become the anonymous ``?var``) is
  inserted into the trie forest so that structurally identical prefixes of
  different queries share trie nodes *and* their materialized views.
* **Answering phase** — stream updates are processed through a *unified
  delta pipeline*: a micro-batch of edge additions (a single update is just
  a batch of one) is matched against the (at most four) generalised keys
  each edge satisfies, the affected trie nodes are located through
  ``edgeInd``, one positive delta per affected node per batch is joined down
  the tries (pruning sub-tries whose delta dies), and finally the affected
  queries' covering-path views are joined to produce the new answers.
  Deletions flow through the same pipeline with the sign flipped: the
  retracted base tuples become *negative* deltas that propagate down the
  tries row by row, so a deletion costs one pruned traversal instead of a
  sub-trie rebuild (paper Section 4.3 treats deletions as first-class
  stream updates).  A deletion-time re-check of a still-satisfied query is
  an existence probe — ``evaluate_full(limit=1)`` stops at the first
  surviving witness — never a full answer materialisation.

``TRICEngine(materialize_answers=True)`` (exposed as
:class:`TRICPlusEngine`) is the repository's re-differentiated TRIC+: the
same delta pipeline plus a *maintained answer relation* per polled query
(:class:`~repro.matching.answers.MaterializedAnswers`).  Once a query has
been polled through ``matches_of``, its answers are kept patched in place
by the binding deltas the pipeline produces anyway, so subsequent polls are
an O(answer-set) decode (no cross-path join) and deletion invalidation of
that query is an O(1) emptiness check.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..graph.elements import Edge
from ..graph.interning import VertexInterner
from ..matching.answers import BindingDelta, MaterializedAnswers
from ..matching.plans import QueryEvaluationPlan, bindings_to_dicts
from ..matching.relation import CountedRelation, Relation, Row, extend_path_rows
from ..matching.views import EdgeViewRegistry
from ..query.pattern import QueryGraphPattern
from .engine import BatchReport, ContinuousEngine, MaintainedAnswerSource
from .trie import TrieForest, TrieNode

__all__ = ["TRICEngine", "TRICPlusEngine"]

# affected[(query id)][path index] -> set of new positional rows at the terminal node
_AffectedMap = Dict[str, Dict[int, Set[Row]]]


class TRICEngine(ContinuousEngine):
    """Trie-based clustering engine (the paper's Algorithm TRIC).

    Parameters
    ----------
    materialize_answers:
        The re-differentiated ``+`` flag.  When ``True`` the engine keeps a
        maintained, counted answer relation for every query that has been
        polled through :meth:`matches_of`
        (:class:`~repro.matching.answers.MaterializedAnswers`): the answer
        set is patched in place by the binding deltas the pipeline already
        produces, later polls are an O(answer-set) decode with no
        cross-path join, and deletion invalidation of a polled query is an
        O(1) emptiness check.  Queries that are never polled pay nothing —
        their deletion re-checks use the same ``evaluate_full(limit=1)``
        witness probe as the base engine.
    answer_row_cap:
        Budget for a query's *first-poll* materialisation.  The first
        ``matches_of`` of a query enumerates every derivation to build its
        maintained relation; with a cap, a query whose answer set exceeds
        ``answer_row_cap`` distinct rows aborts the rebuild (bounding the
        first-poll latency to O(cap)) and spills to the on-demand paths —
        ``evaluate_full`` for answers, the ``limit=1`` witness probe for
        deletion invalidation — until a wholesale change retries it.
        ``None`` (the default) materialises unconditionally.
    injective:
        Require injective (isomorphism) answer semantics.
    interner:
        Vertex encoding used by the base views (dictionary-encoded dense
        ints by default; benchmarks inject a
        :class:`~repro.graph.interning.NullInterner` to replay the string
        pipeline, and callers may share one interner across engines).
    """

    name = "TRIC"

    def __init__(
        self,
        *,
        materialize_answers: bool = False,
        answer_row_cap: int | None = None,
        injective: bool = False,
        interner: VertexInterner | None = None,
    ) -> None:
        super().__init__(injective=injective)
        if answer_row_cap is not None and answer_row_cap < 1:
            raise ValueError("answer_row_cap must be at least 1 (or None)")
        self.materializes_answers = materialize_answers
        self.answer_row_cap = answer_row_cap
        self._forest = TrieForest()
        self._views = EdgeViewRegistry(interner=interner)
        self._plans: Dict[str, QueryEvaluationPlan] = {}
        self._terminals: Dict[str, List[TrieNode]] = {}
        # query id -> (terminal views, counted binding relations, log
        # positions, epochs) as parallel per-covering-path lists.  Each
        # relation is patched by replaying its terminal view's signed delta
        # log — support counts absorb both appended and removed positional
        # rows — and its identity stays stable so its maintained indexes
        # keep being reused by the delta joins.
        self._binding_cache: Dict[
            str, Tuple[List[Relation], List[CountedRelation], List[int], List[int]]
        ] = {}
        # query id -> maintained answer relation, created lazily on the
        # first poll of that query (``None`` when materialisation is off).
        self._answers: Optional[Dict[str, MaterializedAnswers]] = (
            {} if materialize_answers else None
        )

    # ------------------------------------------------------------------
    # Indexing phase (paper Fig. 5)
    # ------------------------------------------------------------------
    def _index_query(self, pattern: QueryGraphPattern) -> None:
        plan = QueryEvaluationPlan(pattern, interner=self._views.interner)
        query_id = pattern.query_id
        self._plans[query_id] = plan
        terminals: List[TrieNode] = []
        for path_index, path_plan in enumerate(plan.path_plans):
            keys = path_plan.key_sequence
            self._views.register_all(keys)
            terminal = self._forest.index_path(keys)
            terminal.query_paths.append((query_id, path_index))
            terminals.append(terminal)
            self._backfill_chain(terminal)
        self._terminals[query_id] = terminals

    def _backfill_chain(self, terminal: TrieNode) -> None:
        """Recompute the views along a freshly indexed path.

        Registering a query after updates have already been consumed must
        leave its trie nodes consistent with the base views accumulated so
        far (shared prefixes may already carry data).  Recomputing the chain
        root-to-terminal is idempotent for nodes that were already correct.
        """
        chain: List[TrieNode] = []
        node: TrieNode | None = terminal
        while node is not None:
            chain.append(node)
            node = node.parent
        chain.reverse()
        for node in chain:
            base = self._views.view(node.key)
            if node.is_root:
                rows: Set[Row] = set(base.rows)
            else:
                rows = set(self._extend_rows(node.parent.view.rows, base))
            if rows != node.view.rows:
                node.view.replace_rows(rows)

    # ------------------------------------------------------------------
    # Answering phase — additions (paper Figs. 8 and 10)
    # ------------------------------------------------------------------
    def _on_addition(self, edge: Edge) -> FrozenSet[str]:
        return self._on_addition_batch([edge])

    def _on_addition_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        """Native micro-batch addition processing.

        All base views absorb the batch first; then every affected trie node
        computes *one* positive delta for the whole batch (amortizing the
        parent-view probe structures over the batch) and propagates it down
        its sub-trie.  The affected queries are evaluated once per batch.

        Returns a :class:`~repro.core.engine.BatchReport` whose ``affected``
        set is exactly the queries whose terminal views gained rows — a
        query's answers are a join of projections of its terminal views, so
        any query outside the set provably kept its answer set.
        """
        new_by_key = self._views.apply_additions(edges)
        if not new_by_key:
            return BatchReport(affected=())

        affected_nodes: Dict[int, TrieNode] = {}
        for key in new_by_key:
            for node in self._forest.nodes_with_key(key):
                affected_nodes[node.node_id] = node
        if not affected_nodes:
            return BatchReport(affected=())

        affected: _AffectedMap = {}
        # Shallow nodes first so a parent's view already contains the new
        # delta when a deeper node with the same key computes its own delta.
        for node in sorted(affected_nodes.values(), key=lambda n: n.depth):
            new_rows = new_by_key[node.key]
            if node.is_root:
                delta = list(new_rows)
            else:
                delta = self._delta_against_parent(node, new_rows)
            added = node.view.add_all(delta)
            if not added:
                continue
            self._record_terminal(node, added, affected)
            self._propagate(node, added, affected)

        return BatchReport(self._evaluate_affected(affected), affected=affected)

    def _delta_against_parent(self, node: TrieNode, new_rows: Sequence[Row]) -> List[Row]:
        """Delta of a non-root node hit directly by a batch of new tuples.

        Joins the parent's prefix view with the new base tuples of the
        node's key: rows of the parent whose last vertex equals a new
        tuple's source, extended with that tuple's target.  The probe goes
        through the parent view's maintained last-column index — created on
        first use, patched by the view's own mutations from then on — so the
        cost is O(|delta| x bucket), never O(|parent view|).
        """
        parent_view = node.parent.view
        lookup = parent_view.index_map((parent_view.arity - 1,)).get
        delta: List[Row] = []
        for source, target in new_rows:
            bucket = lookup((source,))
            if bucket:
                delta.extend(parent_row + (target,) for parent_row in bucket)
        return delta

    def _propagate(self, node: TrieNode, delta_rows: Sequence[Row], affected: _AffectedMap) -> None:
        """Push a delta down the sub-trie, pruning branches whose delta dies."""
        for child in node.children:
            base = self._views.get(child.key)
            if base is None or not base:
                continue
            extended = self._extend_rows(delta_rows, base)
            if not extended:
                continue
            added = child.view.add_all(extended)
            if not added:
                continue
            self._record_terminal(child, added, affected)
            self._propagate(child, added, affected)

    def _extend_rows(self, rows: Iterable[Row], base: Relation) -> List[Row]:
        """Join prefix rows with a base edge view on ``last column == source``."""
        return extend_path_rows(rows, base, direction="forward")

    @staticmethod
    def _record_terminal(node: TrieNode, added: Sequence[Row], affected: _AffectedMap) -> None:
        if not node.query_paths:
            return
        for query_id, path_index in node.query_paths:
            affected.setdefault(query_id, {}).setdefault(path_index, set()).update(added)

    def _evaluate_affected(self, affected: _AffectedMap) -> FrozenSet[str]:
        matched: Set[str] = set()
        for query_id, deltas in affected.items():
            plan = self._plans[query_id]
            # Notifications only need existence: extend each delta binding
            # across the other paths' maintained binding relations and stop
            # at the first complete answer (O(delta) probes, no relation
            # materialisation).
            if plan.has_new_binding(
                deltas,
                self._refresh_binding_relations(query_id),
                injective=self.injective,
            ):
                matched.add(query_id)
        return frozenset(matched)

    # ------------------------------------------------------------------
    # Answering phase — deletions (extension, paper Section 4.3)
    # ------------------------------------------------------------------
    def _on_deletion(self, edge: Edge) -> FrozenSet[str]:
        return self._on_deletion_batch([edge])

    def _on_deletion_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        """Native micro-batch deletion processing.

        Deletions flow through the same delta pipeline as additions, with
        the sign flipped: the base tuples retracted from the views become
        negative deltas at the directly affected trie nodes, and prefix rows
        that die propagate their deaths down the sub-tries (pruning branches
        whose negative delta dies).  Caches are patched through the views'
        delta logs, never cleared, and the per-query invalidation re-check
        is an existence probe (:meth:`has_matches`), never a full answer
        materialisation.

        Returns a :class:`~repro.core.engine.BatchReport` whose ``affected``
        set is the queries whose terminal views lost rows (the same
        projection argument as on the addition side).
        """
        removed_by_key = self._views.apply_deletions(edges)
        if not removed_by_key:
            return BatchReport(affected=())

        affected_nodes: Dict[int, TrieNode] = {}
        for key in removed_by_key:
            for node in self._forest.nodes_with_key(key):
                affected_nodes[node.node_id] = node

        affected_queries: Set[str] = set()
        # Shallow nodes first, mirroring additions: a deeper node hit both
        # directly and through its ancestor sees its view already pruned.
        for node in sorted(affected_nodes.values(), key=lambda n: n.depth):
            dead = self._direct_dead_rows(node, removed_by_key[node.key])
            removed = node.view.remove_all(dead)
            if not removed:
                continue
            affected_queries.update(query_id for query_id, _ in node.query_paths)
            self._propagate_removals(node, removed, affected_queries)

        invalidated: Set[str] = set()
        for query_id in affected_queries:
            if query_id in self._satisfied and not self.has_matches(query_id):
                invalidated.add(query_id)
        return BatchReport(invalidated, affected=affected_queries)

    def _direct_dead_rows(self, node: TrieNode, removed_rows: Set[Row]) -> List[Row]:
        """Rows of ``node``'s view that use a retracted base tuple at the
        node's own edge position.

        Probes the view's maintained ``(source, target)``-pair index, so the
        cost is proportional to the retracted tuples' buckets, not the view.
        """
        position = node.depth - 1
        view = node.view
        positions = (position, position + 1)
        dead: List[Row] = []
        for pair in removed_rows:
            dead.extend(view.probe(positions, pair))
        return dead

    def _propagate_removals(
        self, node: TrieNode, removed: Sequence[Row], affected_queries: Set[str]
    ) -> None:
        """Push a negative delta down the sub-trie, pruning branches where it dies.

        A child row dies exactly when its parent prefix died; the dead rows
        are found through the child view's maintained prefix index, one
        bucket per removed prefix.
        """
        removed_prefixes = set(removed)
        for child in node.children:
            child_view = child.view
            if not child_view:
                continue
            prefix_positions = tuple(range(child_view.arity - 1))
            dead: List[Row] = []
            for prefix in removed_prefixes:
                dead.extend(child_view.probe(prefix_positions, prefix))
            child_removed = child_view.remove_all(dead)
            if not child_removed:
                continue
            affected_queries.update(query_id for query_id, _ in child.query_paths)
            self._propagate_removals(child, child_removed, affected_queries)

    # ------------------------------------------------------------------
    # Answers
    # ------------------------------------------------------------------
    def matches_of(self, query_id: str) -> List[Dict[str, str]]:
        """Current answers of ``query_id``.

        With answer materialisation on, the result is decoded straight from
        the query's maintained answer relation (created on the first poll,
        patched by the delta pipeline from then on) — no cross-path join
        runs on this call path.  The base engine joins the maintained
        per-path binding relations on demand instead; so does a
        materialising engine for a query whose budgeted rebuild went over
        its ``answer_row_cap``.
        """
        self._require_known(query_id)
        if self._answers is not None:
            relation = self._materialized_answers(query_id)
            if relation is not None:
                return bindings_to_dicts(relation, self._views.interner)
        plan = self._plans[query_id]
        bindings = plan.evaluate_full(
            binding_relations=self._refresh_binding_relations(query_id),
            injective=self.injective,
        )
        return bindings_to_dicts(bindings, self._views.interner)

    def has_matches(self, query_id: str) -> bool:
        """Existence probe: O(1) on a materialised query, O(witness) otherwise.

        A query with a live (non-stale) maintained answer relation answers
        from its patched emptiness; every other query — including one
        whose maintainer went stale through a wholesale view change, whose
        rebuild stays deferred to the next poll — runs the existence-mode
        ``evaluate_full(limit=1)`` backtracking search over its maintained
        binding relations, which stops at the first surviving witness.
        This is what deletion-time invalidation re-checks call, so neither
        path ever materialises a full answer set.
        """
        self._require_known(query_id)
        relations = self._refresh_binding_relations(query_id)
        if self._answers is not None:
            maintainer = self._answers.get(query_id)
            if maintainer is not None and not maintainer.stale:
                return bool(maintainer)
        plan = self._plans[query_id]
        witness = plan.evaluate_full(
            binding_relations=relations,
            injective=self.injective,
            limit=1,
        )
        return bool(witness)

    def _materialized_answers(self, query_id: str) -> Optional[CountedRelation]:
        """The query's maintained answer relation, created/refreshed lazily.

        Returns ``None`` when the query's budgeted rebuild exceeded
        ``answer_row_cap`` — the caller then spills to the on-demand
        evaluation paths.  An over-budget maintainer is not retried until
        a wholesale binding-relation change marks it stale again.
        """
        assert self._answers is not None
        maintainer = self._answers.get(query_id)
        if maintainer is None:
            maintainer = MaterializedAnswers(
                self._plans[query_id], injective=self.injective
            )
            self._answers[query_id] = maintainer
        # Refreshing the binding relations feeds any pending binding deltas
        # to a live maintainer (see _refresh_binding_relations); a stale or
        # freshly created maintainer rebuilds from the refreshed relations.
        relations = self._refresh_binding_relations(query_id)
        if maintainer.stale:
            if maintainer.over_budget:
                return None
            if not maintainer.rebuild(relations, row_cap=self.answer_row_cap):
                return None
        return maintainer.relation

    def answer_delta_source(self, query_id: str) -> Optional[MaintainedAnswerSource]:
        """Expose the maintained answer relation for exact delta reads.

        Available exactly when the engine materialises answers and the
        query's (lazily created) maintained relation is live — the pub/sub
        delta tracker then consumes answer visibility changes off the
        relation's signed delta log instead of re-polling ``matches_of``.
        Over-budget queries (see ``answer_row_cap``) return ``None``.
        """
        self._require_known(query_id)
        if self._answers is None:
            return None
        relation = self._materialized_answers(query_id)
        if relation is None:
            return None
        return MaintainedAnswerSource(relation, self._views.interner)

    # ------------------------------------------------------------------
    # Maintained per-path binding relations (counting-based projection)
    # ------------------------------------------------------------------
    def _refresh_binding_relations(self, query_id: str) -> List[CountedRelation]:
        state = self._binding_cache.get(query_id)
        plan = self._plans[query_id]
        if state is None:
            views = [terminal.view for terminal in self._terminals[query_id]]
            relations = [
                path_plan.counted_bindings_from_rows(view.rows)
                for path_plan, view in zip(plan.path_plans, views)
            ]
            positions = [view.log_length for view in views]
            epochs = [view.epoch for view in views]
            self._binding_cache[query_id] = (views, relations, positions, epochs)
            return relations
        views, relations, positions, epochs = state
        # A live maintained answer relation is kept in lockstep: path i's
        # binding-visibility deltas are joined against the other paths'
        # relations *between* patching path i and patching path i+1, so
        # paths < i are seen at their new state and paths > i at their old
        # state — the sequential inclusion-exclusion order under which
        # counted multi-way join maintenance is exact.
        maintainer = self._answers.get(query_id) if self._answers is not None else None
        for index, view in enumerate(views):
            log_length = view.log_length
            if epochs[index] != view.epoch:
                # Wholesale view replacement (backfill of a newly indexed
                # query sharing this terminal, or delta-log compaction):
                # recompute this path's binding relation.
                path_plan = plan.path_plans[index]
                relations[index] = path_plan.counted_bindings_from_rows(view.rows)
                positions[index] = log_length
                epochs[index] = view.epoch
                if maintainer is not None:
                    maintainer.mark_stale()
            elif positions[index] != log_length:
                # Replay the terminal view's signed delta log: appended
                # positional rows add support to their binding, removed rows
                # retract it, and the binding disappears only when its last
                # supporting row dies (counting maintenance).  The relation
                # object stays stable across both signs, so its maintained
                # indexes are patched, never rebuilt.
                path_plan = plan.path_plans[index]
                cached = relations[index]
                feed = maintainer is not None and not maintainer.stale
                changes: List[BindingDelta] = []
                for row, sign in view.deltas_since(positions[index]):
                    binding = path_plan.binding_of_row(row)
                    if binding is None:
                        continue
                    if sign > 0:
                        if cached.add(binding) and feed:
                            changes.append((binding, 1))
                    else:
                        if cached.remove(binding) and feed:
                            changes.append((binding, -1))
                positions[index] = log_length
                if changes:
                    maintainer.apply_binding_deltas(index, changes, relations)
        return relations

    # ------------------------------------------------------------------
    # Introspection used by tests and reports
    # ------------------------------------------------------------------
    @property
    def forest(self) -> TrieForest:
        """The underlying trie forest (read-only use)."""
        return self._forest

    @property
    def views(self) -> EdgeViewRegistry:
        """The base materialized views (read-only use)."""
        return self._views

    def statistics(self) -> Dict[str, int]:
        """Structural statistics used by reports and clustering tests."""
        total_path_edges = sum(
            path_plan.path.length
            for plan in self._plans.values()
            for path_plan in plan.path_plans
        )
        statistics = {
            "tries": self._forest.num_tries(),
            "trie_nodes": self._forest.num_nodes(),
            "indexed_path_edges": total_path_edges,
            "base_views": len(self._views),
            "base_view_rows": self._views.total_rows(),
        }
        if self._answers is not None:
            statistics["materialized_queries"] = len(self._answers)
            statistics["materialized_answer_rows"] = sum(
                len(maintainer.relation) for maintainer in self._answers.values()
            )
        return statistics

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(self.statistics())
        description["materialize_answers"] = self.materializes_answers
        description["interner"] = self._views.interner.stats()
        return description


class TRICPlusEngine(TRICEngine):
    """TRIC+ — TRIC with maintained answer materialisation.

    The paper's TRIC+ cached hash-join build structures (Section 4.2,
    "Caching"); those structures are maintained for every variant in this
    codebase, so the repository re-differentiates the ``+`` tier as the
    *answer-materialising* variant: ``matches_of`` of a polled query is
    served from a maintained counted answer relation instead of a
    cross-path join, and deletion invalidation of a polled query is an
    O(1) emptiness check.
    """

    name = "TRIC+"

    def __init__(
        self,
        *,
        answer_row_cap: int | None = None,
        injective: bool = False,
        interner: VertexInterner | None = None,
    ) -> None:
        super().__init__(
            materialize_answers=True,
            answer_row_cap=answer_row_cap,
            injective=injective,
            interner=interner,
        )
