"""Trie forest clustering the covering paths of the query database.

This is the central data structure of TRIC (paper Section 4.1, Step 2).  Each
trie indexes covering paths that start with the same generalised edge key;
paths sharing a prefix share the corresponding chain of trie nodes, and every
node owns the materialized view of its prefix — one relation with a column
per path position.  Sharing the node therefore shares both the *structure*
and the *materialization* between queries.

The forest also maintains the paper's auxiliary indexes:

* ``rootInd``  — first edge key -> trie root (:attr:`TrieForest.roots`),
* ``edgeInd``  — edge key -> tries containing it (:attr:`TrieForest.edge_index`),
* ``queryInd`` — kept by the engine: query id -> terminal node per path.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from ..matching.relation import Relation
from ..query.terms import EdgeKey

__all__ = ["TrieNode", "Trie", "TrieForest"]

_node_ids = itertools.count()


def _prefix_schema(depth: int) -> Tuple[str, ...]:
    """Schema of a node at ``depth`` edges from the root: positions ``p0..pdepth``."""
    return tuple(f"p{i}" for i in range(depth + 1))


class TrieNode:
    """One trie node: a generalised edge key plus the view of its prefix path."""

    __slots__ = ("node_id", "key", "parent", "children", "depth", "view", "query_paths")

    def __init__(self, key: EdgeKey, parent: "TrieNode | None") -> None:
        self.node_id = next(_node_ids)
        self.key = key
        self.parent = parent
        self.children: List[TrieNode] = []
        self.depth = 1 if parent is None else parent.depth + 1
        self.view = Relation(_prefix_schema(self.depth))
        #: (query id, path index) pairs whose covering path terminates here.
        self.query_paths: List[Tuple[str, int]] = []

    @property
    def is_root(self) -> bool:
        """``True`` for the first node of a trie (depth 1)."""
        return self.parent is None

    def child_with_key(self, key: EdgeKey) -> "TrieNode | None":
        """Return the child indexing ``key`` or ``None``."""
        for child in self.children:
            if child.key == key:
                return child
        return None

    def add_child(self, key: EdgeKey) -> "TrieNode":
        """Create (or reuse) the child indexing ``key``."""
        existing = self.child_with_key(key)
        if existing is not None:
            return existing
        child = TrieNode(key, self)
        self.children.append(child)
        return child

    def descendants(self) -> Iterator["TrieNode"]:
        """Iterate over this node and every node below it (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrieNode(id={self.node_id}, depth={self.depth}, key={self.key}, "
            f"children={len(self.children)}, rows={len(self.view)})"
        )


class Trie:
    """A single trie rooted at one generalised edge key."""

    def __init__(self, root_key: EdgeKey) -> None:
        self.root = TrieNode(root_key, None)
        self._nodes_by_key: Dict[EdgeKey, List[TrieNode]] = {root_key: [self.root]}

    @property
    def root_key(self) -> EdgeKey:
        """The edge key indexed by the trie root."""
        return self.root.key

    def insert_path(self, keys: Sequence[EdgeKey]) -> TrieNode:
        """Index the key sequence ``keys`` and return its terminal node.

        ``keys[0]`` must equal the root key.  Shared prefixes reuse existing
        nodes; only the unshared suffix creates new nodes.
        """
        if not keys or keys[0] != self.root.key:
            raise ValueError("path does not start with this trie's root key")
        node = self.root
        for key in keys[1:]:
            child = node.child_with_key(key)
            if child is None:
                child = node.add_child(key)
                self._nodes_by_key.setdefault(key, []).append(child)
            node = child
        return node

    def nodes_with_key(self, key: EdgeKey) -> List[TrieNode]:
        """All nodes of the trie indexing ``key`` (any depth, any branch)."""
        return list(self._nodes_by_key.get(key, ()))

    def contains_key(self, key: EdgeKey) -> bool:
        """``True`` when some node of the trie indexes ``key``."""
        return key in self._nodes_by_key

    def nodes(self) -> Iterator[TrieNode]:
        """Iterate over every node of the trie."""
        return self.root.descendants()

    def num_nodes(self) -> int:
        """Total number of nodes in the trie."""
        return sum(1 for _ in self.nodes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trie(root={self.root.key}, nodes={self.num_nodes()})"


class TrieForest:
    """The forest of tries plus the root/edge inverted indexes."""

    def __init__(self) -> None:
        #: rootInd: first edge key of a path -> its trie.
        self.roots: Dict[EdgeKey, Trie] = {}
        #: edgeInd: edge key -> tries containing the key anywhere.
        self.edge_index: Dict[EdgeKey, Set[EdgeKey]] = {}

    def index_path(self, keys: Sequence[EdgeKey]) -> TrieNode:
        """Index one covering path (as generalised keys); return terminal node."""
        if not keys:
            raise ValueError("cannot index an empty key sequence")
        root_key = keys[0]
        trie = self.roots.get(root_key)
        if trie is None:
            trie = Trie(root_key)
            self.roots[root_key] = trie
        terminal = trie.insert_path(keys)
        for key in keys:
            self.edge_index.setdefault(key, set()).add(root_key)
        return terminal

    def tries_containing(self, key: EdgeKey) -> List[Trie]:
        """Tries whose node set contains ``key`` (the paper's ``edgeInd`` probe)."""
        root_keys = self.edge_index.get(key, ())
        return [self.roots[root_key] for root_key in root_keys]

    def nodes_with_key(self, key: EdgeKey) -> List[TrieNode]:
        """Every trie node in the forest indexing ``key``."""
        nodes: List[TrieNode] = []
        for trie in self.tries_containing(key):
            nodes.extend(trie.nodes_with_key(key))
        return nodes

    def contains_key(self, key: EdgeKey) -> bool:
        """``True`` when any trie indexes ``key``."""
        return key in self.edge_index

    def all_keys(self) -> Set[EdgeKey]:
        """Every distinct edge key indexed anywhere in the forest."""
        return set(self.edge_index)

    def num_tries(self) -> int:
        """Number of tries in the forest."""
        return len(self.roots)

    def num_nodes(self) -> int:
        """Total number of trie nodes across the forest."""
        return sum(trie.num_nodes() for trie in self.roots.values())

    def nodes(self) -> Iterator[TrieNode]:
        """Iterate over every node of every trie."""
        for trie in self.roots.values():
            yield from trie.nodes()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrieForest(tries={self.num_tries()}, nodes={self.num_nodes()})"
