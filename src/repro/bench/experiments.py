"""Experiment harness regenerating every figure of the paper's evaluation.

Each ``experiment_fig*`` function reproduces one figure/table of Section 6:
it builds the dataset stream and query workload for that experiment, replays
the stream through the engines under evaluation, and returns an
:class:`ExperimentResult` whose series correspond to the lines of the figure
(answering time per update, indexing time per query, or memory footprint,
as a function of the figure's x axis).

Graph-size sweeps (Figs. 12a, 12f, 13a, 14a–c) are produced from a *single*
replay per engine: the per-update latency samples are checkpointed at the
x-axis positions, which is equivalent to the paper's measurement (average
answering time while the graph grows) without re-running the stream once per
point.  Parameter sweeps (Figs. 12b–e, 13b) run one replay per parameter
value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..datasets import BioGridConfig, BioGridGenerator, SNBConfig, SNBGenerator, TaxiConfig, TaxiGenerator
from ..engines import create_engine, create_sharded_engine
from ..graph.errors import BenchmarkError
from ..graph.stream import GraphStream
from ..query.generator import QueryWorkload, QueryWorkloadConfig, QueryWorkloadGenerator
from ..streams.metrics import deep_sizeof
from ..streams.report import format_table
from ..streams.runner import ReplayResult, StreamRunner
from .configs import ExperimentConfig

__all__ = [
    "SeriesPoint",
    "ExperimentResult",
    "EXPERIMENTS",
    "experiment_ids",
    "run_experiment",
    "build_stream",
    "build_workload",
    "pick_subscribed_queries",
]


# ----------------------------------------------------------------------
# Result containers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SeriesPoint:
    """One measurement: an engine at one x-axis position of a figure."""

    x: object
    engine: str
    answering_ms: float
    indexing_ms_per_query: float = 0.0
    memory_mb: Optional[float] = None
    timed_out: bool = False
    updates_processed: int = 0
    matched_updates: int = 0


@dataclass
class ExperimentResult:
    """All series of one regenerated figure."""

    experiment_id: str
    title: str
    x_label: str
    config: ExperimentConfig
    points: List[SeriesPoint] = field(default_factory=list)
    metric: str = "answering_ms"

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def engines(self) -> List[str]:
        """Engines appearing in the result, in first-seen order."""
        seen: List[str] = []
        for point in self.points:
            if point.engine not in seen:
                seen.append(point.engine)
        return seen

    def x_values(self) -> List[object]:
        """X-axis values in first-seen order."""
        seen: List[object] = []
        for point in self.points:
            if point.x not in seen:
                seen.append(point.x)
        return seen

    def value_of(self, point: SeriesPoint) -> Optional[float]:
        """The metric value of ``point`` for this experiment's metric."""
        if self.metric == "answering_ms":
            return point.answering_ms
        if self.metric == "indexing_ms_per_query":
            return point.indexing_ms_per_query
        if self.metric == "memory_mb":
            return point.memory_mb
        raise BenchmarkError(f"unknown metric: {self.metric}")

    def series(self) -> Dict[str, List[Tuple[object, Optional[float], bool]]]:
        """Per-engine series: list of ``(x, value, timed_out)`` tuples."""
        result: Dict[str, List[Tuple[object, Optional[float], bool]]] = {}
        for point in self.points:
            result.setdefault(point.engine, []).append(
                (point.x, self.value_of(point), point.timed_out)
            )
        return result

    def fastest_engine_at(self, x: object) -> Optional[str]:
        """Engine with the best (lowest) metric value at ``x``."""
        candidates = [
            (self.value_of(p), p.engine)
            for p in self.points
            if p.x == x and not p.timed_out and self.value_of(p) is not None
        ]
        if not candidates:
            return None
        return min(candidates)[1]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_table(self) -> str:
        """Text table with one row per x value and one column per engine."""
        engines = self.engines()
        headers = [self.x_label] + engines
        rows = []
        by_key = {(p.x, p.engine): p for p in self.points}
        for x in self.x_values():
            row: List[object] = [x]
            for engine in engines:
                point = by_key.get((x, engine))
                if point is None:
                    row.append("-")
                    continue
                value = self.value_of(point)
                cell = "-" if value is None else f"{value:.3f}"
                if point.timed_out:
                    cell += "*"
                row.append(cell)
            rows.append(row)
        legend = {
            "answering_ms": "answering time (ms/update)",
            "indexing_ms_per_query": "indexing time (ms/query)",
            "memory_mb": "memory (MB)",
        }[self.metric]
        header = f"{self.experiment_id}: {self.title}\nmetric: {legend}  (* = time budget exceeded)"
        return header + "\n" + format_table(headers, rows)

    def to_markdown(self) -> str:
        """Markdown table used when updating EXPERIMENTS.md."""
        engines = self.engines()
        by_key = {(p.x, p.engine): p for p in self.points}
        lines = [
            f"| {self.x_label} | " + " | ".join(engines) + " |",
            "|" + "---|" * (len(engines) + 1),
        ]
        for x in self.x_values():
            cells = []
            for engine in engines:
                point = by_key.get((x, engine))
                if point is None:
                    cells.append("-")
                    continue
                value = self.value_of(point)
                cell = "-" if value is None else f"{value:.3f}"
                if point.timed_out:
                    cell += "\\*"
                cells.append(cell)
            lines.append(f"| {x} | " + " | ".join(cells) + " |")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Workload construction helpers
# ----------------------------------------------------------------------
def build_stream(dataset: str, num_updates: int, seed: int) -> GraphStream:
    """Build the update stream of ``dataset`` with entity pools sized to fit."""
    if dataset == "snb":
        config = SNBConfig(
            num_updates=num_updates,
            seed=seed,
            num_persons=max(50, num_updates // 20),
            num_forums=max(10, num_updates // 100),
            num_places=max(10, num_updates // 150),
            num_tags=max(10, num_updates // 150),
        )
        return SNBGenerator(config).stream()
    if dataset == "taxi":
        config = TaxiConfig(
            num_updates=num_updates,
            seed=seed,
            num_taxis=max(30, num_updates // 40),
            num_drivers=max(40, num_updates // 30),
            grid_size=max(6, int(num_updates ** 0.5) // 8),
        )
        return TaxiGenerator(config).stream()
    if dataset == "biogrid":
        # Keep the per-protein interaction density close to the real dump
        # (~16 interactions per protein at 1M edges / 63K proteins would blow
        # up all-variable path views at toy scale, so the scaled stream keeps
        # a few interactions per protein instead).
        config = BioGridConfig(
            num_updates=num_updates,
            seed=seed,
            num_proteins=max(80, num_updates // 6),
        )
        return BioGridGenerator(config).stream()
    raise BenchmarkError(f"unknown dataset: {dataset!r}")


def build_workload(
    stream: GraphStream,
    *,
    num_queries: int,
    avg_edges: int,
    selectivity: float,
    overlap: float,
    seed: int,
) -> QueryWorkload:
    """Sample the query database for an experiment from ``stream``."""
    graph = stream.to_graph()
    config = QueryWorkloadConfig(
        num_queries=num_queries,
        avg_edges=avg_edges,
        selectivity=selectivity,
        overlap=overlap,
        seed=seed,
    )
    return QueryWorkloadGenerator(graph, config).generate()


def pick_subscribed_queries(query_ids: Sequence[str], k: int) -> List[str]:
    """``k`` query ids spread evenly across the sorted query database.

    The deterministic k-of-n selection used by subscription-mode replays
    (``ExperimentConfig.subscribe``) and ``repro-serve``.
    """
    ordered = sorted(query_ids)
    k = max(1, min(k, len(ordered)))
    stride = len(ordered) / k
    return [ordered[int(index * stride)] for index in range(k)]


def _replay_engine(
    engine_name: str,
    workload: QueryWorkload,
    stream: GraphStream,
    *,
    time_budget_s: float,
    measure_memory: bool,
    batch_size: int = 1,
    poll_every: int = 0,
    subscribe: int = 0,
    shards: int = 1,
    executor: str = "serial",
) -> Tuple[ReplayResult, float]:
    """Index the workload, replay the stream; returns (result, indexing seconds).

    With ``shards > 1`` the query database is partitioned across a
    :class:`~repro.pubsub.sharding.ShardedEngineGroup` (fanning batches out
    under ``executor``); with ``subscribe > 0`` the replay runs in
    subscription mode (a broker delivering match deltas for ``subscribe``
    evenly picked queries).
    """
    engine = create_sharded_engine(engine_name, shards, executor=executor)
    try:
        runner = StreamRunner(
            engine,
            time_budget_s=time_budget_s,
            batch_size=batch_size,
            poll_every=poll_every,
        )
        indexing_s = runner.index_queries(workload.queries)
        if subscribe > 0:
            runner.subscribe(pick_subscribed_queries(list(engine.queries), subscribe))
        result = runner.replay(stream, measure_memory=measure_memory)
    finally:
        if hasattr(engine, "close"):
            engine.close()
    return result, indexing_s


def _checkpoint_positions(total: int, num_points: int) -> List[int]:
    """Evenly spaced checkpoint positions (update counts) along a stream."""
    num_points = max(1, min(num_points, total))
    return [max(1, round(total * (i + 1) / num_points)) for i in range(num_points)]


def _running_mean_ms(
    samples: Sequence[float],
    upto_updates: int,
    batch_size: int = 1,
    total_updates: int | None = None,
) -> float:
    """Mean per-update latency over the first ``upto_updates`` updates, in ms.

    With ``batch_size > 1`` each sample covers a whole micro-batch, so the
    window is ``ceil(upto_updates / batch_size)`` samples and the mean is
    normalised by the updates those samples actually cover (every window
    batch is full except possibly the stream's final one, capped by
    ``total_updates``) — not by ``upto_updates``, which would bias
    checkpoints that fall inside a batch.
    """
    if batch_size > 1:
        num_samples = -(-upto_updates // batch_size)
        window = samples[:num_samples]
        updates_covered = len(window) * batch_size
        if total_updates is not None:
            updates_covered = min(updates_covered, total_updates)
    else:
        window = samples[:upto_updates]
        updates_covered = len(window)
    if not window or not updates_covered:
        return 0.0
    return sum(window) / updates_covered * 1e3


# ----------------------------------------------------------------------
# Generic experiment shapes
# ----------------------------------------------------------------------
def _graph_size_sweep(
    config: ExperimentConfig, *, title: str, dataset: str | None = None
) -> ExperimentResult:
    """Answering time as the graph grows (Figs. 12a, 12f, 13a, 14a, 14b, 14c)."""
    dataset = dataset or config.dataset
    stream = build_stream(dataset, config.scaled_num_updates, config.seed)
    workload = build_workload(
        stream,
        num_queries=config.scaled_num_queries,
        avg_edges=config.avg_edges,
        selectivity=config.selectivity,
        overlap=config.overlap,
        seed=config.seed + 1,
    )
    result = ExperimentResult(
        experiment_id=config.experiment_id,
        title=title,
        x_label="graph size (edges)",
        config=config,
    )
    checkpoints = _checkpoint_positions(len(stream), config.num_points)
    for engine_name in config.engines:
        replay, _ = _replay_engine(
            engine_name,
            workload,
            stream,
            time_budget_s=config.scaled_time_budget_s,
            measure_memory=config.measure_memory,
            batch_size=config.batch_size,
            poll_every=config.poll_every,
            subscribe=config.subscribe,
            shards=config.shards,
        )
        samples = replay.answering.samples
        for checkpoint in checkpoints:
            reached = checkpoint <= replay.updates_processed
            result.points.append(
                SeriesPoint(
                    x=checkpoint,
                    engine=engine_name,
                    answering_ms=_running_mean_ms(
                        samples, checkpoint, config.batch_size, replay.updates_processed
                    ),
                    memory_mb=(
                        replay.memory_bytes / (1024 * 1024)
                        if replay.memory_bytes is not None
                        else None
                    ),
                    timed_out=not reached,
                    updates_processed=min(checkpoint, replay.updates_processed),
                    matched_updates=replay.matched_updates,
                )
            )
    return result


def _parameter_sweep(
    config: ExperimentConfig,
    *,
    title: str,
    x_label: str,
    values: Sequence[object],
    workload_override: Callable[[ExperimentConfig, object], Dict[str, object]],
) -> ExperimentResult:
    """Answering time as one workload parameter varies (Figs. 12b–12e)."""
    stream = build_stream(config.dataset, config.scaled_num_updates, config.seed)
    result = ExperimentResult(
        experiment_id=config.experiment_id,
        title=title,
        x_label=x_label,
        config=config,
    )
    for value in values:
        overrides = workload_override(config, value)
        workload = build_workload(
            stream,
            num_queries=overrides.get("num_queries", config.scaled_num_queries),
            avg_edges=overrides.get("avg_edges", config.avg_edges),
            selectivity=overrides.get("selectivity", config.selectivity),
            overlap=overrides.get("overlap", config.overlap),
            seed=config.seed + 1,
        )
        for engine_name in config.engines:
            replay, _ = _replay_engine(
                engine_name,
                workload,
                stream,
                time_budget_s=config.scaled_time_budget_s,
                measure_memory=False,
                batch_size=config.batch_size,
                poll_every=config.poll_every,
                subscribe=config.subscribe,
                shards=config.shards,
                executor=config.executor,
            )
            result.points.append(
                SeriesPoint(
                    x=value,
                    engine=engine_name,
                    answering_ms=replay.answering_time_ms_per_update,
                    timed_out=replay.timed_out,
                    updates_processed=replay.updates_processed,
                    matched_updates=replay.matched_updates,
                )
            )
    return result


# ----------------------------------------------------------------------
# Figure 12 — SNB dataset
# ----------------------------------------------------------------------
def experiment_fig12a(config: ExperimentConfig) -> ExperimentResult:
    """Fig. 12(a): answering time vs. graph size, SNB baseline configuration."""
    return _graph_size_sweep(config, title="SNB — influence of graph size")


def experiment_fig12b(config: ExperimentConfig) -> ExperimentResult:
    """Fig. 12(b): answering time vs. selectivity σ (10 %–30 %)."""
    return _parameter_sweep(
        config,
        title="SNB — influence of selectivity σ",
        x_label="selectivity σ",
        values=(0.10, 0.15, 0.20, 0.25, 0.30),
        workload_override=lambda cfg, value: {"selectivity": value},
    )


def experiment_fig12c(config: ExperimentConfig) -> ExperimentResult:
    """Fig. 12(c): answering time vs. query database size |QDB|."""
    base = config.scaled_num_queries
    values = [max(10, base // 5), max(10, (base * 3) // 5), base]
    return _parameter_sweep(
        config,
        title="SNB — influence of query database size",
        x_label="|QDB| (queries)",
        values=values,
        workload_override=lambda cfg, value: {"num_queries": value},
    )


def experiment_fig12d(config: ExperimentConfig) -> ExperimentResult:
    """Fig. 12(d): answering time vs. average query size l (3, 5, 7, 9)."""
    return _parameter_sweep(
        config,
        title="SNB — influence of average query size l",
        x_label="l (edges/query)",
        values=(3, 5, 7, 9),
        workload_override=lambda cfg, value: {"avg_edges": value},
    )


def experiment_fig12e(config: ExperimentConfig) -> ExperimentResult:
    """Fig. 12(e): answering time vs. query overlap o (25 %–65 %)."""
    return _parameter_sweep(
        config,
        title="SNB — influence of query overlap o",
        x_label="overlap o",
        values=(0.25, 0.35, 0.45, 0.55, 0.65),
        workload_override=lambda cfg, value: {"overlap": value},
    )


def experiment_fig12f(config: ExperimentConfig) -> ExperimentResult:
    """Fig. 12(f): answering time vs. graph size on the larger SNB stream.

    The inverted-index baselines exhaust the time budget first, reproducing
    the paper's "timed out" asterisks.
    """
    return _graph_size_sweep(config, title="SNB (large) — influence of graph size")


# ----------------------------------------------------------------------
# Figure 13 — scalability, indexing, and memory
# ----------------------------------------------------------------------
def experiment_fig13a(config: ExperimentConfig) -> ExperimentResult:
    """Fig. 13(a): answering time on the largest SNB stream (TRIC/TRIC+/GraphDB)."""
    return _graph_size_sweep(config, title="SNB (extra large) — TRIC vs TRIC+ vs GraphDB")


def experiment_fig13b(config: ExperimentConfig) -> ExperimentResult:
    """Fig. 13(b): query insertion (indexing) time as |QDB| grows.

    Queries are registered in batches; the per-query indexing time of each
    batch is reported at the resulting query-database size.
    """
    stream = build_stream(config.dataset, config.scaled_num_updates, config.seed)
    workload = build_workload(
        stream,
        num_queries=config.scaled_num_queries,
        avg_edges=config.avg_edges,
        selectivity=config.selectivity,
        overlap=config.overlap,
        seed=config.seed + 1,
    )
    num_batches = min(5, max(1, config.num_points))
    batch_size = max(1, len(workload.queries) // num_batches)
    result = ExperimentResult(
        experiment_id=config.experiment_id,
        title="SNB — query insertion time",
        x_label="|QDB| after batch (queries)",
        config=config,
        metric="indexing_ms_per_query",
    )
    for engine_name in config.engines:
        engine = create_engine(engine_name)
        runner = StreamRunner(engine)
        registered = 0
        for start in range(0, len(workload.queries), batch_size):
            batch = workload.queries[start : start + batch_size]
            if not batch:
                continue
            elapsed = runner.index_queries(batch)
            registered += len(batch)
            result.points.append(
                SeriesPoint(
                    x=registered,
                    engine=engine_name,
                    answering_ms=0.0,
                    indexing_ms_per_query=elapsed / len(batch) * 1e3,
                )
            )
    return result


def experiment_fig13c(config: ExperimentConfig) -> ExperimentResult:
    """Fig. 13(c): memory requirements per engine across the three datasets."""
    result = ExperimentResult(
        experiment_id=config.experiment_id,
        title="Memory requirements (SNB, TAXI, BioGRID)",
        x_label="dataset",
        config=config,
        metric="memory_mb",
    )
    for dataset in ("snb", "taxi", "biogrid"):
        stream = build_stream(dataset, config.scaled_num_updates, config.seed)
        workload = build_workload(
            stream,
            num_queries=config.scaled_num_queries,
            avg_edges=config.avg_edges,
            selectivity=config.selectivity,
            overlap=config.overlap,
            seed=config.seed + 1,
        )
        for engine_name in config.engines:
            replay, _ = _replay_engine(
                engine_name,
                workload,
                stream,
                time_budget_s=config.scaled_time_budget_s,
                measure_memory=True,
                batch_size=config.batch_size,
                poll_every=config.poll_every,
                subscribe=config.subscribe,
                shards=config.shards,
                executor=config.executor,
            )
            memory_mb = (
                replay.memory_bytes / (1024 * 1024) if replay.memory_bytes is not None else None
            )
            result.points.append(
                SeriesPoint(
                    x=dataset,
                    engine=engine_name,
                    answering_ms=replay.answering_time_ms_per_update,
                    memory_mb=memory_mb,
                    timed_out=replay.timed_out,
                    updates_processed=replay.updates_processed,
                )
            )
    return result


# ----------------------------------------------------------------------
# Figure 14 — TAXI and BioGRID datasets
# ----------------------------------------------------------------------
def experiment_fig14a(config: ExperimentConfig) -> ExperimentResult:
    """Fig. 14(a): answering time vs. graph size on the TAXI dataset."""
    return _graph_size_sweep(config, title="TAXI — influence of graph size", dataset="taxi")


def experiment_fig14b(config: ExperimentConfig) -> ExperimentResult:
    """Fig. 14(b): answering time vs. graph size on BioGRID (stress test)."""
    return _graph_size_sweep(config, title="BioGRID — influence of graph size", dataset="biogrid")


def experiment_fig14c(config: ExperimentConfig) -> ExperimentResult:
    """Fig. 14(c): BioGRID at larger scale (TRIC, TRIC+, GraphDB only)."""
    return _graph_size_sweep(
        config, title="BioGRID (large) — TRIC vs TRIC+ vs GraphDB", dataset="biogrid"
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_ALL_ENGINES = ("TRIC", "TRIC+", "INV", "INV+", "INC", "INC+", "GraphDB")
_TRIO = ("TRIC", "TRIC+", "GraphDB")

#: experiment id -> (default configuration, experiment function)
EXPERIMENTS: Dict[str, Tuple[ExperimentConfig, Callable[[ExperimentConfig], ExperimentResult]]] = {
    "fig12a": (ExperimentConfig("fig12a", engines=_ALL_ENGINES), experiment_fig12a),
    "fig12b": (ExperimentConfig("fig12b", engines=_ALL_ENGINES), experiment_fig12b),
    "fig12c": (ExperimentConfig("fig12c", engines=_ALL_ENGINES), experiment_fig12c),
    "fig12d": (ExperimentConfig("fig12d", engines=_ALL_ENGINES), experiment_fig12d),
    "fig12e": (ExperimentConfig("fig12e", engines=_ALL_ENGINES), experiment_fig12e),
    "fig12f": (
        ExperimentConfig("fig12f", engines=_ALL_ENGINES, num_updates=60_000, time_budget_s=240.0),
        experiment_fig12f,
    ),
    "fig13a": (
        ExperimentConfig("fig13a", engines=_TRIO, num_updates=120_000, time_budget_s=240.0),
        experiment_fig13a,
    ),
    "fig13b": (ExperimentConfig("fig13b", engines=_ALL_ENGINES), experiment_fig13b),
    "fig13c": (
        ExperimentConfig("fig13c", engines=_ALL_ENGINES, measure_memory=True),
        experiment_fig13c,
    ),
    "fig14a": (
        ExperimentConfig("fig14a", dataset="taxi", engines=_ALL_ENGINES, time_budget_s=60.0),
        experiment_fig14a,
    ),
    "fig14b": (
        ExperimentConfig(
            "fig14b", dataset="biogrid", engines=_ALL_ENGINES, avg_edges=3, time_budget_s=240.0
        ),
        experiment_fig14b,
    ),
    "fig14c": (
        ExperimentConfig(
            "fig14c",
            dataset="biogrid",
            engines=_TRIO,
            num_updates=60_000,
            avg_edges=3,
            time_budget_s=240.0,
        ),
        experiment_fig14c,
    ),
}


def experiment_ids() -> List[str]:
    """All known experiment identifiers (one per figure of the paper)."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, *, scale: float | None = None, **overrides) -> ExperimentResult:
    """Run one experiment by id, optionally rescaled or with field overrides."""
    entry = EXPERIMENTS.get(experiment_id)
    if entry is None:
        raise BenchmarkError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENTS)}"
        )
    config, function = entry
    if scale is not None:
        config = config.with_scale(scale)
    if overrides:
        config = config.with_overrides(**overrides)
    return function(config)
