"""Experiment configurations for the paper's evaluation (Section 6.1).

The paper's baseline configuration is: SNB stream, ``|QDB| = 5000`` queries,
average query size ``l = 5``, selectivity ``σ = 25 %``, overlap ``o = 35 %``,
graph sizes from 10K to 10M edges, and a 24-hour time budget per algorithm.

Running that verbatim on a pure-Python laptop-scale build is unrepresentative
(see DESIGN.md), so every experiment is parameterised by a ``scale`` factor
applied to the stream length, the query-database size and the per-engine time
budget.  ``scale=1.0`` corresponds to the repository's *reference* size
(already much smaller than the paper's raw numbers); the pytest benchmark
suite uses a smaller scale so the whole figure set regenerates in minutes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Sequence, Tuple

from ..graph.errors import BenchmarkError

__all__ = [
    "ExperimentConfig",
    "REFERENCE_NUM_UPDATES",
    "REFERENCE_NUM_QUERIES",
    "REFERENCE_TIME_BUDGET_S",
    "DEFAULT_BENCH_SCALE",
    "bench_scale_from_env",
]

#: Reference sizes at ``scale = 1.0`` (already scaled down from the paper).
REFERENCE_NUM_UPDATES = 20_000
REFERENCE_NUM_QUERIES = 1_000
REFERENCE_TIME_BUDGET_S = 120.0

#: Scale used by the pytest benchmark suite unless overridden via the
#: ``REPRO_BENCH_SCALE`` environment variable.
DEFAULT_BENCH_SCALE = 0.05


def bench_scale_from_env(default: float = DEFAULT_BENCH_SCALE) -> float:
    """Scale factor for the pytest benchmarks (``REPRO_BENCH_SCALE`` env var)."""
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError as exc:
        raise BenchmarkError(f"invalid REPRO_BENCH_SCALE value: {raw!r}") from exc
    if value <= 0:
        raise BenchmarkError("REPRO_BENCH_SCALE must be positive")
    return value


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of a single experiment run (one figure of the paper)."""

    experiment_id: str
    dataset: str = "snb"
    engines: Tuple[str, ...] = ("TRIC", "TRIC+", "INV", "INV+", "INC", "INC+", "GraphDB")
    scale: float = 1.0
    num_updates: int = REFERENCE_NUM_UPDATES
    num_queries: int = REFERENCE_NUM_QUERIES
    avg_edges: int = 5
    selectivity: float = 0.25
    overlap: float = 0.35
    time_budget_s: float = REFERENCE_TIME_BUDGET_S
    seed: int = 17
    measure_memory: bool = False
    #: Number of measurement points along the x axis (graph-size sweeps).
    num_points: int = 5
    #: Stream updates per engine call: 1 replays per-update, larger values
    #: drive the engines through answer-equivalent micro-batches.
    batch_size: int = 1
    #: When positive, poll ``matches_of`` for every satisfied query each
    #: ``poll_every`` processed updates — the workload on which the
    #: answer-materialising ``+`` engines (TRIC+/INV+/INC+) separate from
    #: their base variants (0 disables polling, the paper's original
    #: notification-only protocol).
    poll_every: int = 0
    #: When positive, run the replay in *subscription mode*: a
    #: :class:`~repro.pubsub.broker.SubscriptionBroker` delivers match
    #: deltas for ``subscribe`` queries picked evenly across the registered
    #: query database (the k-of-n serving workload) instead of the
    #: poll-every-satisfied-query loop.
    subscribe: int = 0
    #: Number of engine shards the query database is partitioned across
    #: (1 = the unsharded engines the paper evaluates).
    shards: int = 1
    #: Shard fan-out executor (``serial``, ``thread`` or ``process``; only
    #: meaningful with ``shards > 1``).
    executor: str = "serial"

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise BenchmarkError("scale must be positive")
        if self.num_points <= 0:
            raise BenchmarkError("num_points must be positive")
        if self.batch_size < 1:
            raise BenchmarkError("batch_size must be at least 1")
        if self.poll_every < 0:
            raise BenchmarkError("poll_every must not be negative")
        if self.subscribe < 0:
            raise BenchmarkError("subscribe must not be negative")
        if self.shards < 1:
            raise BenchmarkError("shards must be at least 1")
        if self.executor not in ("serial", "thread", "process"):
            raise BenchmarkError(
                f"unknown executor {self.executor!r}; options: serial, thread, process"
            )

    # ------------------------------------------------------------------
    # Scaled sizes
    # ------------------------------------------------------------------
    @property
    def scaled_num_updates(self) -> int:
        """Stream length after applying the scale factor (at least 200)."""
        return max(200, int(self.num_updates * self.scale))

    @property
    def scaled_num_queries(self) -> int:
        """Query-database size after applying the scale factor (at least 20)."""
        return max(20, int(self.num_queries * self.scale))

    @property
    def scaled_time_budget_s(self) -> float:
        """Per-engine time budget after applying the scale factor (≥ 2 s)."""
        return max(2.0, self.time_budget_s * self.scale)

    def with_scale(self, scale: float) -> "ExperimentConfig":
        """Copy of this configuration at a different scale."""
        return replace(self, scale=scale)

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """Copy of this configuration with arbitrary field overrides."""
        return replace(self, **overrides)

    def describe(self) -> Dict[str, object]:
        """Flat description used in reports."""
        return {
            "experiment": self.experiment_id,
            "dataset": self.dataset,
            "engines": ", ".join(self.engines),
            "scale": self.scale,
            "updates": self.scaled_num_updates,
            "queries": self.scaled_num_queries,
            "avg_edges": self.avg_edges,
            "selectivity": self.selectivity,
            "overlap": self.overlap,
            "time_budget_s": round(self.scaled_time_budget_s, 1),
            "seed": self.seed,
            "batch_size": self.batch_size,
            "poll_every": self.poll_every,
            "subscribe": self.subscribe,
            "shards": self.shards,
            "executor": self.executor,
        }
