"""Figure metadata: what each experiment reproduces and the expected shape.

Used by the CLI (to print the context of a regenerated figure) and by the
EXPERIMENTS.md documentation, which records paper-vs-measured observations
for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["FigureSpec", "FIGURES"]


@dataclass(frozen=True)
class FigureSpec:
    """Description of one paper figure and the claim it supports."""

    figure: str
    dataset: str
    varied: str
    paper_observation: str
    expected_shape: str


FIGURES: Dict[str, FigureSpec] = {
    "fig12a": FigureSpec(
        figure="Figure 12(a)",
        dataset="SNB",
        varied="graph size (10K–100K edges)",
        paper_observation=(
            "TRIC improves answering time over INV, INC and Neo4j by 99.15%, 98.14% "
            "and 91.86%; TRIC+ improves over INV+, INC+ and Neo4j by 99.62%, 99.17% "
            "and 96.74%; caching variants beat their non-caching counterparts."
        ),
        expected_shape=(
            "TRIC+ fastest, then TRIC; INC variants beat INV variants; GraphDB slowest "
            "or timing out; every engine slows as the graph grows."
        ),
    ),
    "fig12b": FigureSpec(
        figure="Figure 12(b)",
        dataset="SNB",
        varied="selectivity σ (10%–30%)",
        paper_observation=(
            "All algorithms keep the same relative order for every σ; higher σ means "
            "more satisfied queries and more work for every engine."
        ),
        expected_shape="TRIC+ < TRIC < INC+/INC < INV+/INV < GraphDB at every σ.",
    ),
    "fig12c": FigureSpec(
        figure="Figure 12(c)",
        dataset="SNB",
        varied="query database size |QDB| (1K, 3K, 5K)",
        paper_observation=(
            "Answering time grows with |QDB| for every algorithm (log-scale y axis); "
            "TRIC/TRIC+ stay lowest throughout."
        ),
        expected_shape="Monotone growth with |QDB|; trie-based engines lowest.",
    ),
    "fig12d": FigureSpec(
        figure="Figure 12(d)",
        dataset="SNB",
        varied="average query size l (3, 5, 7, 9)",
        paper_observation=(
            "Answering time increases with l for all algorithms; TRIC/TRIC+ remain "
            "fastest, the baselines degrade sharply at l = 9."
        ),
        expected_shape="Growth with l; widening gap between TRIC-family and baselines.",
    ),
    "fig12e": FigureSpec(
        figure="Figure 12(e)",
        dataset="SNB",
        varied="query overlap o (25%–65%)",
        paper_observation=(
            "Higher overlap reduces the work of clustering-based algorithms; TRIC+ is "
            "the fastest overall, TRIC the fastest non-caching algorithm."
        ),
        expected_shape="TRIC/TRIC+ flat or improving with o; baselines roughly flat.",
    ),
    "fig12f": FigureSpec(
        figure="Figure 12(f)",
        dataset="SNB (1M edges)",
        varied="graph size",
        paper_observation=(
            "INV/INV+ time out at 210K edges, INC/INC+ at 310K; TRIC/TRIC+ finish; "
            "TRIC and TRIC+ improve over Neo4j by 77.01% and 92.86%."
        ),
        expected_shape="Inverted-index baselines hit the budget first; TRIC+ finishes.",
    ),
    "fig13a": FigureSpec(
        figure="Figure 13(a)",
        dataset="SNB (10M edges)",
        varied="graph size",
        paper_observation=(
            "Only TRIC+ completes the 10M-edge stream; TRIC times out at 5.47M edges "
            "and Neo4j at 4.3M."
        ),
        expected_shape="TRIC+ lowest and completes; TRIC and GraphDB exhaust the budget.",
    ),
    "fig13b": FigureSpec(
        figure="Figure 13(b)",
        dataset="SNB",
        varied="query database size during insertion",
        paper_observation=(
            "Per-query indexing time is highest for the first batch (structure "
            "initialisation) and drops as queries share structure; all algorithms "
            "index queries in sub-millisecond to millisecond time."
        ),
        expected_shape="First batch slowest; later batches cheaper and similar across engines.",
    ),
    "fig13c": FigureSpec(
        figure="Figure 13(c)",
        dataset="SNB, TAXI, BioGRID",
        varied="dataset",
        paper_observation=(
            "TRIC/INV/INC have the lowest footprint, the caching variants slightly "
            "more, Neo4j the most (443–590MB vs ~200–310MB)."
        ),
        expected_shape="Non-caching < caching variants; the graph database carries extra store overhead.",
    ),
    "fig14a": FigureSpec(
        figure="Figure 14(a)",
        dataset="TAXI",
        varied="graph size (100K–1M edges)",
        paper_observation=(
            "INV/INV+ time out at 210K/300K edges and INC/INC+ at 220K/360K; TRIC and "
            "TRIC+ improve over Neo4j by 59.68% and 81.76%."
        ),
        expected_shape="Same ordering as SNB; baselines exhaust the budget before TRIC.",
    ),
    "fig14b": FigureSpec(
        figure="Figure 14(b)",
        dataset="BioGRID",
        varied="graph size (10K–100K edges)",
        paper_observation=(
            "Single edge/vertex type: every update affects the whole query database; "
            "INV/INV+/INC time out at 50K edges, INC+ at 60K; TRIC/TRIC+ finish."
        ),
        expected_shape="Stress test: baselines time out early, TRIC-family survives.",
    ),
    "fig14c": FigureSpec(
        figure="Figure 14(c)",
        dataset="BioGRID (1M edges)",
        varied="graph size",
        paper_observation=(
            "TRIC and TRIC+ achieve the lowest answering times; Neo4j exceeds the time "
            "threshold at 550K edges."
        ),
        expected_shape="TRIC/TRIC+ complete; GraphDB exhausts the budget.",
    ),
}
