"""Command-line entry point regenerating the paper's figures.

Usage (installed as the ``repro-bench`` console script)::

    repro-bench --list
    repro-bench --experiment fig12a --scale 0.05
    repro-bench --all --scale 0.02 --output results/

Each experiment prints the regenerated series as a text table (one column per
engine, one row per x-axis value, ``*`` marking engines that exhausted the
time budget — the paper's "timed out" asterisks) together with the paper's
observation for that figure, and can optionally write the tables to files.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ..engines import ANSWER_MATERIALISING_ENGINES, ENGINE_FACTORIES, ENGINE_STRATEGIES
from ..pubsub.serve import parse_subscribe_spec
from .configs import DEFAULT_BENCH_SCALE
from .experiments import EXPERIMENTS, ExperimentResult, experiment_ids, run_experiment
from .figures import FIGURES
from .workloads import SCENARIOS, generate_workload, run_workload

__all__ = ["main", "build_parser", "render_experiment"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the figures of 'Efficient Continuous Multi-Query "
        "Processing over Graph Streams' (EDBT 2020).",
    )
    parser.add_argument("--experiment", "-e", action="append", dest="experiments",
                        help="experiment id (e.g. fig12a); may be repeated")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument("--list-engines", action="store_true",
                        help="list the engine matrix (base vs answer-materialising '+' "
                        "variants) and exit")
    parser.add_argument("--workload", "-w", action="append", dest="workloads",
                        metavar="NAME",
                        help="run a named synthetic scenario workload (see "
                        "--list-workloads) through the selected engines, every "
                        "run verified byte-identical against the Naive string "
                        "oracle; may be repeated")
    parser.add_argument("--list-workloads", action="store_true",
                        help="list the synthetic scenario workloads and exit")
    parser.add_argument("--engines", default=None, metavar="CSV",
                        help="comma-separated engine subset for --workload runs "
                        "(default: every engine)")
    parser.add_argument("--scale", type=float, default=None,
                        help="scale factor applied to stream/query sizes and time budgets "
                        f"(default: experiment default; benchmarks use {DEFAULT_BENCH_SCALE})")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="stream updates per engine call (default 1: per-update replay; "
                        "larger values drive the engines through answer-equivalent "
                        "micro-batches)")
    parser.add_argument("--poll-every", type=int, default=None,
                        help="poll matches_of for every satisfied query each N processed "
                        "updates (default 0: notification-only replay; polling is the "
                        "workload that separates the answer-materialising '+' engines "
                        "from their base variants)")
    parser.add_argument("--subscribe", type=parse_subscribe_spec, default=None,
                        metavar="K[-of-N]",
                        help="subscription-mode replay: a broker delivers match deltas "
                        "for K queries picked evenly across the registered query "
                        "database (the serving workload that subsumes --poll-every "
                        "for applications watching specific queries)")
    parser.add_argument("--shards", type=int, default=None,
                        help="partition the query database across N independent engine "
                        "shards (default 1: the paper's unsharded engines)")
    parser.add_argument("--executor", default=None,
                        choices=("serial", "thread", "process"),
                        help="shard fan-out executor (with --shards > 1): serial "
                        "in-process loop, thread pool, or one worker process per "
                        "shard (default serial)")
    parser.add_argument("--output", type=Path, default=None,
                        help="directory to write one .txt report per experiment")
    parser.add_argument("--profile", action="store_true",
                        help="run each experiment under cProfile and print the top-25 "
                        "functions by cumulative time (verifies what is on the hot "
                        "path); also profiles a broker-subscribed pass of the "
                        "experiment so flush/delivery cost is visible")
    return parser


def render_experiment(result: ExperimentResult) -> str:
    """Render an experiment result plus the paper's expectation for that figure."""
    spec = FIGURES.get(result.experiment_id)
    lines = [result.to_table()]
    if spec is not None:
        lines.append("")
        lines.append(f"paper ({spec.figure}, {spec.dataset}, varying {spec.varied}):")
        lines.append(f"  {spec.paper_observation}")
        lines.append(f"expected shape: {spec.expected_shape}")
    lines.append("")
    lines.append("configuration: " + ", ".join(f"{k}={v}" for k, v in result.config.describe().items()))
    return "\n".join(lines)


def run_workloads(
    names: Sequence[str],
    engine_names: Sequence[str],
    *,
    scale: Optional[float] = None,
    shards: int = 1,
    executor: str = "serial",
) -> int:
    """Run named scenario workloads through engines, oracle-verified.

    Every engine's transcript (per-tick notified ids + final answers) must
    be byte-identical to the ``Naive`` string oracle's; a divergent engine
    fails the run with exit code 1.
    """
    for name in names:
        spec = SCENARIOS[name]
        if scale is not None:
            spec = spec.scaled(scale)
        workload = generate_workload(spec)
        description = workload.describe()
        print(
            f"=== workload {name} ({description['updates']} updates, "
            f"{description['ticks']} ticks, {description['queries']} queries, "
            f"fingerprint {description['fingerprint']}) ==="
        )
        oracle = run_workload(workload, "Naive", shards=1)
        header = f"{'engine':10s} {'upd/s':>10s} {'p50 ms':>9s} {'p95 ms':>9s} {'p99 ms':>9s}  oracle"
        print(header)
        divergent = False
        for engine_name in engine_names:
            if engine_name == "Naive":
                result = oracle
            else:
                result = run_workload(workload, engine_name, shards=shards, executor=executor)
            identical = result.transcript == oracle.transcript
            divergent = divergent or not identical
            print(
                f"{engine_name:10s} {result.updates_per_s:10.0f} "
                f"{result.tick_latency.p50_ms:9.3f} {result.tick_latency.p95_ms:9.3f} "
                f"{result.tick_latency.p99_ms:9.3f}  "
                f"{'identical' if identical else 'DIVERGED'}"
            )
        print()
        if divergent:
            print(f"workload {name}: engine output diverged from the oracle", file=sys.stderr)
            return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in experiment_ids():
            spec = FIGURES[experiment_id]
            print(f"{experiment_id:8s} {spec.figure:14s} {spec.dataset:18s} varying {spec.varied}")
        return 0

    if args.list_engines:
        for name, strategy in ENGINE_STRATEGIES.items():
            tier = "answers" if name in ANSWER_MATERIALISING_ENGINES else "base"
            print(f"{name:8s} {tier:8s} {strategy}")
        return 0

    if args.list_workloads:
        for name, spec in SCENARIOS.items():
            print(f"{name:14s} {spec.description}")
        return 0

    engine_names: List[str] = list(ENGINE_FACTORIES)
    if args.engines is not None:
        engine_names = [name.strip() for name in args.engines.split(",") if name.strip()]
        unknown = [name for name in engine_names if name not in ENGINE_FACTORIES]
        if unknown or not engine_names:
            print(
                f"unknown engine(s): {', '.join(unknown) or '(none given)'}; "
                f"available engines: {', '.join(ENGINE_FACTORIES)}",
                file=sys.stderr,
            )
            return 2

    if args.workloads:
        unknown = [name for name in args.workloads if name not in SCENARIOS]
        if unknown:
            print(
                f"unknown workload(s): {', '.join(unknown)}; "
                f"available workloads: {', '.join(SCENARIOS)}",
                file=sys.stderr,
            )
            return 2
        if args.shards is not None and args.shards < 1:
            print("--shards must be at least 1", file=sys.stderr)
            return 2
        return run_workloads(
            args.workloads,
            engine_names,
            scale=args.scale,
            shards=args.shards or 1,
            executor=args.executor or "serial",
        )

    selected: List[str]
    if args.all:
        selected = experiment_ids()
    elif args.experiments:
        selected = list(args.experiments)
    else:
        parser.print_help()
        return 2

    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.output is not None:
        args.output.mkdir(parents=True, exist_ok=True)

    overrides = {}
    if args.batch_size is not None:
        if args.batch_size < 1:
            print("--batch-size must be at least 1", file=sys.stderr)
            return 2
        overrides["batch_size"] = args.batch_size
    if args.poll_every is not None:
        if args.poll_every < 0:
            print("--poll-every must not be negative", file=sys.stderr)
            return 2
        overrides["poll_every"] = args.poll_every
    if args.subscribe is not None:
        # Parsed as "K" or "K-of-N"; the N part is informational here
        # (subscribed queries are picked evenly across the registered
        # query database).
        subscribe, _ = args.subscribe
        if subscribe < 0:
            print("--subscribe must not be negative", file=sys.stderr)
            return 2
        overrides["subscribe"] = subscribe
    if args.shards is not None:
        if args.shards < 1:
            print("--shards must be at least 1", file=sys.stderr)
            return 2
        overrides["shards"] = args.shards
    if args.executor is not None:
        overrides["executor"] = args.executor

    for experiment_id in selected:
        print(f"=== running {experiment_id} ===", flush=True)
        if args.profile:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            result = run_experiment(experiment_id, scale=args.scale, **overrides)
            profiler.disable()
        else:
            result = run_experiment(experiment_id, scale=args.scale, **overrides)
        report = render_experiment(result)
        print(report)
        print()
        if args.profile:
            print(f"--- profile: {experiment_id} (top 25 by cumulative time) ---")
            pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
            if not overrides.get("subscribe"):
                # A broker-subscribed pass of the same experiment, so the
                # flush/delivery cost (AnswerDeltaTracker.collect, the
                # affected-aware SubscriptionBroker.flush) shows up in the
                # top-25 instead of being invisible in engine-only replays.
                subscribed = dict(overrides, subscribe=5)
                profiler = cProfile.Profile()
                profiler.enable()
                run_experiment(experiment_id, scale=args.scale, **subscribed)
                profiler.disable()
                print(
                    f"--- profile: {experiment_id} broker-subscribed "
                    "(top 25 by cumulative time) ---"
                )
                pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
        if args.output is not None:
            path = args.output / f"{experiment_id}.txt"
            path.write_text(report + "\n", encoding="utf-8")
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(main())
