"""Seeded synthetic workload generator + the scenario matrix.

Every committed benchmark so far replays the same SNB-derived streams, so
"fast" has meant "fast on fig12a".  This module opens the workload space:
a :class:`WorkloadSpec` is a declarative, fully deterministic description
of a synthetic graph stream *and* its query set *and* its subscription
churn plan, controlled by the knobs that probe the system's known soft
spots:

``delete_ratio``
    fraction of stream updates that delete a currently-live edge (the
    lazy-deletion caches of INV+/INC+ and the counting maintenance of
    TRIC are exercised here),
``skew``
    Zipf exponent of the vertex-endpoint distribution — high skew
    concentrates the stream on a few hub vertices, growing dense
    adjacency buckets,
``burstiness`` / ``mean_batch_size``
    the micro-batch (tick) size distribution: ``0`` replays constant
    batches, higher values interleave long bursts with idle single-update
    ticks,
``query shape / length``
    chain vs star vs cycle weights and the edge-count distribution of the
    generated query database,
``label_selectivity``
    the fraction of the label alphabet queries draw from — low values
    concentrate every query on a few hot labels (worst case for
    label-filtered shard fan-out and affected-query reports),
``subscription_churn``
    probability per tick of a mid-stream subscribe/unsubscribe event
    (the broker's watch set never settles).

Determinism is a *contract*, not an accident: generation draws exclusively
from ``random.Random.random()`` — the one primitive the stdlib guarantees
stable across Python versions — so an identical spec produces a
byte-identical workload on every run and every interpreter
(:meth:`SyntheticWorkload.fingerprint` is the hash the property tests pin).

On top of the generator, :data:`SCENARIOS` names the published scenario
matrix rows (insert-heavy, delete-heavy, bursty, high-skew, churn-heavy
subscriptions, soak) and :func:`run_workload` replays one workload through
one engine — broker-subscribed when the spec churns subscriptions —
measuring throughput and p50/p95/p99 tick latency and capturing an
*oracle transcript* (per-tick notified ids + final answers of every query,
canonically serialised) so every engine x scenario cell can be asserted
byte-identical to the string oracle (``Naive``), the golden-reference
principle of the benchmark design notes in SNIPPETS.md.
"""

from __future__ import annotations

import hashlib
import json
import random
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..graph.elements import Update, add, delete
from ..graph.errors import BenchmarkError
from ..graph.stream import GraphStream
from ..query.pattern import QueryGraphPattern
from ..streams.metrics import TimingStats

__all__ = [
    "WorkloadSpec",
    "ChurnEvent",
    "SyntheticWorkload",
    "WorkloadRunResult",
    "SCENARIOS",
    "scenario_names",
    "scenario_spec",
    "generate_workload",
    "run_workload",
]

_SHAPES = ("chain", "star", "cycle")


# ----------------------------------------------------------------------
# Deterministic sampling primitives
# ----------------------------------------------------------------------
# Only Random.random() is guaranteed stable across Python versions, so
# every draw below is derived from it (randrange/choice/shuffle are
# explicitly *not* covered by that guarantee).
def _rand_index(rng: random.Random, n: int) -> int:
    """Uniform index in ``[0, n)`` derived from ``rng.random()`` alone."""
    return min(int(rng.random() * n), n - 1)


class _ZipfSampler:
    """Zipf-distributed index sampler over ``0..n-1`` via inverse CDF.

    ``skew = 0`` degenerates to uniform; larger exponents concentrate the
    mass on the low indexes.  Weights are precomputed once so sampling is
    one ``random()`` plus one bisect.
    """

    def __init__(self, n: int, skew: float) -> None:
        if n <= 0:
            raise BenchmarkError("sampler population must be positive")
        self._n = n
        if skew <= 0.0:
            self._cumulative: Optional[List[float]] = None
            return
        cumulative: List[float] = []
        total = 0.0
        for index in range(n):
            total += 1.0 / (index + 1) ** skew
            cumulative.append(total)
        self._cumulative = cumulative

    def sample(self, rng: random.Random) -> int:
        if self._cumulative is None:
            return _rand_index(rng, self._n)
        target = rng.random() * self._cumulative[-1]
        return min(bisect_right(self._cumulative, target), self._n - 1)


# ----------------------------------------------------------------------
# Specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one synthetic workload.

    Instances are immutable and hashable; :func:`generate_workload` maps a
    spec to a byte-identical :class:`SyntheticWorkload` on every run.
    """

    #: Scenario name (reports, BENCH sections, ``repro-bench --workload``).
    name: str = "custom"
    #: Master seed; every stream/query/churn draw derives from it.
    seed: int = 7
    #: Stream length in updates.
    num_updates: int = 2_000
    #: Query-database size.
    num_queries: int = 40
    #: Vertex pool size (identifiers ``n0`` .. ``n{V-1}``).
    num_vertices: int = 400
    #: Edge-label alphabet size (labels ``rel0`` .. ``rel{L-1}``).
    num_labels: int = 8
    #: Fraction of updates that delete a live edge (0 = insert-only).
    delete_ratio: float = 0.0
    #: Zipf exponent of the endpoint-vertex distribution (0 = uniform).
    skew: float = 0.0
    #: Tick-size dispersion in [0, 1): probability that a tick is a burst
    #: of ``2..10 x mean_batch_size`` updates instead of ``1..mean`` ones.
    burstiness: float = 0.0
    #: Mean updates per tick (micro-batch) when ``burstiness`` is 0.
    mean_batch_size: int = 1
    #: Relative weights of the three query classes.
    chain_weight: float = 1.0
    star_weight: float = 1.0
    cycle_weight: float = 1.0
    #: Query sizes are uniform in ``[mean - spread, mean + spread]``.
    query_length_mean: int = 3
    query_length_spread: int = 1
    #: Fraction of the label alphabet a query's edges draw from (low =
    #: every query concentrated on the same few hot labels).
    label_selectivity: float = 1.0
    #: Probability that a query vertex is pinned to a literal identifier.
    literal_ratio: float = 0.2
    #: Probability per tick of one subscribe/unsubscribe churn event.
    subscription_churn: float = 0.0
    #: One-line description shown by ``repro-bench --list-workloads``.
    description: str = ""

    def __post_init__(self) -> None:
        if self.num_updates < 1:
            raise BenchmarkError("num_updates must be positive")
        if self.num_queries < 1:
            raise BenchmarkError("num_queries must be positive")
        if self.num_vertices < 2:
            raise BenchmarkError("num_vertices must be at least 2")
        if self.num_labels < 1:
            raise BenchmarkError("num_labels must be positive")
        if not 0.0 <= self.delete_ratio <= 0.9:
            raise BenchmarkError("delete_ratio must lie in [0, 0.9]")
        if self.skew < 0.0:
            raise BenchmarkError("skew must not be negative")
        if not 0.0 <= self.burstiness < 1.0:
            raise BenchmarkError("burstiness must lie in [0, 1)")
        if self.mean_batch_size < 1:
            raise BenchmarkError("mean_batch_size must be at least 1")
        weights = (self.chain_weight, self.star_weight, self.cycle_weight)
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise BenchmarkError("query shape weights must be non-negative and not all zero")
        if self.query_length_mean < 1:
            raise BenchmarkError("query_length_mean must be at least 1")
        if self.query_length_spread < 0:
            raise BenchmarkError("query_length_spread must not be negative")
        if not 0.0 < self.label_selectivity <= 1.0:
            raise BenchmarkError("label_selectivity must lie in (0, 1]")
        if not 0.0 <= self.literal_ratio <= 1.0:
            raise BenchmarkError("literal_ratio must lie in [0, 1]")
        if not 0.0 <= self.subscription_churn <= 1.0:
            raise BenchmarkError("subscription_churn must lie in [0, 1]")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def scaled(self, scale: float) -> "WorkloadSpec":
        """Copy of this spec with stream/query/vertex sizes rescaled.

        The same floors as :class:`~repro.bench.configs.ExperimentConfig`
        apply so smoke scales stay meaningful.
        """
        if scale <= 0:
            raise BenchmarkError("scale must be positive")
        return replace(
            self,
            num_updates=max(200, int(self.num_updates * scale)),
            num_queries=max(10, int(self.num_queries * scale)),
            num_vertices=max(40, int(self.num_vertices * scale)),
        )

    def with_overrides(self, **overrides) -> "WorkloadSpec":
        """Copy of this spec with arbitrary field overrides."""
        return replace(self, **overrides)

    def describe(self) -> Dict[str, object]:
        """Flat description used in reports and BENCH sections."""
        return {
            "name": self.name,
            "seed": self.seed,
            "updates": self.num_updates,
            "queries": self.num_queries,
            "vertices": self.num_vertices,
            "labels": self.num_labels,
            "delete_ratio": self.delete_ratio,
            "skew": self.skew,
            "burstiness": self.burstiness,
            "mean_batch_size": self.mean_batch_size,
            "shape_weights": [self.chain_weight, self.star_weight, self.cycle_weight],
            "query_length": [
                max(1, self.query_length_mean - self.query_length_spread),
                self.query_length_mean + self.query_length_spread,
            ],
            "label_selectivity": self.label_selectivity,
            "literal_ratio": self.literal_ratio,
            "subscription_churn": self.subscription_churn,
        }


@dataclass(frozen=True)
class ChurnEvent:
    """One mid-stream subscription change, anchored to a tick index.

    ``action`` is ``"subscribe"`` or ``"unsubscribe"``; the event applies
    *after* tick ``tick`` has been flushed.
    """

    tick: int
    action: str
    query_id: str


@dataclass
class SyntheticWorkload:
    """A generated workload: stream + tick plan + queries + churn plan."""

    spec: WorkloadSpec
    stream: GraphStream
    #: Updates per tick; sums to ``len(stream)``.
    batches: Tuple[int, ...]
    queries: List[QueryGraphPattern]
    churn: Tuple[ChurnEvent, ...] = ()

    @property
    def num_ticks(self) -> int:
        """Number of micro-batches the stream replays in."""
        return len(self.batches)

    def iter_ticks(self) -> Iterator[List[Update]]:
        """Yield the stream tick by tick, following the batch plan."""
        updates = list(self.stream)
        position = 0
        for size in self.batches:
            yield updates[position : position + size]
            position += size

    def churn_at(self, tick: int) -> List[ChurnEvent]:
        """The churn events that apply after ``tick`` (usually 0 or 1)."""
        return [event for event in self.churn if event.tick == tick]

    # ------------------------------------------------------------------
    # Canonical serialisation
    # ------------------------------------------------------------------
    def serialize(self) -> str:
        """Canonical JSON of the whole workload (the determinism surface)."""
        payload = {
            "spec": self.spec.describe(),
            "updates": [
                [
                    "+" if update.is_addition else "-",
                    update.edge.label,
                    update.edge.source,
                    update.edge.target,
                ]
                for update in self.stream
            ],
            "batches": list(self.batches),
            "queries": [
                [
                    pattern.query_id,
                    [
                        [edge.label, str(edge.source), str(edge.target)]
                        for edge in pattern.edges
                    ],
                ]
                for pattern in self.queries
            ],
            "churn": [
                [event.tick, event.action, event.query_id] for event in self.churn
            ],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def fingerprint(self) -> str:
        """SHA-256 of the canonical serialisation (pinned by tests)."""
        return hashlib.sha256(self.serialize().encode("utf-8")).hexdigest()

    def describe(self) -> Dict[str, object]:
        """Summary dictionary used in reports."""
        stats = self.stream.statistics()
        return {
            **self.spec.describe(),
            "ticks": self.num_ticks,
            "additions": stats.num_additions,
            "deletions": stats.num_deletions,
            "distinct_vertices": stats.num_vertices,
            "churn_events": len(self.churn),
            "fingerprint": self.fingerprint()[:16],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SyntheticWorkload({self.spec.name!r}, updates={len(self.stream)}, "
            f"ticks={self.num_ticks}, queries={len(self.queries)})"
        )


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
def _generate_stream(spec: WorkloadSpec, rng: random.Random) -> Tuple[List[Update], List[int]]:
    """Sample the update stream tick by tick, recording the tick plan.

    Deletions target a uniformly random *live* edge via swap-remove, so a
    delete always cancels exactly one earlier addition and the live-edge
    count is an invariant the tests can assert on.
    """
    vertex_sampler = _ZipfSampler(spec.num_vertices, spec.skew)
    updates: List[Update] = []
    batches: List[int] = []
    live: List[Tuple[str, str, str]] = []
    while len(updates) < spec.num_updates:
        if spec.burstiness > 0.0 and rng.random() < spec.burstiness:
            size = spec.mean_batch_size * (2 + _rand_index(rng, 9))
        else:
            size = 1 + _rand_index(rng, spec.mean_batch_size)
        size = min(size, spec.num_updates - len(updates))
        batches.append(size)
        for _ in range(size):
            if live and rng.random() < spec.delete_ratio:
                victim = _rand_index(rng, len(live))
                label, source, target = live[victim]
                live[victim] = live[-1]
                live.pop()
                updates.append(delete(label, source, target))
            else:
                label = f"rel{_rand_index(rng, spec.num_labels)}"
                source = f"n{vertex_sampler.sample(rng)}"
                target = f"n{vertex_sampler.sample(rng)}"
                live.append((label, source, target))
                updates.append(add(label, source, target))
    return updates, batches


def _sample_query_length(spec: WorkloadSpec, rng: random.Random) -> int:
    low = max(1, spec.query_length_mean - spec.query_length_spread)
    high = spec.query_length_mean + spec.query_length_spread
    return low + _rand_index(rng, high - low + 1)


def _sample_shape(spec: WorkloadSpec, rng: random.Random) -> str:
    weights = (spec.chain_weight, spec.star_weight, spec.cycle_weight)
    target = rng.random() * sum(weights)
    cumulative = 0.0
    for shape, weight in zip(_SHAPES, weights):
        cumulative += weight
        if target < cumulative:
            return shape
    return _SHAPES[-1]


def _generate_queries(spec: WorkloadSpec, rng: random.Random) -> List[QueryGraphPattern]:
    """Sample the query database over the synthetic label/vertex alphabet."""
    label_pool = max(1, round(spec.num_labels * spec.label_selectivity))
    vertex_sampler = _ZipfSampler(spec.num_vertices, spec.skew)

    def pick_label() -> str:
        return f"rel{_rand_index(rng, label_pool)}"

    def pick_term(variable_index: int) -> str:
        if rng.random() < spec.literal_ratio:
            return f"n{vertex_sampler.sample(rng)}"
        return f"?w{variable_index}"

    queries: List[QueryGraphPattern] = []
    for index in range(spec.num_queries):
        shape = _sample_shape(spec, rng)
        length = _sample_query_length(spec, rng)
        triples: List[Tuple[str, str, str]] = []
        if shape == "chain":
            terms = [pick_term(i) for i in range(length + 1)]
            for position in range(length):
                triples.append((pick_label(), terms[position], terms[position + 1]))
        elif shape == "star":
            hub = pick_term(0)
            for position in range(length):
                leaf = pick_term(position + 1)
                if rng.random() < 0.5:
                    triples.append((pick_label(), hub, leaf))
                else:
                    triples.append((pick_label(), leaf, hub))
        else:  # cycle
            length = max(2, length)
            terms = [pick_term(i) for i in range(length)]
            for position in range(length):
                triples.append(
                    (pick_label(), terms[position], terms[(position + 1) % length])
                )
        # A pattern must contain at least one variable; re-point the first
        # endpoint when literal pinning grounded the whole sample.
        if not any(term.startswith("?") for triple in triples for term in triple[1:]):
            label, _, target = triples[0]
            triples[0] = (label, "?w0", target)
        queries.append(
            QueryGraphPattern(f"W{index}", triples, name=f"{shape}-W{index}")
        )
    return queries


def _generate_churn(
    spec: WorkloadSpec, rng: random.Random, num_ticks: int, query_ids: Sequence[str]
) -> Tuple[ChurnEvent, ...]:
    """Sample the subscribe/unsubscribe plan against the generated QDB.

    The plan is stateful so it always applies cleanly: an unsubscribe only
    targets a query the plan currently has subscribed, a subscribe only an
    unsubscribed one.  Ticks with no live subscription always subscribe.
    """
    if spec.subscription_churn <= 0.0:
        return ()
    events: List[ChurnEvent] = []
    subscribed: List[str] = []
    unsubscribed: List[str] = list(query_ids)
    for tick in range(num_ticks):
        if rng.random() >= spec.subscription_churn:
            continue
        want_unsubscribe = bool(subscribed) and rng.random() < 0.5
        if want_unsubscribe:
            index = _rand_index(rng, len(subscribed))
            query_id = subscribed.pop(index)
            unsubscribed.append(query_id)
            events.append(ChurnEvent(tick, "unsubscribe", query_id))
        elif unsubscribed:
            index = _rand_index(rng, len(unsubscribed))
            query_id = unsubscribed.pop(index)
            subscribed.append(query_id)
            events.append(ChurnEvent(tick, "subscribe", query_id))
    return tuple(events)


def generate_workload(spec: WorkloadSpec) -> SyntheticWorkload:
    """Materialise ``spec`` into a byte-identical :class:`SyntheticWorkload`.

    Stream, query set and churn plan each derive from their own child seed
    of the spec's master seed, so changing one knob family (e.g. the query
    shape weights) does not reshuffle the others.
    """
    # String seeds are hashed through sha512 by Random.seed (version 2),
    # which — unlike tuple seeds, which fall back to PYTHONHASHSEED-
    # randomised hash() — is stable across processes and Python versions.
    stream_rng = random.Random(f"workload:{spec.seed}:stream")
    query_rng = random.Random(f"workload:{spec.seed}:queries")
    churn_rng = random.Random(f"workload:{spec.seed}:churn")
    updates, batches = _generate_stream(spec, stream_rng)
    queries = _generate_queries(spec, query_rng)
    churn = _generate_churn(
        spec, churn_rng, len(batches), [pattern.query_id for pattern in queries]
    )
    return SyntheticWorkload(
        spec=spec,
        stream=GraphStream(updates, name=spec.name),
        batches=tuple(batches),
        queries=queries,
        churn=churn,
    )


# ----------------------------------------------------------------------
# The scenario matrix
# ----------------------------------------------------------------------
#: The published scenario matrix rows.  Every engine runs every scenario
#: in ``benchmarks/bench_scenarios.py`` with the transcript asserted
#: byte-identical to the string oracle; the measured cells live in the
#: ``scenario_matrix`` section of ``BENCH_hotpath.json``.
SCENARIOS: Dict[str, WorkloadSpec] = {
    "insert_heavy": WorkloadSpec(
        name="insert_heavy",
        seed=101,
        num_updates=2_400,
        num_queries=48,
        delete_ratio=0.0,
        mean_batch_size=4,
        description="append-only stream, mixed shapes (the paper's default regime)",
    ),
    "delete_heavy": WorkloadSpec(
        name="delete_heavy",
        seed=102,
        num_updates=2_400,
        num_queries=48,
        delete_ratio=0.45,
        mean_batch_size=4,
        description="45% live-edge deletions: counting maintenance + invalidation",
    ),
    "bursty": WorkloadSpec(
        name="bursty",
        seed=103,
        num_updates=2_400,
        num_queries=48,
        burstiness=0.25,
        mean_batch_size=8,
        delete_ratio=0.15,
        description="long micro-batch bursts between idle single-update ticks",
    ),
    "high_skew": WorkloadSpec(
        name="high_skew",
        seed=104,
        num_updates=2_400,
        num_queries=48,
        skew=1.2,
        delete_ratio=0.1,
        mean_batch_size=4,
        description="Zipf(1.2) hub vertices: dense adjacency buckets, star hot spots",
    ),
    "churn_heavy": WorkloadSpec(
        name="churn_heavy",
        seed=105,
        num_updates=2_000,
        num_queries=40,
        delete_ratio=0.35,
        mean_batch_size=4,
        subscription_churn=0.4,
        label_selectivity=0.5,
        description="mid-stream subscribe/unsubscribe churn over hot labels",
    ),
    "soak": WorkloadSpec(
        name="soak",
        seed=106,
        num_updates=6_000,
        num_queries=24,
        num_vertices=1_200,
        delete_ratio=0.48,
        mean_batch_size=16,
        skew=0.6,
        description="long add/delete soak: interner growth + lazy-cache convergence",
    ),
}


def scenario_names() -> List[str]:
    """Names of the published scenarios, in matrix order."""
    return list(SCENARIOS)


def scenario_spec(name: str) -> WorkloadSpec:
    """The spec of one named scenario (raises with the available options)."""
    spec = SCENARIOS.get(name)
    if spec is None:
        raise BenchmarkError(
            f"unknown workload {name!r}; available workloads: {', '.join(SCENARIOS)}"
        )
    return spec


# ----------------------------------------------------------------------
# Replay + oracle transcript
# ----------------------------------------------------------------------
@dataclass
class WorkloadRunResult:
    """Outcome of replaying one workload through one engine."""

    engine: str
    workload: str
    num_updates: int
    num_ticks: int
    indexing_time_s: float
    tick_latency: TimingStats = field(default_factory=TimingStats)
    total_seconds: float = 0.0
    deltas_delivered: int = 0
    churn_applied: int = 0
    #: Canonical serialisation of per-tick notified ids + final answers of
    #: every registered query — the byte-identity surface vs the oracle.
    transcript: str = ""
    #: ``describe()["interner"]`` of the engine after the replay, when the
    #: engine exposes one (the soak cell's growth measurement).
    interner: Optional[Dict[str, int]] = None

    @property
    def updates_per_s(self) -> float:
        """Replay throughput in updates per second."""
        if self.total_seconds <= 0:
            return 0.0
        return self.num_updates / self.total_seconds

    def transcript_digest(self) -> str:
        """SHA-256 of the transcript (what the matrix compares)."""
        return hashlib.sha256(self.transcript.encode("utf-8")).hexdigest()

    def as_dict(self) -> Dict[str, object]:
        """Flat cell dictionary for the ``scenario_matrix`` BENCH section."""
        cell: Dict[str, object] = {
            "updates_per_s": round(self.updates_per_s, 1),
            "p50_ms": round(self.tick_latency.p50_ms, 4),
            "p95_ms": round(self.tick_latency.p95_ms, 4),
            "p99_ms": round(self.tick_latency.p99_ms, 4),
            "ticks": self.num_ticks,
            "indexing_s": round(self.indexing_time_s, 4),
        }
        if self.deltas_delivered:
            cell["deltas_delivered"] = self.deltas_delivered
        if self.churn_applied:
            cell["churn_applied"] = self.churn_applied
        if self.interner is not None:
            cell["interner_live_ids"] = self.interner.get("live_ids")
        return cell


def _transcript(engine, per_tick_notified: List[List[str]]) -> str:
    """Canonical transcript: notified ids per tick + every final answer."""
    answers = {
        query_id: engine.matches_of(query_id) for query_id in sorted(engine.queries)
    }
    return json.dumps(
        {"ticks": per_tick_notified, "answers": answers},
        sort_keys=True,
        separators=(",", ":"),
    )


def run_workload(
    workload: SyntheticWorkload,
    engine_name: str,
    *,
    shards: int = 1,
    executor: str = "serial",
    policy: str = "block",
    capacity: int = 1 << 16,
) -> WorkloadRunResult:
    """Replay ``workload`` through engine ``engine_name`` and measure it.

    The stream is driven tick by tick along the workload's batch plan.
    When the spec churns subscriptions the replay runs broker-subscribed:
    each churn event creates or tears down a single-query subscription
    *between* ticks, exactly as the generated plan dictates (``policy`` /
    ``capacity`` configure those subscriptions).  The result carries the
    canonical transcript for oracle comparison.
    """
    import time

    from ..engines import create_sharded_engine

    engine = create_sharded_engine(engine_name, shards, executor=executor)
    result = WorkloadRunResult(
        engine=engine_name,
        workload=workload.spec.name,
        num_updates=len(workload.stream),
        num_ticks=workload.num_ticks,
        indexing_time_s=0.0,
    )
    try:
        start = time.perf_counter()
        engine.register_all(workload.queries)
        result.indexing_time_s = time.perf_counter() - start

        broker = None
        subscriptions: Dict[str, str] = {}  # query id -> subscription name
        if workload.churn:
            from ..pubsub.broker import SubscriptionBroker

            broker = SubscriptionBroker(engine, default_policy=policy, default_capacity=capacity)

        per_tick_notified: List[List[str]] = []
        replay_start = time.perf_counter()
        for tick_index, chunk in enumerate(workload.iter_ticks()):
            tick_start = time.perf_counter()
            if broker is not None:
                tick = broker.on_batch(chunk)
                notified = tick.notified
                result.deltas_delivered += tick.delivered
            else:
                notified = engine.on_batch(chunk)
            result.tick_latency.record(time.perf_counter() - tick_start)
            per_tick_notified.append(sorted(notified))
            if broker is not None:
                for event in workload.churn_at(tick_index):
                    result.churn_applied += 1
                    if event.action == "subscribe":
                        name = f"churn-{event.query_id}-{tick_index}"
                        broker.subscribe(name, [event.query_id])
                        subscriptions[event.query_id] = name
                    else:
                        name = subscriptions.pop(event.query_id, None)
                        if name is not None:
                            broker.unsubscribe(name)
        result.total_seconds = time.perf_counter() - replay_start
        result.transcript = _transcript(engine, per_tick_notified)
        description = engine.describe()
        interner = description.get("interner")
        if isinstance(interner, dict):
            result.interner = dict(interner)
    finally:
        if hasattr(engine, "close"):
            engine.close()
    return result
