"""Benchmark harness regenerating every figure of the paper's evaluation."""

from .configs import (
    DEFAULT_BENCH_SCALE,
    ExperimentConfig,
    bench_scale_from_env,
)
from .experiments import (
    EXPERIMENTS,
    ExperimentResult,
    SeriesPoint,
    build_stream,
    build_workload,
    experiment_ids,
    run_experiment,
)
from .figures import FIGURES, FigureSpec
from .runner import main, render_experiment
from .workloads import (
    SCENARIOS,
    ChurnEvent,
    SyntheticWorkload,
    WorkloadRunResult,
    WorkloadSpec,
    generate_workload,
    run_workload,
    scenario_names,
    scenario_spec,
)

__all__ = [
    "SCENARIOS",
    "ChurnEvent",
    "SyntheticWorkload",
    "WorkloadRunResult",
    "WorkloadSpec",
    "generate_workload",
    "run_workload",
    "scenario_names",
    "scenario_spec",
    "ExperimentConfig",
    "DEFAULT_BENCH_SCALE",
    "bench_scale_from_env",
    "EXPERIMENTS",
    "ExperimentResult",
    "SeriesPoint",
    "experiment_ids",
    "run_experiment",
    "build_stream",
    "build_workload",
    "FIGURES",
    "FigureSpec",
    "render_experiment",
    "main",
]
