"""TAXI-like ride stream (substitute for the DEBS 2015 NYC taxi dataset).

The original dataset contains 160M+ taxi rides with medallion, hack license,
pickup/drop-off location, payment type and fare information.  The graph
derived from it in the paper connects rides to the entities involved.  This
generator produces seeded synthetic rides over a grid of city zones with a
skewed popularity distribution, yielding an update stream with several edge
labels and moderate vertex reuse — the structural regime of the paper's NYC
experiment (Fig. 14a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..graph.elements import Update
from ..graph.errors import DatasetError
from .base import DatasetConfig, StreamGenerator, ZipfSampler

__all__ = ["TaxiConfig", "TaxiGenerator"]

_PAYMENT_TYPES = ("cash", "card", "voucher")
_RATE_CODES = ("standard", "jfk", "newark", "negotiated")


@dataclass(frozen=True)
class TaxiConfig(DatasetConfig):
    """Size knobs of the synthetic taxi network."""

    num_taxis: int = 400
    num_drivers: int = 600
    grid_size: int = 12
    zone_skew: float = 0.9

    def __post_init__(self) -> None:
        super().__post_init__()
        for name in ("num_taxis", "num_drivers", "grid_size"):
            if getattr(self, name) <= 0:
                raise DatasetError(f"{name} must be positive")


class TaxiGenerator(StreamGenerator):
    """Generate a taxi-ride update stream."""

    dataset_name = "taxi"

    def __init__(self, config: TaxiConfig | None = None) -> None:
        super().__init__(config or TaxiConfig())
        self.config: TaxiConfig
        cfg = self.config
        self._taxis = [f"taxi{i}" for i in range(cfg.num_taxis)]
        self._drivers = [f"driver{i}" for i in range(cfg.num_drivers)]
        self._zones = [
            f"zone_{x}_{y}" for x in range(cfg.grid_size) for y in range(cfg.grid_size)
        ]
        self._zone_sampler = ZipfSampler(len(self._zones), cfg.zone_skew, self._rng)
        self._taxi_sampler = ZipfSampler(cfg.num_taxis, cfg.zone_skew, self._rng)
        self._next_ride = 0

    def updates(self) -> Iterator[Update]:
        while True:
            yield from self._emit_ride()

    def _emit_ride(self) -> Iterator[Update]:
        ride = f"ride{self._next_ride}"
        self._next_ride += 1
        taxi = self._taxis[self._taxi_sampler.sample()]
        driver = self._choice(self._drivers)
        pickup = self._zones[self._zone_sampler.sample()]
        dropoff = self._zones[self._zone_sampler.sample()]
        yield self._edge("performedBy", ride, taxi)
        yield self._edge("drivenBy", ride, driver)
        yield self._edge("pickupAt", ride, pickup)
        yield self._edge("dropoffAt", ride, dropoff)
        yield self._edge("paidWith", ride, self._choice(_PAYMENT_TYPES))
        if self._rng.random() < 0.25:
            yield self._edge("ratedAs", ride, self._choice(_RATE_CODES))
        if self._rng.random() < 0.15:
            # Occasional shift hand-over links drivers operating the same taxi.
            other = self._choice(self._drivers)
            if other != driver:
                yield self._edge("sharesShiftWith", driver, other)
