"""Synthetic dataset generators substituting the paper's three workloads."""

from .base import DatasetConfig, StreamGenerator, ZipfSampler
from .biogrid import BioGridConfig, BioGridGenerator
from .snb import SNBConfig, SNBGenerator
from .taxi import TaxiConfig, TaxiGenerator

__all__ = [
    "DatasetConfig",
    "StreamGenerator",
    "ZipfSampler",
    "SNBConfig",
    "SNBGenerator",
    "TaxiConfig",
    "TaxiGenerator",
    "BioGridConfig",
    "BioGridGenerator",
]

#: Dataset name -> generator class, used by the benchmark harness.
DATASET_GENERATORS = {
    "snb": SNBGenerator,
    "taxi": TaxiGenerator,
    "biogrid": BioGridGenerator,
}
