"""Common machinery for the synthetic dataset generators.

The paper evaluates on three datasets: the LDBC Social Network Benchmark
(synthetic), the DEBS 2015 NYC taxi rides (real), and BioGRID protein
interactions (real).  None of the real dumps are redistributable or
available offline, so each dataset is substituted by a seeded generator that
produces an update stream with the same *structural characteristics* the
evaluation relies on (edge-label alphabet, skew, vertex reuse); DESIGN.md
documents each substitution.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence

from ..graph.elements import Update, add
from ..graph.errors import DatasetError
from ..graph.stream import GraphStream

__all__ = ["DatasetConfig", "StreamGenerator", "ZipfSampler"]


@dataclass(frozen=True)
class DatasetConfig:
    """Size and seed knobs shared by every generator."""

    num_updates: int = 10_000
    seed: int = 13

    def __post_init__(self) -> None:
        if self.num_updates <= 0:
            raise DatasetError("num_updates must be positive")


class ZipfSampler:
    """Sample integers in ``[0, n)`` with a Zipf-like (power-law) skew.

    Real activity streams (posts per user, rides per taxi, interactions per
    protein) are heavily skewed; a simple rank-based power law reproduces
    that without scipy-level machinery on the hot path.
    """

    def __init__(self, population: int, exponent: float, rng: random.Random) -> None:
        if population <= 0:
            raise DatasetError("population must be positive")
        if exponent < 0:
            raise DatasetError("exponent must be non-negative")
        self._population = population
        self._rng = rng
        weights = [1.0 / (rank + 1) ** exponent for rank in range(population)]
        total = sum(weights)
        self._cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)

    def sample(self) -> int:
        """Draw one index."""
        point = self._rng.random()
        # Binary search over the cumulative distribution.
        low, high = 0, self._population - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative[mid] < point:
                low = mid + 1
            else:
                high = mid
        return low


class StreamGenerator(abc.ABC):
    """Base class: a seeded producer of :class:`GraphStream` objects."""

    #: Human-readable dataset name (used in reports and stream names).
    dataset_name: str = "dataset"

    def __init__(self, config: DatasetConfig | None = None) -> None:
        self.config = config or DatasetConfig()
        self._rng = random.Random(self.config.seed)

    @abc.abstractmethod
    def updates(self) -> Iterator[Update]:
        """Yield the update stream (additions in arrival order)."""

    def stream(self) -> GraphStream:
        """Materialise the configured number of updates into a stream."""
        produced: List[Update] = []
        for update in self.updates():
            produced.append(update)
            if len(produced) >= self.config.num_updates:
                break
        if not produced:
            raise DatasetError(f"{self.dataset_name} generator produced no updates")
        return GraphStream(produced, name=self.dataset_name)

    # ------------------------------------------------------------------
    # Helpers shared by the concrete generators
    # ------------------------------------------------------------------
    def _choice(self, values: Sequence[str]) -> str:
        return values[self._rng.randrange(len(values))]

    @staticmethod
    def _edge(label: str, source: str, target: str) -> Update:
        return add(label, source, target)
