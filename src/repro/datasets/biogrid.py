"""BioGRID-like protein-interaction stream (substitute for the BioGRID dump).

BioGRID records physical and genetic interactions between proteins.  As the
paper stresses, the derived graph has a *single* vertex type (protein) and a
*single* edge label (``interacts``), so **every** update affects the whole
query database — it is the stress test of the evaluation (Fig. 14b/14c).
The generator reproduces that regime with a preferential-attachment style
topology: a few hub proteins accumulate most interactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..graph.elements import Update
from ..graph.errors import DatasetError
from .base import DatasetConfig, StreamGenerator

__all__ = ["BioGridConfig", "BioGridGenerator"]


@dataclass(frozen=True)
class BioGridConfig(DatasetConfig):
    """Size knobs of the synthetic interaction network."""

    num_proteins: int = 800
    preferential_attachment: float = 0.7
    interaction_label: str = "interacts"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_proteins <= 1:
            raise DatasetError("num_proteins must be at least 2")
        if not 0.0 <= self.preferential_attachment <= 1.0:
            raise DatasetError("preferential_attachment must lie in [0, 1]")


class BioGridGenerator(StreamGenerator):
    """Generate a single-label protein-interaction stream."""

    dataset_name = "biogrid"

    def __init__(self, config: BioGridConfig | None = None) -> None:
        super().__init__(config or BioGridConfig())
        self.config: BioGridConfig
        self._proteins = [f"protein{i}" for i in range(self.config.num_proteins)]
        # Endpoint pool for preferential attachment: previously used endpoints
        # are re-drawn with probability ``preferential_attachment``.
        self._endpoint_pool: List[str] = []

    def updates(self) -> Iterator[Update]:
        label = self.config.interaction_label
        while True:
            source = self._sample_protein()
            target = self._sample_protein()
            if source == target:
                target = self._choice(self._proteins)
            self._endpoint_pool.append(source)
            self._endpoint_pool.append(target)
            yield self._edge(label, source, target)

    def _sample_protein(self) -> str:
        reuse = (
            self._endpoint_pool
            and self._rng.random() < self.config.preferential_attachment
        )
        if reuse:
            return self._choice(self._endpoint_pool)
        return self._choice(self._proteins)
