"""SNB-like social-network activity stream (substitute for LDBC SNB).

The LDBC Social Network Benchmark models the evolution of a social network
through user activity: account creation, friendships, forum moderation,
posts, comments, likes and check-ins.  This generator produces a seeded
stream with the same edge-label alphabet used throughout the paper's
examples (``knows``, ``hasModerator``, ``posted``, ``replyOf``,
``containedIn``, ``hasCreator``, ``likes``, ``checksIn``, ``hasTag``,
``hasInterest``) and with power-law activity per person, so queries over the
stream exercise the same index/sharing behaviour as the original benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List

from ..graph.elements import Update
from ..graph.errors import DatasetError
from .base import DatasetConfig, StreamGenerator, ZipfSampler

__all__ = ["SNBConfig", "SNBGenerator"]

#: Relative frequency of each activity type, loosely following the SNB
#: interactive workload mix (content creation dominates, friendship and
#: structural edges are rarer).
_ACTIVITY_MIX = (
    ("post", 0.30),
    ("comment", 0.22),
    ("like", 0.18),
    ("friendship", 0.10),
    ("checkin", 0.08),
    ("forum", 0.06),
    ("tag", 0.04),
    ("interest", 0.02),
)


@dataclass(frozen=True)
class SNBConfig(DatasetConfig):
    """Size knobs of the synthetic social network."""

    num_persons: int = 500
    num_forums: int = 60
    num_places: int = 40
    num_tags: int = 50
    activity_skew: float = 0.8

    def __post_init__(self) -> None:
        super().__post_init__()
        for name in ("num_persons", "num_forums", "num_places", "num_tags"):
            if getattr(self, name) <= 0:
                raise DatasetError(f"{name} must be positive")


class SNBGenerator(StreamGenerator):
    """Generate an SNB-like activity stream of edge additions."""

    dataset_name = "snb"

    def __init__(self, config: SNBConfig | None = None) -> None:
        super().__init__(config or SNBConfig())
        self.config: SNBConfig
        cfg = self.config
        self._persons = [f"person{i}" for i in range(cfg.num_persons)]
        self._forums = [f"forum{i}" for i in range(cfg.num_forums)]
        self._places = [f"place{i}" for i in range(cfg.num_places)]
        self._tags = [f"tag{i}" for i in range(cfg.num_tags)]
        self._person_sampler = ZipfSampler(cfg.num_persons, cfg.activity_skew, self._rng)
        self._forum_sampler = ZipfSampler(cfg.num_forums, cfg.activity_skew, self._rng)
        self._posts: List[str] = []
        self._comments: List[str] = []
        self._next_post = 0
        self._next_comment = 0
        weights = [weight for _, weight in _ACTIVITY_MIX]
        self._activities = [name for name, _ in _ACTIVITY_MIX]
        self._weights = weights

    # ------------------------------------------------------------------
    # Stream production
    # ------------------------------------------------------------------
    def updates(self) -> Iterator[Update]:
        # Seed the network with a moderator per forum so content activities
        # always have a structural context to attach to.
        for index, forum in enumerate(self._forums):
            moderator = self._persons[index % len(self._persons)]
            yield self._edge("hasModerator", forum, moderator)
        while True:
            activity = self._rng.choices(self._activities, weights=self._weights, k=1)[0]
            yield from self._emit(activity)

    def _emit(self, activity: str) -> Iterator[Update]:
        if activity == "post":
            yield from self._emit_post()
        elif activity == "comment":
            yield from self._emit_comment()
        elif activity == "like":
            yield from self._emit_like()
        elif activity == "friendship":
            yield from self._emit_friendship()
        elif activity == "checkin":
            yield from self._emit_checkin()
        elif activity == "forum":
            yield from self._emit_forum_membership()
        elif activity == "tag":
            yield from self._emit_tagging()
        else:
            yield from self._emit_interest()

    # ------------------------------------------------------------------
    # Individual activities
    # ------------------------------------------------------------------
    def _emit_post(self) -> Iterator[Update]:
        person = self._sample_person()
        forum = self._sample_forum()
        post = f"post{self._next_post}"
        self._next_post += 1
        self._posts.append(post)
        yield self._edge("posted", person, post)
        yield self._edge("containedIn", post, forum)
        yield self._edge("hasCreator", post, person)

    def _emit_comment(self) -> Iterator[Update]:
        if not self._posts:
            yield from self._emit_post()
            return
        person = self._sample_person()
        parent = self._choice(self._posts)
        comment = f"comment{self._next_comment}"
        self._next_comment += 1
        self._comments.append(comment)
        yield self._edge("posted", person, comment)
        yield self._edge("replyOf", comment, parent)

    def _emit_like(self) -> Iterator[Update]:
        content = self._posts + self._comments
        if not content:
            yield from self._emit_post()
            return
        person = self._sample_person()
        yield self._edge("likes", person, self._choice(content))

    def _emit_friendship(self) -> Iterator[Update]:
        left = self._sample_person()
        right = self._sample_person()
        if left == right:
            right = self._choice(self._persons)
        yield self._edge("knows", left, right)

    def _emit_checkin(self) -> Iterator[Update]:
        person = self._sample_person()
        yield self._edge("checksIn", person, self._choice(self._places))

    def _emit_forum_membership(self) -> Iterator[Update]:
        person = self._sample_person()
        yield self._edge("memberOf", person, self._sample_forum())

    def _emit_tagging(self) -> Iterator[Update]:
        if not self._posts:
            yield from self._emit_post()
            return
        yield self._edge("hasTag", self._choice(self._posts), self._choice(self._tags))

    def _emit_interest(self) -> Iterator[Update]:
        person = self._sample_person()
        yield self._edge("hasInterest", person, self._choice(self._tags))

    # ------------------------------------------------------------------
    # Sampling helpers
    # ------------------------------------------------------------------
    def _sample_person(self) -> str:
        return self._persons[self._person_sampler.sample()]

    def _sample_forum(self) -> str:
        return self._forums[self._forum_sampler.sample()]
