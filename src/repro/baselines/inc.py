"""INC / INC+: the incremental inverted-index baselines (paper Section 5.2).

INC reuses INV's inverted indexes but changes how the joins along a covering
path are executed: instead of re-materializing the whole path from its base
views, the path join is *seeded with the triggering update* and expanded
left and right from the position the update matched.  Only when a query has
several covering paths do the unaffected paths still require full
materialization for the final cross-path join.

INC+ (the re-differentiated ``+`` tier) is INC plus answer materialisation,
exactly like INV+: polled queries' answer sets are cached, patched on
additions with the delta bindings the notification decision computes, and
marked dirty by deletions (refreshed lazily at the next poll).

Both tiers inherit INV's :class:`~repro.core.engine.BatchReport`
production: the per-batch affected-query set comes off the shared
``edgeInd`` (every generalised key of every query is indexed there, so the
set is complete for the update-seeded joins too).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set

from ..graph.interning import VertexInterner
from ..matching.plans import PathPlan
from ..matching.relation import Relation, Row, extend_path_rows
from ..query.terms import EdgeKey
from .inv import INVEngine

__all__ = ["INCEngine", "INCPlusEngine"]


class INCEngine(INVEngine):
    """Inverted-index baseline with update-seeded (incremental) path joins."""

    name = "INC"

    # ------------------------------------------------------------------
    # Answering phase
    # ------------------------------------------------------------------
    def _delta_bindings(
        self, query_id: str, new_rows_by_key: Mapping[EdgeKey, Iterable[Row]]
    ) -> Relation | None:
        """Delta bindings via update-seeded expansion (no full path joins)."""
        plan = self._plans[query_id]
        if any(not self._views.view(key) for key in plan.distinct_keys()):
            return None

        deltas: Dict[int, Set[Row]] = {}
        for key, new_rows in new_rows_by_key.items():
            for path_index, positions in plan.key_occurrences.get(key, ()):
                path_plan = plan.path_plans[path_index]
                rows: Set[Row] = set()
                for position in positions:
                    for new_row in new_rows:
                        rows.update(self._expand_from_update(path_plan, position, new_row))
                if rows:
                    deltas.setdefault(path_index, set()).update(rows)
        if not deltas:
            return None

        # Paths untouched by the update still need their full relation for
        # the final cross-path join; when several paths are affected their
        # full relations are needed as well (delta-A joins full-B and vice
        # versa).
        full_rows: List[Set[Row]] = []
        for path_index, path_plan in enumerate(plan.path_plans):
            needs_full = path_index not in deltas or len(deltas) > 1
            if needs_full:
                rows = self._materialize_path(path_plan)
                if not rows:
                    return None
                full_rows.append(rows)
            else:
                full_rows.append(set())

        return plan.evaluate_delta(
            deltas,
            full_rows,
            injective=self.injective,
        )

    def _expand_from_update(self, path_plan: PathPlan, position: int, new_row: Row) -> Set[Row]:
        """Positional rows of the path that use ``new_row`` at edge ``position``.

        Starting from the two positions covered by the update tuple, the
        partial row is expanded to the right (joining each subsequent edge
        view on the running endpoint) and then to the left (joining each
        preceding edge view backwards), exactly the "use only the update"
        strategy the paper describes for INC.
        """
        keys = path_plan.key_sequence
        partial_rows: List[Row] = [new_row]
        for key in keys[position + 1 :]:
            if not partial_rows:
                return set()
            partial_rows = extend_path_rows(
                partial_rows, self._views.view(key), direction="forward"
            )
        for key in reversed(keys[:position]):
            if not partial_rows:
                return set()
            partial_rows = extend_path_rows(
                partial_rows, self._views.view(key), direction="backward"
            )
        return set(partial_rows)


class INCPlusEngine(INCEngine):
    """INC+ — INC with answer materialisation for polled queries.

    Same caching contract as INV+: exact union patches on additions,
    dirty-marking on deletions with poll-time refresh, O(answer-set) polls
    of stable queries.
    """

    name = "INC+"

    def __init__(
        self, *, injective: bool = False, interner: VertexInterner | None = None
    ) -> None:
        super().__init__(materialize_answers=True, injective=injective, interner=interner)
