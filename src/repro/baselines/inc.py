"""INC / INC+: the incremental inverted-index baselines (paper Section 5.2).

INC reuses INV's inverted indexes but changes how the joins along a covering
path are executed: instead of re-materializing the whole path from its base
views, the path join is *seeded with the triggering update* and expanded
left and right from the position the update matched.  Only when a query has
several covering paths do the unaffected paths still require full
materialization for the final cross-path join.

INC+ additionally caches the hash-join build structures, like TRIC+/INV+.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Set

from ..graph.interning import VertexInterner
from ..matching.plans import PathPlan, QueryEvaluationPlan
from ..matching.relation import Row, extend_path_rows
from ..query.terms import EdgeKey
from .inv import INVEngine

__all__ = ["INCEngine", "INCPlusEngine"]


class INCEngine(INVEngine):
    """Inverted-index baseline with update-seeded (incremental) path joins."""

    name = "INC"

    # ------------------------------------------------------------------
    # Answering phase
    # ------------------------------------------------------------------
    def _answer_query(self, query_id: str, new_rows_by_key: Mapping[EdgeKey, Iterable[Row]]) -> bool:
        plan = self._plans[query_id]
        if any(not self._views.view(key) for key in plan.distinct_keys()):
            return False

        deltas: Dict[int, Set[Row]] = {}
        for key, new_rows in new_rows_by_key.items():
            for path_index, positions in plan.key_occurrences.get(key, ()):
                path_plan = plan.path_plans[path_index]
                rows: Set[Row] = set()
                for position in positions:
                    for new_row in new_rows:
                        rows.update(self._expand_from_update(path_plan, position, new_row))
                if rows:
                    deltas.setdefault(path_index, set()).update(rows)
        if not deltas:
            return False

        # Paths untouched by the update still need their full relation for
        # the final cross-path join; when several paths are affected their
        # full relations are needed as well (delta-A joins full-B and vice
        # versa).
        full_rows: List[Set[Row]] = []
        for path_index, path_plan in enumerate(plan.path_plans):
            needs_full = path_index not in deltas or len(deltas) > 1
            if needs_full:
                rows = self._materialize_path(path_plan)
                if not rows:
                    return False
                full_rows.append(rows)
            else:
                full_rows.append(set())

        new_bindings = plan.evaluate_delta(
            deltas,
            full_rows,
            injective=self.injective,
        )
        return bool(new_bindings)

    def _expand_from_update(self, path_plan: PathPlan, position: int, new_row: Row) -> Set[Row]:
        """Positional rows of the path that use ``new_row`` at edge ``position``.

        Starting from the two positions covered by the update tuple, the
        partial row is expanded to the right (joining each subsequent edge
        view on the running endpoint) and then to the left (joining each
        preceding edge view backwards), exactly the "use only the update"
        strategy the paper describes for INC.
        """
        keys = path_plan.key_sequence
        partial_rows: List[Row] = [new_row]
        for key in keys[position + 1 :]:
            if not partial_rows:
                return set()
            partial_rows = extend_path_rows(
                partial_rows, self._views.view(key), direction="forward"
            )
        for key in reversed(keys[:position]):
            if not partial_rows:
                return set()
            partial_rows = extend_path_rows(
                partial_rows, self._views.view(key), direction="backward"
            )
        return set(partial_rows)


class INCPlusEngine(INCEngine):
    """INC+ — INC with cached hash-join build structures.

    Like INV+, the cached build structures are subsumed by the maintained
    adjacency indexes; the variant is kept for CLI / report compatibility.
    """

    name = "INC+"

    def __init__(
        self, *, injective: bool = False, interner: VertexInterner | None = None
    ) -> None:
        super().__init__(cache=True, injective=injective, interner=interner)
