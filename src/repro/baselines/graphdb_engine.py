"""Graph-database baseline: re-execute affected queries on an embedded store.

This reproduces the paper's third baseline (Section 5.3), which extends an
embedded Neo4j instance with auxiliary in-memory structures:

* every registered pattern is compiled to the store's declarative query
  form (the stand-in for Cypher) and kept in ``queryInd``,
* every query edge is indexed in the ``edgeInd`` inverted index,
* each stream update is applied to the store through the transaction
  manager, the affected queries are looked up in ``edgeInd``, and each one is
  re-executed **in full** against the store.

Because re-execution scans the growing store on every update, this baseline
reproduces the paper's characteristic behaviour: acceptable on small graphs,
increasingly slow as the graph grows, far behind TRIC/TRIC+ throughout.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from ..core.engine import BatchReport, ContinuousEngine
from ..graph.elements import Edge
from ..graphdb.executor import QueryExecutor
from ..graphdb.planner import QueryPlanner
from ..graphdb.query import GraphQuery, compile_pattern
from ..graphdb.store import PropertyGraphStore
from ..graphdb.transactions import TransactionManager
from ..query.pattern import QueryGraphPattern
from ..query.terms import EdgeKey, Literal, Variable, candidate_keys_for_edge
from .naive import NaiveEngine  # noqa: F401  (re-exported convenience for callers)

__all__ = ["GraphDBEngine"]

Assignment = Dict[str, str]


class GraphDBEngine(ContinuousEngine):
    """Continuous multi-query processing on top of the embedded graph database."""

    name = "GraphDB"

    def __init__(
        self,
        *,
        injective: bool = False,
        writes_per_transaction: int = 20_000,
        store: Optional[PropertyGraphStore] = None,
    ) -> None:
        super().__init__(injective=injective)
        self._store = store or PropertyGraphStore()
        self._transactions = TransactionManager(self._store, writes_per_transaction)
        self._executor = QueryExecutor(self._store, QueryPlanner(self._store))
        #: queryInd — query id -> compiled query.
        self._compiled: Dict[str, GraphQuery] = {}
        #: edgeInd — generalised edge key -> query ids using it.
        self._edge_index: Dict[EdgeKey, Set[str]] = {}
        self._patterns_by_id: Dict[str, QueryGraphPattern] = {}

    # ------------------------------------------------------------------
    # Indexing phase
    # ------------------------------------------------------------------
    def _index_query(self, pattern: QueryGraphPattern) -> None:
        compiled = compile_pattern(pattern)
        self._compiled[pattern.query_id] = compiled
        self._patterns_by_id[pattern.query_id] = pattern
        for key in pattern.distinct_edge_keys():
            self._edge_index.setdefault(key, set()).add(pattern.query_id)

    # ------------------------------------------------------------------
    # Answering phase (per-update processing is a batch of one)
    # ------------------------------------------------------------------
    def _on_addition(self, edge: Edge) -> FrozenSet[str]:
        return self._on_addition_batch([edge])

    def _on_deletion(self, edge: Edge) -> FrozenSet[str]:
        return self._on_deletion_batch([edge])

    # ------------------------------------------------------------------
    # Micro-batch processing
    # ------------------------------------------------------------------
    def _on_addition_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        """Write the whole batch to the store, then re-execute each affected
        query once per batch instead of once per update."""
        fresh: List[Edge] = []
        for edge in edges:
            was_present = self._store.has_edge(edge.label, edge.source, edge.target)
            self._transactions.write_edge_addition(edge.label, edge.source, edge.target)
            self._transactions.flush()
            if not was_present:
                fresh.append(edge)
        if not fresh:
            # Only duplicate occurrences: no new answers can exist.
            return BatchReport(affected=())
        affected: Set[str] = set()
        for edge in fresh:
            affected.update(self._affected_queries(edge))
        matched: Set[str] = set()
        for query_id in sorted(affected):
            assignments = self._executor.execute(
                self._compiled[query_id], injective=self.injective
            ).assignments
            if self._any_assignment_uses_an_edge(query_id, assignments, fresh):
                matched.add(query_id)
        return BatchReport(matched, affected=affected)

    def _on_deletion_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        """Apply the whole batch of removals, then re-check each affected
        satisfied query once per batch."""
        gone: List[Edge] = []
        for edge in edges:
            if not self._store.has_edge(edge.label, edge.source, edge.target):
                continue
            self._transactions.write_edge_removal(edge.label, edge.source, edge.target)
            self._transactions.flush()
            if not self._store.has_edge(edge.label, edge.source, edge.target):
                gone.append(edge)
        if not gone:
            return BatchReport(affected=())
        affected: Set[str] = set()
        for edge in gone:
            affected.update(self._affected_queries(edge))
        invalidated: Set[str] = set()
        for query_id in affected:
            if query_id not in self._satisfied:
                continue
            result = self._executor.execute(
                self._compiled[query_id], injective=self.injective, limit=1
            )
            if not result:
                invalidated.add(query_id)
        return BatchReport(invalidated, affected=affected)

    def _affected_queries(self, edge: Edge) -> Set[str]:
        affected: Set[str] = set()
        for key in candidate_keys_for_edge(edge):
            affected.update(self._edge_index.get(key, ()))
        return affected

    def _any_assignment_uses_an_edge(
        self, query_id: str, assignments: List[Assignment], edges: Sequence[Edge]
    ) -> bool:
        """``True`` when some answer maps a query edge onto one of ``edges``.

        One pass over the assignments: each query edge is paired up front
        with the set of ``(source, target)`` rows of the batch edges it can
        match, so the cost is |assignments| x |pattern edges| regardless of
        the batch size.
        """
        pattern = self._patterns_by_id[query_id]
        rows_by_query_edge = []
        for query_edge in pattern.edges:
            rows = {(e.source, e.target) for e in edges if query_edge.key.matches(e)}
            if rows:
                rows_by_query_edge.append((query_edge, rows))
        if not rows_by_query_edge:
            return False
        for assignment in assignments:
            for query_edge, rows in rows_by_query_edge:
                source = self._resolve(query_edge.source, assignment)
                target = self._resolve(query_edge.target, assignment)
                if (source, target) in rows:
                    return True
        return False

    @staticmethod
    def _resolve(term, assignment: Assignment) -> Optional[str]:
        if isinstance(term, Literal):
            return term.value
        if isinstance(term, Variable):
            return assignment.get(term.name)
        return None

    # ------------------------------------------------------------------
    # Answers
    # ------------------------------------------------------------------
    def matches_of(self, query_id: str) -> List[Assignment]:
        self._require_known(query_id)
        result = self._executor.execute(self._compiled[query_id], injective=self.injective)
        return sorted(result.assignments, key=lambda a: tuple(sorted(a.items())))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def store(self) -> PropertyGraphStore:
        """The underlying property-graph store (read-only use)."""
        return self._store

    @property
    def executor(self) -> QueryExecutor:
        """The query executor (exposes plan-cache counters)."""
        return self._executor

    def statistics(self) -> Dict[str, int]:
        """Store and plan-cache statistics for reports."""
        return {
            "store_vertices": self._store.num_vertices,
            "store_edges": self._store.num_edges,
            "indexed_keys": len(self._edge_index),
            "plans_built": self._executor.plans_built,
            "plan_cache_hits": self._executor.plan_cache_hits,
        }

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(self.statistics())
        return description
