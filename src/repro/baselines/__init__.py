"""Baseline engines: INV/INV+, INC/INC+, the graph-database baseline, the naive oracle."""

from .graphdb_engine import GraphDBEngine
from .inc import INCEngine, INCPlusEngine
from .inv import INVEngine, INVPlusEngine
from .naive import NaiveEngine

__all__ = [
    "INVEngine",
    "INVPlusEngine",
    "INCEngine",
    "INCPlusEngine",
    "GraphDBEngine",
    "NaiveEngine",
]
