"""INV / INV+: the inverted-index baseline engines (paper Section 5.1).

INV indexes query graph patterns at the granularity of *edges* using three
inverted indexes (``edgeInd``, ``sourceInd``, ``targetInd``).  On every
update it

1. probes ``edgeInd`` with the update's generalised keys to find the affected
   queries and discards those with an empty materialized view on any edge,
2. re-materializes every covering path of each surviving query by joining
   the base edge views along the path **from scratch** (the expensive
   "join and explore" the paper criticises), and
3. joins the path relations to produce the query answers, reporting the ones
   created by the triggering update.

INV+ (the re-differentiated ``+`` tier) is INV plus *answer
materialisation*: every polled query's answer set is cached in an
:class:`~repro.matching.answers.AnswerSetCache`, patched exactly on
additions (the delta bindings the notification decision computes anyway are
unioned in) and marked dirty by deletions (refreshed lazily at the next
poll) — so ``matches_of`` stops paying the full path re-materialization on
every poll of a stable query.  Deletion-time invalidation re-checks use the
existence-mode ``evaluate_full(limit=1)`` on both tiers — the cross-path
join stops at the first surviving witness, though this join-and-explore
baseline still pays each covering path's materialisation first.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set

from ..core.engine import BatchReport, ContinuousEngine
from ..graph.elements import Edge
from ..graph.interning import VertexInterner
from ..matching.answers import AnswerSetCache
from ..matching.plans import PathPlan, QueryEvaluationPlan, bindings_to_dicts
from ..matching.relation import Relation, Row, extend_path_rows
from ..matching.views import EdgeViewRegistry
from ..query.pattern import QueryGraphPattern
from ..query.terms import EdgeKey

__all__ = ["INVEngine", "INVPlusEngine"]


class INVEngine(ContinuousEngine):
    """Inverted-index baseline with full path re-materialization per update.

    Parameters
    ----------
    materialize_answers:
        The re-differentiated ``+`` flag: cache each polled query's answer
        set, patch it on additions, refresh it lazily after deletions (see
        the module docstring).  Off by default — the base engine
        materialises nothing and probes existence instead.
    injective:
        Require injective (isomorphism) answer semantics.
    interner:
        Vertex encoding shared with the base views.
    """

    name = "INV"

    def __init__(
        self,
        *,
        materialize_answers: bool = False,
        injective: bool = False,
        interner: VertexInterner | None = None,
    ) -> None:
        super().__init__(injective=injective)
        self.materializes_answers = materialize_answers
        self._views = EdgeViewRegistry(interner=interner)
        self._plans: Dict[str, QueryEvaluationPlan] = {}
        # query id -> cached answer relation, created lazily on the first
        # poll of that query (``None`` when materialisation is off).
        self._answers: Optional[Dict[str, AnswerSetCache]] = (
            {} if materialize_answers else None
        )
        #: edgeInd — generalised edge key -> query ids using it.
        self._edge_index: Dict[EdgeKey, Set[str]] = {}
        #: sourceInd / targetInd — vertex term (literal value or ``?var``) ->
        #: generalised keys whose source / target is that term.
        self._source_index: Dict[str, Set[EdgeKey]] = {}
        self._target_index: Dict[str, Set[EdgeKey]] = {}

    # ------------------------------------------------------------------
    # Indexing phase
    # ------------------------------------------------------------------
    def _index_query(self, pattern: QueryGraphPattern) -> None:
        plan = QueryEvaluationPlan(pattern, interner=self._views.interner)
        self._plans[pattern.query_id] = plan
        for key in plan.distinct_keys():
            self._views.register(key)
            self._edge_index.setdefault(key, set()).add(pattern.query_id)
            self._source_index.setdefault(key.source, set()).add(key)
            self._target_index.setdefault(key.target, set()).add(key)

    # ------------------------------------------------------------------
    # Answering phase
    # ------------------------------------------------------------------
    def _on_addition(self, edge: Edge) -> FrozenSet[str]:
        return self._on_addition_batch([edge])

    def _on_addition_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        """Native micro-batch addition processing.

        The expensive per-query path re-materialization is performed once
        per affected query per *batch* instead of once per update, which is
        the dominant amortization for this join-and-explore baseline.

        Returns a :class:`~repro.core.engine.BatchReport` whose ``affected``
        set comes straight off ``edgeInd``: a query's answers can only
        change when one of its generalised keys' views changed, and every
        key of every query is registered there.
        """
        new_rows_by_key = self._views.apply_additions(edges)
        if not new_rows_by_key:
            return BatchReport(affected=())
        affected = self._affected_queries(new_rows_by_key)
        matched: Set[str] = set()
        for query_id in sorted(affected):
            if self._answer_query(query_id, new_rows_by_key):
                matched.add(query_id)
        return BatchReport(matched, affected=affected)

    def _affected_queries(self, keys: Iterable[EdgeKey]) -> Set[str]:
        affected: Set[str] = set()
        for key in keys:
            affected.update(self._edge_index.get(key, ()))
        return affected

    def _answer_query(self, query_id: str, new_rows_by_key: Mapping[EdgeKey, Iterable[Row]]) -> bool:
        """Notification decision for one affected query, plus cache upkeep.

        The *delta bindings* — answers derivable using at least one new
        base tuple — decide the notification; when the query has a live
        answer cache they are also unioned into it, which keeps the cache
        exact (every answer present after a batch of additions either
        existed before or uses a new tuple).
        """
        new_bindings = self._delta_bindings(query_id, new_rows_by_key)
        if new_bindings is None or not new_bindings:
            return False
        if self._answers is not None:
            cache = self._answers.get(query_id)
            if cache is not None:
                cache.absorb_new(new_bindings)
        return True

    def _delta_bindings(
        self, query_id: str, new_rows_by_key: Mapping[EdgeKey, Iterable[Row]]
    ) -> Relation | None:
        """Answers of ``query_id`` derivable with the batch's new tuples."""
        plan = self._plans[query_id]
        # Step 1 (paper): a query is only a candidate when every one of its
        # edges has a non-empty materialized view.
        if any(not self._views.view(key) for key in plan.distinct_keys()):
            return None
        full_rows = self._materialize_paths(plan)
        if full_rows is None:
            return None
        deltas = self._path_deltas(plan, full_rows, new_rows_by_key)
        if not deltas:
            return None
        return plan.evaluate_delta(
            deltas,
            full_rows,
            injective=self.injective,
        )

    def _materialize_paths(self, plan: QueryEvaluationPlan) -> List[Set[Row]] | None:
        """Fully join the base views along every covering path of the query."""
        full_rows: List[Set[Row]] = []
        for path_plan in plan.path_plans:
            rows = self._materialize_path(path_plan)
            if not rows:
                return None
            full_rows.append(rows)
        return full_rows

    def _materialize_path(self, path_plan: PathPlan) -> Set[Row]:
        keys = path_plan.key_sequence
        rows: Set[Row] = set(self._views.view(keys[0]).rows)
        for key in keys[1:]:
            if not rows:
                return set()
            rows = set(extend_path_rows(rows, self._views.view(key)))
        return rows

    @staticmethod
    def _path_deltas(
        plan: QueryEvaluationPlan,
        full_rows: Sequence[Set[Row]],
        new_rows_by_key: Mapping[EdgeKey, Iterable[Row]],
    ) -> Dict[int, Set[Row]]:
        """Positional rows of each affected path that use a new base tuple."""
        deltas: Dict[int, Set[Row]] = {}
        for key, new_rows in new_rows_by_key.items():
            new_rows = set(new_rows)
            for path_index, positions in plan.key_occurrences.get(key, ()):
                using_edge = {
                    row
                    for row in full_rows[path_index]
                    if any((row[pos], row[pos + 1]) in new_rows for pos in positions)
                }
                if using_edge:
                    deltas.setdefault(path_index, set()).update(using_edge)
        return deltas

    def _on_deletion(self, edge: Edge) -> FrozenSet[str]:
        return self._on_deletion_batch([edge])

    def _on_deletion_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        """Native micro-batch deletion processing.

        Affected queries' answer caches are marked dirty (refreshed lazily
        at the next poll, never eagerly here), and each affected satisfied
        query is re-checked once per batch through the existence-mode
        witness probe (:meth:`has_matches`), which stops at the first
        surviving answer instead of materialising them all.
        """
        removed_by_key = self._views.apply_deletions(edges)
        if not removed_by_key:
            return BatchReport(affected=())
        affected = self._affected_queries(removed_by_key)
        invalidated: Set[str] = set()
        for query_id in affected:
            if self._answers is not None:
                cache = self._answers.get(query_id)
                if cache is not None:
                    cache.mark_dirty()
            if query_id in self._satisfied and not self.has_matches(query_id):
                invalidated.add(query_id)
        return BatchReport(invalidated, affected=affected)

    # ------------------------------------------------------------------
    # Answers
    # ------------------------------------------------------------------
    def matches_of(self, query_id: str) -> List[Dict[str, str]]:
        """Current answers of ``query_id``.

        With answer materialisation on, polls after the first are served
        from the cached answer relation — no path re-materialization, no
        cross-path join.  The base engine recomputes the full join on
        every call (the paper's join-and-explore behaviour).
        """
        self._require_known(query_id)
        if self._answers is not None:
            return bindings_to_dicts(
                self._materialized_answers(query_id), self._views.interner
            )
        return bindings_to_dicts(self._full_bindings(query_id), self._views.interner)

    def has_matches(self, query_id: str) -> bool:
        """Existence probe: clean-cache emptiness, or a first-witness search.

        A dirty cache is *not* refreshed here — deletion-time invalidation
        falls through to the ``evaluate_full(limit=1)`` backtracking
        search.  Note the probe is only witness-limited at the *cross-path
        join*: this join-and-explore baseline still materialises each
        covering path's relation first (it maintains no per-path state to
        probe incrementally, unlike TRIC's binding relations), so the
        re-check costs O(path materialisation + first witness).
        """
        self._require_known(query_id)
        if self._answers is not None:
            cache = self._answers.get(query_id)
            if cache is not None and not cache.dirty:
                return bool(cache)
        plan = self._plans[query_id]
        full_rows = self._materialize_paths(plan)
        if full_rows is None:
            return False
        return bool(plan.evaluate_full(full_rows, injective=self.injective, limit=1))

    def _full_bindings(self, query_id: str) -> Relation:
        """Fully evaluate ``query_id`` from the base views (no caches)."""
        plan = self._plans[query_id]
        full_rows = self._materialize_paths(plan)
        if full_rows is None:
            return Relation(plan.variable_names)
        return plan.evaluate_full(full_rows, injective=self.injective)

    def _materialized_answers(self, query_id: str) -> Relation:
        """The query's cached answer relation, refreshed if dirty."""
        assert self._answers is not None
        cache = self._answers.get(query_id)
        if cache is None:
            cache = AnswerSetCache(self._plans[query_id])
            self._answers[query_id] = cache
        if cache.dirty:
            cache.reset_to(self._full_bindings(query_id))
        return cache.relation

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def views(self) -> EdgeViewRegistry:
        """The base materialized views (read-only use)."""
        return self._views

    def statistics(self) -> Dict[str, int]:
        """Index statistics for reports."""
        statistics = {
            "indexed_keys": len(self._edge_index),
            "base_views": len(self._views),
            "base_view_rows": self._views.total_rows(),
            "source_terms": len(self._source_index),
            "target_terms": len(self._target_index),
        }
        if self._answers is not None:
            statistics["materialized_queries"] = len(self._answers)
            statistics["materialized_answer_rows"] = sum(
                len(cache.relation) for cache in self._answers.values()
            )
        return statistics

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(self.statistics())
        description["materialize_answers"] = self.materializes_answers
        description["interner"] = self._views.interner.stats()
        return description


class INVPlusEngine(INVEngine):
    """INV+ — INV with answer materialisation for polled queries.

    Additions patch the cached answer sets exactly (the delta bindings the
    notification decision computes are unioned in); deletions mark affected
    caches dirty, deferring the recompute — which the base engine pays on
    *every* ``matches_of`` call — to the next poll.
    """

    name = "INV+"

    def __init__(
        self, *, injective: bool = False, interner: VertexInterner | None = None
    ) -> None:
        super().__init__(materialize_answers=True, injective=injective, interner=interner)
