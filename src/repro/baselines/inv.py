"""INV / INV+: the inverted-index baseline engines (paper Section 5.1).

INV indexes query graph patterns at the granularity of *edges* using three
inverted indexes (``edgeInd``, ``sourceInd``, ``targetInd``).  On every
update it

1. probes ``edgeInd`` with the update's generalised keys to find the affected
   queries and discards those with an empty materialized view on any edge,
2. re-materializes every covering path of each surviving query by joining
   the base edge views along the path **from scratch** (the expensive
   "join and explore" the paper criticises), and
3. joins the path relations to produce the query answers, reporting the ones
   created by the triggering update.

INV+ is the same algorithm with the hash-join build structures cached and
reused across updates (paper Section 5.1, "Caching").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Set, Tuple

from ..core.engine import ContinuousEngine
from ..graph.elements import Edge
from ..graph.interning import VertexInterner
from ..matching.plans import PathPlan, QueryEvaluationPlan, bindings_to_dicts
from ..matching.relation import Row, extend_path_rows
from ..matching.views import EdgeViewRegistry
from ..query.pattern import QueryGraphPattern
from ..query.terms import EdgeKey

__all__ = ["INVEngine", "INVPlusEngine"]


class INVEngine(ContinuousEngine):
    """Inverted-index baseline with full path re-materialization per update.

    The ``cache`` flag historically enabled the INV+ cached hash-join build
    structures; those are now subsumed by the base views' maintained
    adjacency indexes (always on), so the flag only survives in
    :meth:`describe` for report compatibility.
    """

    name = "INV"

    def __init__(
        self,
        *,
        cache: bool = False,
        injective: bool = False,
        interner: VertexInterner | None = None,
    ) -> None:
        super().__init__(injective=injective)
        self.cache_enabled = cache
        self._views = EdgeViewRegistry(interner=interner)
        self._plans: Dict[str, QueryEvaluationPlan] = {}
        #: edgeInd — generalised edge key -> query ids using it.
        self._edge_index: Dict[EdgeKey, Set[str]] = {}
        #: sourceInd / targetInd — vertex term (literal value or ``?var``) ->
        #: generalised keys whose source / target is that term.
        self._source_index: Dict[str, Set[EdgeKey]] = {}
        self._target_index: Dict[str, Set[EdgeKey]] = {}

    # ------------------------------------------------------------------
    # Indexing phase
    # ------------------------------------------------------------------
    def _index_query(self, pattern: QueryGraphPattern) -> None:
        plan = QueryEvaluationPlan(pattern, interner=self._views.interner)
        self._plans[pattern.query_id] = plan
        for key in plan.distinct_keys():
            self._views.register(key)
            self._edge_index.setdefault(key, set()).add(pattern.query_id)
            self._source_index.setdefault(key.source, set()).add(key)
            self._target_index.setdefault(key.target, set()).add(key)

    # ------------------------------------------------------------------
    # Answering phase
    # ------------------------------------------------------------------
    def _on_addition(self, edge: Edge) -> FrozenSet[str]:
        return self._on_addition_batch([edge])

    def _on_addition_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        """Native micro-batch addition processing.

        The expensive per-query path re-materialization is performed once
        per affected query per *batch* instead of once per update, which is
        the dominant amortization for this join-and-explore baseline.
        """
        new_rows_by_key = self._views.apply_additions(edges)
        if not new_rows_by_key:
            return frozenset()
        affected = self._affected_queries(new_rows_by_key)
        matched: Set[str] = set()
        for query_id in sorted(affected):
            if self._answer_query(query_id, new_rows_by_key):
                matched.add(query_id)
        return frozenset(matched)

    def _affected_queries(self, keys: Iterable[EdgeKey]) -> Set[str]:
        affected: Set[str] = set()
        for key in keys:
            affected.update(self._edge_index.get(key, ()))
        return affected

    def _answer_query(self, query_id: str, new_rows_by_key: Mapping[EdgeKey, Iterable[Row]]) -> bool:
        plan = self._plans[query_id]
        # Step 1 (paper): a query is only a candidate when every one of its
        # edges has a non-empty materialized view.
        if any(not self._views.view(key) for key in plan.distinct_keys()):
            return False
        full_rows = self._materialize_paths(plan)
        if full_rows is None:
            return False
        deltas = self._path_deltas(plan, full_rows, new_rows_by_key)
        if not deltas:
            return False
        new_bindings = plan.evaluate_delta(
            deltas,
            full_rows,
            injective=self.injective,
        )
        return bool(new_bindings)

    def _materialize_paths(self, plan: QueryEvaluationPlan) -> List[Set[Row]] | None:
        """Fully join the base views along every covering path of the query."""
        full_rows: List[Set[Row]] = []
        for path_plan in plan.path_plans:
            rows = self._materialize_path(path_plan)
            if not rows:
                return None
            full_rows.append(rows)
        return full_rows

    def _materialize_path(self, path_plan: PathPlan) -> Set[Row]:
        keys = path_plan.key_sequence
        rows: Set[Row] = set(self._views.view(keys[0]).rows)
        for key in keys[1:]:
            if not rows:
                return set()
            rows = set(extend_path_rows(rows, self._views.view(key)))
        return rows

    @staticmethod
    def _path_deltas(
        plan: QueryEvaluationPlan,
        full_rows: Sequence[Set[Row]],
        new_rows_by_key: Mapping[EdgeKey, Iterable[Row]],
    ) -> Dict[int, Set[Row]]:
        """Positional rows of each affected path that use a new base tuple."""
        deltas: Dict[int, Set[Row]] = {}
        for key, new_rows in new_rows_by_key.items():
            new_rows = set(new_rows)
            for path_index, positions in plan.key_occurrences.get(key, ()):
                using_edge = {
                    row
                    for row in full_rows[path_index]
                    if any((row[pos], row[pos + 1]) in new_rows for pos in positions)
                }
                if using_edge:
                    deltas.setdefault(path_index, set()).update(using_edge)
        return deltas

    def _on_deletion(self, edge: Edge) -> FrozenSet[str]:
        return self._on_deletion_batch([edge])

    def _on_deletion_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        """Native micro-batch deletion processing.

        The join cache is *not* cleared: build tables absorb retracted rows
        by replaying the views' signed delta logs.  Each affected satisfied
        query is re-checked once per batch.
        """
        removed_by_key = self._views.apply_deletions(edges)
        if not removed_by_key:
            return frozenset()
        affected = self._affected_queries(removed_by_key)
        invalidated: Set[str] = set()
        for query_id in affected:
            if query_id in self._satisfied and not self.matches_of(query_id):
                invalidated.add(query_id)
        return frozenset(invalidated)

    # ------------------------------------------------------------------
    # Answers
    # ------------------------------------------------------------------
    def matches_of(self, query_id: str) -> List[Dict[str, str]]:
        self._require_known(query_id)
        plan = self._plans[query_id]
        full_rows = self._materialize_paths(plan)
        if full_rows is None:
            return []
        bindings = plan.evaluate_full(full_rows, injective=self.injective)
        return bindings_to_dicts(bindings, self._views.interner)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def views(self) -> EdgeViewRegistry:
        """The base materialized views (read-only use)."""
        return self._views

    def statistics(self) -> Dict[str, int]:
        """Index statistics for reports."""
        return {
            "indexed_keys": len(self._edge_index),
            "base_views": len(self._views),
            "base_view_rows": self._views.total_rows(),
            "source_terms": len(self._source_index),
            "target_terms": len(self._target_index),
        }

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(self.statistics())
        description["cache"] = self.cache_enabled
        return description


class INVPlusEngine(INVEngine):
    """INV+ — INV with cached hash-join build structures.

    With maintained adjacency indexes on every base view the build
    structures are incrementally patched for both variants, so INV+ now
    differs from INV in name only (kept for CLI / report compatibility).
    """

    name = "INV+"

    def __init__(
        self, *, injective: bool = False, interner: VertexInterner | None = None
    ) -> None:
        super().__init__(cache=True, injective=injective, interner=interner)
