"""Naive per-query re-evaluation engine.

This engine keeps the full evolving graph and, for every update, runs the
backtracking matcher for every registered query with the update edge pinned.
It performs no indexing, no clustering and no materialization, which makes
it (a) the slowest possible strategy and (b) an ideal *correctness oracle*:
its answers follow directly from the matching semantics, so every other
engine is tested for agreement against it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set

from ..core.engine import ContinuousEngine
from ..graph.elements import Edge
from ..graph.graph import Graph
from ..matching.evaluator import find_embeddings, find_new_embeddings
from ..query.pattern import QueryGraphPattern

__all__ = ["NaiveEngine"]


class NaiveEngine(ContinuousEngine):
    """Re-evaluate every query against the full graph on every update."""

    name = "Naive"

    def __init__(self, *, injective: bool = False) -> None:
        super().__init__(injective=injective)
        self._graph = Graph()

    # ------------------------------------------------------------------
    # Indexing phase (none — the naive engine stores only the pattern)
    # ------------------------------------------------------------------
    def _index_query(self, pattern: QueryGraphPattern) -> None:  # noqa: D401
        """The naive engine needs no per-query index structures."""

    # ------------------------------------------------------------------
    # Answering phase
    # ------------------------------------------------------------------
    def _on_addition(self, edge: Edge) -> FrozenSet[str]:
        already_present = self._graph.has_edge(edge)
        self._graph.add_edge(edge)
        if already_present:
            # A duplicate multigraph edge creates no new answers.
            return frozenset()
        matched: Set[str] = set()
        for query_id, pattern in self._queries.items():
            embeddings = find_new_embeddings(
                self._graph, pattern, edge, injective=self.injective, limit=1
            )
            if embeddings:
                matched.add(query_id)
        return frozenset(matched)

    def _on_deletion(self, edge: Edge) -> FrozenSet[str]:
        self._graph.remove_edge(edge)
        if self._graph.has_edge(edge):
            # Another copy of the edge remains: no answer can disappear.
            return frozenset()
        invalidated: Set[str] = set()
        for query_id in self._satisfied:
            pattern = self._queries[query_id]
            if not find_embeddings(self._graph, pattern, injective=self.injective, limit=1):
                invalidated.add(query_id)
        return frozenset(invalidated)

    # ------------------------------------------------------------------
    # Micro-batch processing
    # ------------------------------------------------------------------
    def _on_addition_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        """Apply the whole batch to the graph, then re-evaluate each query once."""
        fresh: List[Edge] = []
        for edge in edges:
            if not self._graph.has_edge(edge):
                fresh.append(edge)
            self._graph.add_edge(edge)
        if not fresh:
            return frozenset()
        matched: Set[str] = set()
        for query_id, pattern in self._queries.items():
            for edge in fresh:
                if find_new_embeddings(
                    self._graph, pattern, edge, injective=self.injective, limit=1
                ):
                    matched.add(query_id)
                    break
        return frozenset(matched)

    def _on_deletion_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        """Apply the whole batch to the graph, then re-check satisfied queries once."""
        any_gone = False
        for edge in edges:
            self._graph.remove_edge(edge)
            if not self._graph.has_edge(edge):
                any_gone = True
        if not any_gone:
            # Every deleted edge still has multigraph copies left: no answer
            # can have disappeared (mirrors the per-update early exit).
            return frozenset()
        invalidated: Set[str] = set()
        for query_id in self._satisfied:
            pattern = self._queries[query_id]
            if not find_embeddings(self._graph, pattern, injective=self.injective, limit=1):
                invalidated.add(query_id)
        return frozenset(invalidated)

    # ------------------------------------------------------------------
    # Answers
    # ------------------------------------------------------------------
    def matches_of(self, query_id: str) -> List[Dict[str, str]]:
        pattern = self._require_known(query_id)
        return sorted(
            find_embeddings(self._graph, pattern, injective=self.injective),
            key=lambda assignment: tuple(sorted(assignment.items())),
        )

    @property
    def graph(self) -> Graph:
        """The evolving graph held by the oracle (read-only use)."""
        return self._graph
