"""Per-query answer-delta derivation for the subscription broker.

A subscriber wants the *changed* answers of its queries, not the full
satisfied-set the engines report.  :class:`AnswerDeltaTracker` turns any
:class:`~repro.core.engine.ContinuousEngine` into a source of per-query
**match deltas** — the binding dictionaries that appeared or disappeared
since the last flush — through two paths:

fast path (exact, O(changed answers))
    When the engine exposes a maintained answer relation for the query
    (:meth:`~repro.core.engine.ContinuousEngine.answer_delta_source` —
    the TRIC family with ``materialize_answers``; INV+/INC+ do *not*
    qualify, their caches are not exactly maintained under deletions),
    the tracker reads the relation's *signed delta log*
    (``deltas_since``) from its last position.  The delta
    pipeline already patches that relation on every update, so a flush on
    an unchanged query costs an empty log slice, and a changed query costs
    exactly its visibility changes.  A ``uid``/``epoch`` change (lazy
    rebuild, log compaction) falls back to one set diff against the
    tracker's snapshot — never a silent reset.

slow path (exact, O(answer set))
    Engines without a maintained relation for the query (base engines,
    recompute-style caches, over-budget materialisations) are snapshot
    diffed: the tracker compares a fresh ``matches_of`` against the last
    delivered state.  This is the re-polling the fast path avoids, kept as
    the universal fallback so *every* engine can serve subscriptions.

Answers are tracked as canonical keys — ``tuple(sorted(binding.items()))``
— which is exactly the per-answer sort key of the engines' canonical
``matches_of`` order, so delivered deltas compare byte for byte across
engines and shard counts.

The tracker itself is pull-based and per-query, which is what makes the
broker's affected-aware flushing free: a query outside a batch's
:class:`~repro.core.engine.BatchReport` affected set is simply not
collected that tick — no log slice, no snapshot diff — and its positions
advance at its next collect, with nothing lost (the report's completeness
contract guarantees its answers did not change in between).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..core.engine import ContinuousEngine

__all__ = ["AnswerKey", "AnswerDeltaTracker", "canonical_key"]

#: Canonical identity of one answer: variable/vertex items sorted by name.
AnswerKey = Tuple[Tuple[str, str], ...]


def canonical_key(binding: Dict[str, str]) -> AnswerKey:
    """Canonical, hashable identity of one answer binding dictionary."""
    return tuple(sorted(binding.items()))


class _QueryState:
    """Tracking state of one watched query."""

    __slots__ = ("snapshot", "uid", "epoch", "log_position")

    def __init__(self) -> None:
        self.snapshot: Set[AnswerKey] = set()
        #: Identity of the maintained relation the log position refers to
        #: (``None`` while on the slow path).
        self.uid: int | None = None
        self.epoch: int | None = None
        self.log_position = 0


class AnswerDeltaTracker:
    """Derive per-query added/removed answer deltas from one engine."""

    def __init__(self, engine: ContinuousEngine) -> None:
        self.engine = engine
        self._states: Dict[str, _QueryState] = {}

    # ------------------------------------------------------------------
    # Watch management
    # ------------------------------------------------------------------
    @property
    def watched(self) -> FrozenSet[str]:
        """Ids of the queries currently tracked."""
        return frozenset(self._states)

    def watch(self, query_id: str) -> List[AnswerKey]:
        """Start tracking ``query_id``; returns its current answers (sorted).

        Idempotent: watching an already tracked query returns the tracked
        snapshot without touching positions.
        """
        state = self._states.get(query_id)
        if state is None:
            self._states[query_id] = _QueryState()
            added, _ = self.collect(query_id)
            return added
        return sorted(state.snapshot)

    def unwatch(self, query_id: str) -> None:
        """Stop tracking ``query_id`` (a re-watch starts from a fresh sync)."""
        self._states.pop(query_id, None)

    def snapshot(self, query_id: str) -> List[AnswerKey]:
        """The last synced answers of a watched query (sorted keys)."""
        return sorted(self._states[query_id].snapshot)

    # ------------------------------------------------------------------
    # Delta derivation
    # ------------------------------------------------------------------
    def collect(self, query_id: str) -> Tuple[List[AnswerKey], List[AnswerKey]]:
        """Answers of ``query_id`` added/removed since the last collect.

        Returns sorted ``(added, removed)`` canonical keys and advances the
        tracked snapshot, so consecutive collects compose: replaying every
        delta ever returned reconstructs the engine's current ``matches_of``
        set exactly.
        """
        state = self._states[query_id]
        source = self.engine.answer_delta_source(query_id)
        if source is not None:
            relation, interner = source
            schema = relation.schema
            if state.uid == relation.uid and state.epoch == relation.epoch:
                return self._collect_from_log(state, relation, schema, interner)
            # New or wholesale-replaced relation: one set diff resync.
            current = {
                self._decode(schema, interner, row) for row in relation.rows
            }
            state.uid = relation.uid
            state.epoch = relation.epoch
            state.log_position = relation.log_length
        else:
            current = {canonical_key(b) for b in self.engine.matches_of(query_id)}
            state.uid = state.epoch = None
            state.log_position = 0
        added = current - state.snapshot
        removed = state.snapshot - current
        state.snapshot = current
        return sorted(added), sorted(removed)

    def _collect_from_log(self, state, relation, schema, interner):
        """Fast path: replay the maintained relation's signed delta log.

        Visibility changes are netted against the snapshot, so a row that
        appeared and disappeared within one window (or vice versa) cancels
        out instead of surfacing as a spurious delta pair.
        """
        deltas = relation.deltas_since(state.log_position)
        state.log_position = relation.log_length
        if not deltas:
            return [], []
        added: Set[AnswerKey] = set()
        removed: Set[AnswerKey] = set()
        snapshot = state.snapshot
        for row, sign in deltas:
            key = self._decode(schema, interner, row)
            if sign > 0:
                if key in removed:
                    removed.discard(key)
                elif key not in snapshot:
                    added.add(key)
            else:
                if key in added:
                    added.discard(key)
                elif key in snapshot:
                    removed.add(key)
        snapshot -= removed
        snapshot |= added
        return sorted(added), sorted(removed)

    @staticmethod
    def _decode(schema, interner, row) -> AnswerKey:
        """Decode one interned answer row to its canonical key."""
        return tuple(sorted(zip(schema, interner.decode_row(row))))
