"""``repro-serve``: replay a dataset while streaming subscribed match deltas.

The serving counterpart of ``repro-bench``: build one of the synthetic
dataset streams, register a sampled query database on an engine (optionally
sharded), subscribe a listener to ``k`` of the ``n`` registered queries,
and replay the stream — every added/removed answer of the subscribed
queries is printed to stdout as one JSON object per delta, and a summary
(engine/shard/subscription metrics) goes to stderr.

Usage (also available as ``python -m repro.pubsub.serve``)::

    repro-serve --dataset snb --updates 2000 --queries 100 \
        --engine TRIC+ --shards 4 --subscribe 5-of-100 --policy coalesce
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import sys
import time
from typing import List, Optional, Sequence, Tuple

from ..engines import available_engines, create_sharded_engine
from ..graph.elements import Update, delete
from ..graph.errors import ReproError
from .broker import OverflowPolicy, SubscriptionBroker

__all__ = ["main", "build_parser", "pick_subscribed", "parse_subscribe_spec"]


class _ShutdownRequested(Exception):
    """Raised inside the replay loop by the SIGINT/SIGTERM handlers."""

    def __init__(self, signum: int) -> None:
        super().__init__(signal.Signals(signum).name)
        self.reason = signal.Signals(signum).name


#: Set by the SIGHUP handler, consumed at the next batch boundary of the
#: replay loop: the operator's request for a zero-loss rolling restart.
_SIGHUP_PENDING = {"flag": False}


def parse_subscribe_spec(spec: str) -> Tuple[int, Optional[int]]:
    """Parse ``"k"`` or ``"k-of-n"`` into ``(k, n_or_None)``."""
    parts = spec.split("-of-")
    try:
        if len(parts) == 1:
            return int(parts[0]), None
        if len(parts) == 2:
            return int(parts[0]), int(parts[1])
    except ValueError:
        pass
    raise argparse.ArgumentTypeError(
        f"expected K or K-of-N (e.g. 5 or 5-of-100), got {spec!r}"
    )


def pick_subscribed(query_ids: Sequence[str], k: int, pool: Optional[int] = None) -> List[str]:
    """``k`` query ids spread evenly across the first ``pool`` (sorted) ids."""
    from ..bench.experiments import pick_subscribed_queries

    ordered = sorted(query_ids)
    if pool is not None:
        ordered = ordered[: max(1, pool)]
    return pick_subscribed_queries(ordered, k)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Replay a dataset stream while delivering per-listener "
        "match deltas for subscribed continuous queries.",
    )
    parser.add_argument("--dataset", default="snb", choices=("snb", "taxi", "biogrid"),
                        help="synthetic dataset stream to replay (default snb)")
    parser.add_argument("--updates", type=int, default=2_000,
                        help="stream length in updates (default 2000)")
    parser.add_argument("--queries", type=int, default=100,
                        help="registered query-database size (default 100)")
    parser.add_argument("--engine", default="TRIC+",
                        help="engine name (default TRIC+; see repro-bench --list-engines)")
    parser.add_argument("--shards", type=int, default=1,
                        help="partition the query database across N engine shards")
    parser.add_argument("--assignment", default="hash", choices=("hash", "label"),
                        help="shard assignment strategy (default hash)")
    parser.add_argument("--executor", default="serial",
                        choices=("serial", "thread", "process"),
                        help="shard fan-out executor: serial (in-process loop), "
                        "thread (concurrent shard tasks on a thread pool), or "
                        "process (one worker process per shard, true "
                        "parallelism; default serial)")
    parser.add_argument("--replicas", type=int, default=0, metavar="N",
                        help="process executor only: attach N replica workers "
                        "per shard — they absorb matches_of/describe reads, "
                        "stand in for a SIGKILLed primary via promotion, and "
                        "make SIGHUP rolling restarts invisible (default 0)")
    parser.add_argument("--subscribe", type=parse_subscribe_spec, default=(5, None),
                        metavar="K[-of-N]",
                        help="subscribe to K queries spread over the first N "
                        "registered (default 5)")
    parser.add_argument("--policy", default=OverflowPolicy.COALESCE.value,
                        choices=[policy.value for policy in OverflowPolicy],
                        help="subscription overflow policy (default coalesce)")
    parser.add_argument("--capacity", type=int, default=256,
                        help="subscription queue capacity (default 256)")
    parser.add_argument("--batch-size", type=int, default=16,
                        help="stream updates per engine micro-batch (default 16)")
    parser.add_argument("--deletions", type=float, default=0.0, metavar="FRACTION",
                        help="interleave this fraction of deletions of live edges "
                        "into the stream (default 0: additions only)")
    parser.add_argument("--seed", type=int, default=17, help="dataset seed (default 17)")
    parser.add_argument("--max-deltas", type=int, default=None,
                        help="stop printing deltas after N (replay continues)")
    parser.add_argument("--journal-dir", default=None, metavar="DIR",
                        help="make the engine durable: write-ahead journal "
                        "every registration and micro-batch into DIR "
                        "(fsync-on-batch), so a crashed server recovers "
                        "byte-identically from snapshot + journal tail")
    parser.add_argument("--snapshot-every", type=int, default=None, metavar="N",
                        help="with --journal-dir: snapshot full engine state "
                        "every N journal records and reset the journal "
                        "(default: journal only)")
    parser.add_argument("--no-fsync", action="store_true",
                        help="with --journal-dir: skip the per-batch fsync "
                        "(faster, loses the power-failure guarantee)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the stderr summary")
    return parser


def _churned(updates: Sequence[Update], fraction: float, seed: int) -> List[Update]:
    """Interleave deletions of previously added edges into the stream."""
    if fraction <= 0:
        return list(updates)
    rng = random.Random(seed)
    live: List = []
    churned: List[Update] = []
    for update in updates:
        churned.append(update)
        live.append(update.edge)
        if len(live) > 25 and rng.random() < fraction:
            edge = live.pop(rng.randrange(len(live)))
            churned.append(delete(edge.label, edge.source, edge.target))
    return churned


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.updates < 1 or args.queries < 1:
        parser.error("--updates and --queries must be positive")
    if args.batch_size < 1:
        parser.error("--batch-size must be at least 1")
    if args.engine not in available_engines():
        parser.error(f"unknown engine {args.engine!r}; known: {', '.join(available_engines())}")

    # Imported lazily: the bench package pulls in the dataset generators,
    # which this module only needs at run time.
    from ..bench.experiments import build_stream, build_workload

    engine = None
    # Handlers go in before the (potentially long) workload build so a
    # SIGTERM at any point of the server's life exits cleanly.
    previous_handlers = _install_signal_handlers()
    try:
        stream = build_stream(args.dataset, args.updates, args.seed)
        workload = build_workload(
            stream,
            num_queries=args.queries,
            avg_edges=5,
            selectivity=0.25,
            overlap=0.35,
            seed=args.seed + 1,
        )
        engine = create_sharded_engine(
            args.engine,
            args.shards,
            assignment=args.assignment,
            executor=args.executor,
            replicas=args.replicas,
            journal_dir=args.journal_dir,
            snapshot_every=args.snapshot_every,
            journal_fsync=not args.no_fsync,
        )
        return _serve(args, engine, workload, stream)
    except ReproError as error:
        print(f"repro-serve: {error}", file=sys.stderr)
        return 2
    except (_ShutdownRequested, KeyboardInterrupt):
        # A signal outside the replay loop (indexing, setup): nothing
        # useful to summarise yet, but still a clean exit.
        return 0
    except BrokenPipeError:
        # Downstream consumer (head, a closed socket) went away: stop
        # streaming quietly, like any well-behaved line-oriented tool.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    finally:
        # Release executor resources (process-shard workers, thread pools,
        # journal handles) on every exit path, including errors, signals
        # and broken stdout pipes.
        _restore_signal_handlers(previous_handlers)
        if engine is not None and hasattr(engine, "close"):
            engine.close()


def _install_signal_handlers():
    """Route SIGINT/SIGTERM into :class:`_ShutdownRequested` for the replay.

    SIGHUP is different: it does not interrupt anything — the handler only
    flags a pending rolling restart, which the replay loop performs at the
    next batch boundary (where no delta frame is in flight).

    Returns the previous handlers for :func:`_restore_signal_handlers` (so
    in-process callers — the tests — leave no global state behind).  A
    no-op off the main thread, where ``signal.signal`` is unavailable.
    """
    def _handler(signum, frame):
        raise _ShutdownRequested(signum)

    def _hup_handler(signum, frame):
        _SIGHUP_PENDING["flag"] = True

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _handler)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    if hasattr(signal, "SIGHUP"):
        try:
            previous[signal.SIGHUP] = signal.signal(signal.SIGHUP, _hup_handler)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    return previous


def _restore_signal_handlers(previous) -> None:
    for signum, handler in previous.items():
        try:
            signal.signal(signum, handler)
        except ValueError:  # pragma: no cover - non-main thread
            pass


def _replication_health(engine) -> Optional[dict]:
    """Aggregate proxy-side failover counters (``None``: not a process group).

    Reads only parent-side state — promotions, respawns, degradations,
    replica reseeds/deaths and the journal-seq lag of every replica — so
    sampling it per tick costs no worker round-trips.
    """
    statistics = getattr(engine, "replication_statistics", None)
    if statistics is None:
        return None
    per_shard = statistics()
    if not per_shard:
        return None
    replica_lag: List[List[int]] = []
    reseeds = deaths = 0
    for info in per_shard:
        replicas = info.get("replicas")
        replica_lag.append(list(replicas["lag"]) if replicas else [])
        if replicas:
            reseeds += replicas["reseeds"]
            deaths += replicas["deaths"]
    return {
        "promotions": sum(info["promotions"] for info in per_shard),
        "respawns": sum(info["respawns"] for info in per_shard),
        "restarts": sum(info["restarts"] for info in per_shard),
        "degraded_shards": sum(1 for info in per_shard if info["degraded"]),
        "replica_reseeds": reseeds,
        "replica_deaths": deaths,
        "replica_lag": replica_lag,
    }


def _health_key(health: Optional[dict]):
    """The failure counters of a health sample.  Lag is excluded (it
    breathes benignly between ticks) and so are rolling-restart counts
    (operator-initiated, reported by their own event line) — neither may
    spam failover event lines."""
    if health is None:
        return None
    return (
        health["promotions"],
        health["respawns"],
        health["degraded_shards"],
        health["replica_reseeds"],
        health["replica_deaths"],
    )


def _rolling_restart(args, engine, tick: int) -> int:
    """Perform the SIGHUP-requested rolling restart (returns 1 when done)."""
    restart = getattr(engine, "rolling_restart", None)
    if restart is None:
        if not args.quiet:
            print(
                json.dumps(
                    {"event": "rolling-restart-unsupported", "tick": tick},
                    sort_keys=True,
                ),
                file=sys.stderr,
            )
        return 0
    report = restart()
    if not args.quiet:
        print(
            json.dumps(
                dict(report, event="rolling-restart", tick=tick),
                sort_keys=True,
            ),
            file=sys.stderr,
        )
    return 1


def _serve(args, engine, workload, stream) -> int:
    """Index, subscribe and replay on a ready-made engine (see :func:`main`)."""
    indexing_start = time.perf_counter()
    engine.register_all(workload.queries)
    indexing_s = time.perf_counter() - indexing_start

    broker = SubscriptionBroker(engine)
    k, pool = args.subscribe
    subscribed = pick_subscribed(list(engine.queries), k, pool)
    subscription = broker.subscribe(
        "serve", subscribed, policy=args.policy, capacity=args.capacity
    )

    updates = _churned(list(stream), args.deletions, args.seed + 2)
    printed = 0
    delivered = changes = 0
    consumed = 0
    tick = 0
    rolling_restarts = 0
    shutdown: Optional[str] = None
    out = sys.stdout
    # Failover visibility: proxy-side replication counters are sampled
    # after every tick (cheap — no worker IPC) and any change is reported
    # to stderr as one event line, so operators see promotions, respawns
    # and reseeds as they happen rather than only in the final summary.
    last_health_key = _health_key(_replication_health(engine))
    replay_start = time.perf_counter()
    try:
        for start in range(0, len(updates), args.batch_size):
            if _SIGHUP_PENDING["flag"]:
                _SIGHUP_PENDING["flag"] = False
                rolling_restarts += _rolling_restart(args, engine, tick)
            chunk = updates[start : start + args.batch_size]
            if args.batch_size == 1:
                broker.on_update(chunk[0])
            else:
                broker.on_batch(chunk)
            consumed += len(chunk)
            tick += 1
            for matched in subscription.drain():
                delivered += 1
                changes += matched.num_changes
                if args.max_deltas is None or printed < args.max_deltas:
                    print(json.dumps(matched.as_dict(), sort_keys=True), file=out)
                    printed += 1
            health = _replication_health(engine)
            health_key = _health_key(health)
            if health_key != last_health_key:
                if not args.quiet and health is not None:
                    print(
                        json.dumps(
                            dict(health, event="failover", tick=tick),
                            sort_keys=True,
                        ),
                        file=sys.stderr,
                    )
                last_health_key = health_key
    except _ShutdownRequested as stop:
        # Graceful shutdown: stop the replay where it is, still flush the
        # stderr summary below, let main() close the shards, exit 0.
        shutdown = stop.reason
    except KeyboardInterrupt:  # a raw ^C that bypassed the installed handler
        shutdown = "SIGINT"
    except BrokenPipeError:
        # Client disconnect mid-stream: the summary still goes to stderr.
        shutdown = "client-disconnect"
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    replay_s = time.perf_counter() - replay_start

    if not args.quiet:
        summary = {
            "dataset": args.dataset,
            "engine": engine.name,
            "updates": len(updates),
            "updates_consumed": consumed,
            "queries": engine.num_queries,
            "subscribed": sorted(subscribed),
            "indexing_s": round(indexing_s, 4),
            "replay_s": round(replay_s, 4),
            "updates_per_s": round(len(updates) / replay_s, 1) if replay_s else None,
            "deltas_delivered": delivered,
            "answers_changed": changes,
            "flush": {
                "affected_aware": broker.affected_flush,
                "flushes": broker.flushes,
                "queries_flushed": broker.queries_flushed,
                "queries_skipped": broker.queries_skipped,
            },
            "subscription": subscription.describe(),
        }
        if shutdown is not None:
            summary["shutdown"] = shutdown
        description = engine.describe()
        if "durability" in description:
            summary["durability"] = description["durability"]
        if hasattr(engine, "shard_statistics"):
            summary["executor"] = description.get("executor")
            summary["affected_per_batch"] = description.get("affected_per_batch")
            if "shard_respawns" in description:
                summary["shard_respawns"] = description["shard_respawns"]
                summary["shard_replayed_ops"] = description["shard_replayed_ops"]
                summary["degraded_shards"] = description["degraded_shards"]
            health = _replication_health(engine)
            if health is not None:
                summary["replication"] = dict(
                    health, rolling_restarts=rolling_restarts
                )
            summary["shards"] = [
                {
                    "engine": stats.get("engine"),
                    "queries": stats.get("queries"),
                    "updates_processed": stats.get("updates_processed"),
                    "satisfied": stats.get("satisfied"),
                    "batches": batches,
                    "batch_ms_mean": latency,
                }
                for stats, batches, latency in zip(
                    description.get("per_shard", []),
                    description.get("shard_batches", []),
                    description.get("shard_batch_ms_mean", []),
                )
            ]
        print(json.dumps(summary, indent=2, sort_keys=True), file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(main())
