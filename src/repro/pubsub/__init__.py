"""Pub/sub serving layer: subscriptions, match deltas, and sharding.

The engines answer "which queries are satisfied" per update; this package
is the serving layer above them — per-listener subscriptions over the
registered query database, exact added/removed answer deltas derived from
the delta pipeline's maintained relations, bounded delivery queues with
explicit overflow policies, and query-database sharding across independent
engine instances.  ``python -m repro.pubsub.serve`` (installed as the
``repro-serve`` console script) replays a dataset while streaming
subscribed deltas as JSON lines.
"""

from .broker import (
    BrokerTick,
    MatchDelta,
    NotificationLog,
    OverflowPolicy,
    Subscription,
    SubscriptionBroker,
    replay_deltas,
)
from .deltas import AnswerDeltaTracker, canonical_key
from .sharding import ShardedEngineGroup

__all__ = [
    "AnswerDeltaTracker",
    "BrokerTick",
    "MatchDelta",
    "NotificationLog",
    "OverflowPolicy",
    "ShardedEngineGroup",
    "Subscription",
    "SubscriptionBroker",
    "canonical_key",
    "replay_deltas",
]
