"""Subscription broker: per-listener match-delta delivery.

The engines answer *"which queries are satisfied"* per update; an
application serving real users subscribes to *specific* queries and wants
the *changed* answers.  :class:`SubscriptionBroker` sits on top of any
:class:`~repro.core.engine.ContinuousEngine` (including a
:class:`~repro.pubsub.sharding.ShardedEngineGroup`) and

* lets listeners :meth:`~SubscriptionBroker.subscribe` /
  :meth:`~SubscriptionBroker.unsubscribe` to query ids — or to label-based
  predicates over the registered query database — at runtime,
* derives per-query :class:`MatchDelta` events (added/removed binding
  dictionaries) from the delta pipeline's maintained answer relations
  through an :class:`~repro.pubsub.deltas.AnswerDeltaTracker` (exact log
  reads where the engine materialises answers, snapshot diffs elsewhere),
  consulting the engines' :class:`~repro.core.engine.BatchReport` so each
  tick only touches the watched queries the batch could have affected,
* delivers them through per-listener bounded queues with an explicit
  :class:`OverflowPolicy`, or synchronously to a callback.

The consumer contract: per query, deltas arrive in order and compose —
``state = (state - removed) | added``, with ``snapshot=True`` deltas
resetting ``state = added`` — and the composed state always equals a fresh
``matches_of`` of the underlying engine at flush time
(:func:`replay_deltas` implements the fold).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.engine import ContinuousEngine
from ..graph.elements import Update
from ..graph.errors import SubscriptionError
from .deltas import AnswerDeltaTracker, AnswerKey, canonical_key

__all__ = [
    "OverflowPolicy",
    "MatchDelta",
    "Subscription",
    "BrokerTick",
    "SubscriptionBroker",
    "NotificationLog",
    "replay_deltas",
]

#: Synchronous delta consumer attached to a subscription (push mode).
DeltaCallback = Callable[["MatchDelta"], None]


class OverflowPolicy(enum.Enum):
    """What a bounded subscription queue does when a delivery finds it full.

    DROP_OLDEST
        Evict the oldest queued delta (lossy; ``dropped`` counts the
        evictions).  Right for dashboards that only care about recency.
    COALESCE
        Collapse the backlog: the evicted query is marked for *resync* and
        the consumer's next ``pop``/``drain`` serves one ``snapshot=True``
        delta (the query's full current answer set) in place of every
        queued/lost delta for it.  Lossless at the *state* level — the
        composed per-query state stays exact — while the queue stays
        bounded.
    BLOCK
        Never drop: the queue grows past its capacity and the delivery is
        flagged as backpressure (``Subscription.backpressured``,
        ``BrokerTick.backpressured``) so the producer can pause the
        stream.  This is where a threaded deployment would block.
    """

    DROP_OLDEST = "drop-oldest"
    COALESCE = "coalesce"
    BLOCK = "block"

    @classmethod
    def coerce(cls, value: "OverflowPolicy | str") -> "OverflowPolicy":
        """Accept an enum member or its string value (CLI-friendly)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            options = ", ".join(policy.value for policy in cls)
            raise SubscriptionError(
                f"unknown overflow policy {value!r}; options: {options}"
            ) from None


@dataclass(frozen=True)
class MatchDelta:
    """The answer changes of one subscribed query at one flush.

    ``added`` / ``removed`` are canonically ordered binding dictionaries
    (the same per-answer order as ``matches_of``).  With ``snapshot=True``
    the delta is a resync point: ``added`` holds the query's *full* current
    answer set and ``removed`` is empty — consumers reset their state to it.
    ``timestamp`` is the engine's update count at emission.
    """

    query_id: str
    added: Tuple[Dict[str, str], ...]
    removed: Tuple[Dict[str, str], ...] = ()
    timestamp: int = 0
    snapshot: bool = False

    @property
    def num_changes(self) -> int:
        """Number of answer dictionaries carried by this delta."""
        return len(self.added) + len(self.removed)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (used by ``repro-serve``)."""
        return {
            "query": self.query_id,
            "added": list(self.added),
            "removed": list(self.removed),
            "snapshot": self.snapshot,
            "t": self.timestamp,
        }


def replay_deltas(deltas: Iterable[MatchDelta]) -> Dict[str, Set[AnswerKey]]:
    """Fold a delta stream into per-query answer states (the consumer
    contract, used by tests to check exact reconstruction)."""
    state: Dict[str, Set[AnswerKey]] = {}
    for delta in deltas:
        answers = state.setdefault(delta.query_id, set())
        if delta.snapshot:
            answers.clear()
        else:
            answers.difference_update(canonical_key(b) for b in delta.removed)
        answers.update(canonical_key(b) for b in delta.added)
    return state


class Subscription:
    """One listener's bounded delta queue over a set of query ids.

    Created by :meth:`SubscriptionBroker.subscribe`; consumers either pull
    (:meth:`pop` / :meth:`drain`) or attach a ``callback`` at subscribe
    time (push mode — the queue and overflow policy are then bypassed,
    deliveries are synchronous).
    """

    def __init__(
        self,
        broker: "SubscriptionBroker",
        name: str,
        query_ids: Set[str],
        *,
        policy: OverflowPolicy,
        capacity: int,
        callback: Optional[DeltaCallback] = None,
    ) -> None:
        self._broker = broker
        self.name = name
        self._query_ids: Set[str] = set(query_ids)
        self.policy = policy
        self.capacity = capacity
        self.callback = callback
        self.queue: Deque[MatchDelta] = deque()
        #: Query ids whose backlog was coalesced; served as snapshot deltas
        #: ahead of the queue on the next pop/drain.
        self._resync: Set[str] = set()
        self.active = True
        # Delivery statistics.
        self.delivered = 0
        self.dropped = 0
        self.coalesced = 0
        self.backpressured = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def query_ids(self) -> FrozenSet[str]:
        """The query ids this subscription currently watches."""
        return frozenset(self._query_ids)

    @property
    def pending(self) -> int:
        """Deltas waiting to be consumed (queued plus pending resyncs)."""
        return len(self.queue) + len(self._resync)

    def __len__(self) -> int:
        return self.pending

    def describe(self) -> Dict[str, object]:
        """Statistics dictionary used in reports and ``repro-serve``."""
        return {
            "subscription": self.name,
            "queries": len(self._query_ids),
            "policy": self.policy.value,
            "capacity": self.capacity,
            "pending": self.pending,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "coalesced": self.coalesced,
            "backpressured": self.backpressured,
        }

    # ------------------------------------------------------------------
    # Consumption (pull mode)
    # ------------------------------------------------------------------
    def pop(self) -> Optional[MatchDelta]:
        """Next pending delta, or ``None`` when the subscription is idle.

        Pending resyncs (coalesced backlog) are served first, as
        ``snapshot=True`` deltas built from the tracker's current state;
        any queued deltas of a resynced query are discarded (the snapshot
        subsumes them).
        """
        if self._resync:
            query_id = min(self._resync)
            self._resync.discard(query_id)
            if self.queue:
                self.queue = deque(
                    delta for delta in self.queue if delta.query_id != query_id
                )
            return self._broker._snapshot_delta(query_id)
        if self.queue:
            return self.queue.popleft()
        return None

    def drain(self) -> List[MatchDelta]:
        """Pop every pending delta."""
        drained: List[MatchDelta] = []
        while True:
            delta = self.pop()
            if delta is None:
                return drained
            drained.append(delta)

    # ------------------------------------------------------------------
    # Delivery (broker-side)
    # ------------------------------------------------------------------
    def _deliver(self, delta: MatchDelta) -> Optional[str]:
        """Enqueue (or push) one delta; returns an overflow event name."""
        self.delivered += 1
        if self.callback is not None:
            self.callback(delta)
            return None
        if delta.query_id in self._resync:
            # The pending snapshot is taken at consume time, so it already
            # covers this delta; queueing it would double-apply.
            self.coalesced += 1
            return "coalesced"
        if len(self.queue) >= self.capacity:
            if self.policy is OverflowPolicy.DROP_OLDEST:
                self.queue.popleft()
                self.dropped += 1
                self.queue.append(delta)
                return "dropped"
            if self.policy is OverflowPolicy.COALESCE:
                victim = self.queue.popleft()
                self._resync.add(victim.query_id)
                self.coalesced += 1
                if delta.query_id == victim.query_id:
                    return "coalesced"
                self.queue.append(delta)
                return "coalesced"
            self.backpressured += 1
            self.queue.append(delta)
            return "backpressured"
        self.queue.append(delta)
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Subscription({self.name!r}, queries={len(self._query_ids)}, "
            f"pending={self.pending}, policy={self.policy.value})"
        )


@dataclass
class BrokerTick:
    """Outcome of driving one update (or batch) through the broker."""

    #: Query ids the engine notified (gained answers / lost their last one).
    notified: FrozenSet[str] = frozenset()
    #: Per-query deltas emitted this tick (every watched query that changed).
    deltas: Tuple[MatchDelta, ...] = ()
    #: Total deliveries across subscriptions (incl. callback pushes).
    delivered: int = 0
    dropped: int = 0
    coalesced: int = 0
    #: Names of subscriptions that exceeded capacity under ``BLOCK`` — the
    #: producer's cue to pause the stream until consumers drain.
    backpressured: Tuple[str, ...] = ()
    #: Watched queries whose deltas were collected this tick, and watched
    #: queries skipped because the engine's :class:`~repro.core.engine.BatchReport`
    #: proved the batch could not have touched them.
    flushed: int = 0
    skipped: int = 0

    @property
    def num_changes(self) -> int:
        """Total answer dictionaries carried by this tick's deltas."""
        return sum(delta.num_changes for delta in self.deltas)


class SubscriptionBroker:
    """Pub/sub façade over one engine (or sharded engine group).

    Drive the stream through :meth:`on_update` / :meth:`on_batch` (which
    forward to the engine and then flush deltas), or drive the engine
    yourself and call :meth:`flush` after each step.
    """

    def __init__(
        self,
        engine: ContinuousEngine,
        *,
        default_policy: "OverflowPolicy | str" = OverflowPolicy.DROP_OLDEST,
        default_capacity: int = 1024,
        affected_flush: bool = True,
    ) -> None:
        if default_capacity < 1:
            raise SubscriptionError("default_capacity must be at least 1")
        self.engine = engine
        self.default_policy = OverflowPolicy.coerce(default_policy)
        self.default_capacity = default_capacity
        #: When ``True`` (the default) :meth:`flush` consults the engine's
        #: :class:`~repro.core.engine.BatchReport` and skips watched queries
        #: the batch provably did not touch.  ``False`` restores the
        #: flush-everything behaviour (the comparison baseline for
        #: ``benchmarks/bench_hotpath.py``'s ``affected_flush`` section).
        self.affected_flush = affected_flush
        self._tracker = AnswerDeltaTracker(engine)
        self._subscriptions: Dict[str, Subscription] = {}
        self._watchers: Dict[str, Set[Subscription]] = {}
        self._names = 0
        # Cumulative flush statistics (surfaced by describe()).
        self.flushes = 0
        self.queries_flushed = 0
        self.queries_skipped = 0

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    @property
    def subscriptions(self) -> Mapping[str, Subscription]:
        """Live subscriptions keyed by name (read-only use)."""
        return dict(self._subscriptions)

    @property
    def watched_queries(self) -> FrozenSet[str]:
        """Query ids watched by at least one subscription."""
        return frozenset(self._watchers)

    def resolve_queries(
        self,
        query_ids: Optional[Iterable[str]] = None,
        *,
        labels: Optional[Iterable[str]] = None,
    ) -> List[str]:
        """Expand a subscription predicate into sorted registered query ids.

        ``query_ids`` selects explicitly (unknown ids raise); ``labels``
        selects every registered query using at least one of the edge
        labels; both together intersect.  Neither selects the whole query
        database (subscribe-to-all).
        """
        registered = self.engine.queries
        if query_ids is None:
            selected = set(registered)
        else:
            selected = set()
            for query_id in query_ids:
                if query_id not in registered:
                    raise SubscriptionError(f"unknown query id: {query_id!r}")
                selected.add(query_id)
        if labels is not None:
            wanted = set(labels)
            selected = {
                query_id
                for query_id in selected
                if registered[query_id].edge_labels() & wanted
            }
        return sorted(selected)

    def subscribe(
        self,
        name: Optional[str] = None,
        query_ids: Optional[Iterable[str]] = None,
        *,
        labels: Optional[Iterable[str]] = None,
        policy: "OverflowPolicy | str | None" = None,
        capacity: Optional[int] = None,
        callback: Optional[DeltaCallback] = None,
        initial_snapshot: bool = True,
    ) -> Subscription:
        """Create a subscription over ``query_ids`` and/or ``labels``.

        With ``initial_snapshot`` (the default) a ``snapshot=True`` delta
        carrying each selected query's current answers is delivered up
        front (empty answer sets are skipped), so a mid-stream subscriber
        starts from reconstructable state.
        """
        if name is None:
            name = f"sub{self._names}"
        self._names += 1
        if name in self._subscriptions:
            raise SubscriptionError(f"subscription name already in use: {name!r}")
        selected = self.resolve_queries(query_ids, labels=labels)
        if not selected:
            raise SubscriptionError(
                "subscription matches no registered query "
                f"(query_ids={query_ids!r}, labels={labels!r})"
            )
        if capacity is not None and capacity < 1:
            raise SubscriptionError("subscription capacity must be at least 1")
        subscription = Subscription(
            self,
            name,
            set(),
            policy=OverflowPolicy.coerce(policy) if policy is not None else self.default_policy,
            capacity=capacity if capacity is not None else self.default_capacity,
            callback=callback,
        )
        self._subscriptions[name] = subscription
        self.subscribe_queries(subscription, selected, initial_snapshot=initial_snapshot)
        return subscription

    def subscribe_queries(
        self,
        subscription: "Subscription | str",
        query_ids: Iterable[str],
        *,
        initial_snapshot: bool = True,
    ) -> None:
        """Add query ids to an existing subscription at runtime."""
        subscription = self._require_subscription(subscription)
        for query_id in self.resolve_queries(query_ids):
            if query_id in subscription._query_ids:
                continue
            snapshot = (
                self._tracker.watch(query_id)
                if query_id not in self._watchers
                else self._tracker.snapshot(query_id)
            )
            self._watchers.setdefault(query_id, set()).add(subscription)
            subscription._query_ids.add(query_id)
            if initial_snapshot and snapshot:
                subscription._deliver(
                    MatchDelta(
                        query_id,
                        added=tuple(dict(key) for key in snapshot),
                        timestamp=self.engine.updates_processed,
                        snapshot=True,
                    )
                )

    def unsubscribe_queries(
        self, subscription: "Subscription | str", query_ids: Iterable[str]
    ) -> None:
        """Remove query ids from a subscription at runtime."""
        subscription = self._require_subscription(subscription)
        for query_id in query_ids:
            if query_id not in subscription._query_ids:
                continue
            subscription._query_ids.discard(query_id)
            subscription._resync.discard(query_id)
            watchers = self._watchers.get(query_id)
            if watchers is not None:
                watchers.discard(subscription)
                if not watchers:
                    del self._watchers[query_id]
                    self._tracker.unwatch(query_id)

    def unsubscribe(self, subscription: "Subscription | str") -> None:
        """Tear a subscription down (its queue stays drainable)."""
        subscription = self._require_subscription(subscription)
        self.unsubscribe_queries(subscription, list(subscription._query_ids))
        subscription.active = False
        self._subscriptions.pop(subscription.name, None)

    def _require_subscription(self, subscription: "Subscription | str") -> Subscription:
        if isinstance(subscription, str):
            found = self._subscriptions.get(subscription)
            if found is None:
                raise SubscriptionError(f"unknown subscription: {subscription!r}")
            return found
        if not subscription.active:
            raise SubscriptionError(
                f"subscription {subscription.name!r} is no longer active"
            )
        return subscription

    # ------------------------------------------------------------------
    # Stream driving and delta delivery
    # ------------------------------------------------------------------
    def on_update(self, update: Update) -> BrokerTick:
        """Process one stream update and flush deltas to subscribers."""
        notified = self.engine.on_update(update)
        return self.flush(notified)

    def on_batch(self, updates: Sequence[Update]) -> BrokerTick:
        """Process a micro-batch and flush deltas once for the whole batch."""
        notified = self.engine.on_batch(updates)
        return self.flush(notified)

    def flush(self, notified: FrozenSet[str] = frozenset()) -> BrokerTick:
        """Collect and deliver the pending deltas of the affected watched queries.

        Safe to call at any time (e.g. when the engine is driven outside
        the broker).  When ``notified`` is a
        :class:`~repro.core.engine.BatchReport` with a known ``affected``
        set (what :meth:`on_update` / :meth:`on_batch` pass through) and
        ``affected_flush`` is on, only watched queries in that set are
        collected — an unaffected query costs *nothing* this tick: no
        delta-log slice on the fast path, no ``matches_of`` snapshot diff
        on the slow path.  A plain frozenset (or an engine that cannot
        narrow its report) flushes every watched query, exactly the
        pre-report behaviour.  Skipping is exact, not lossy: the report's
        completeness contract guarantees an unaffected query's answers did
        not change, and the tracker's positions simply advance at the
        query's next affected (or conservative) flush.

        Callers driving the engine *outside* the broker must pass a report
        covering every engine change since the previous flush — merge
        per-batch reports with :meth:`BatchReport.merge
        <repro.core.engine.BatchReport.merge>`, or call ``flush()`` with no
        argument for a conservative full flush.
        """
        affected = (
            getattr(notified, "affected", None) if self.affected_flush else None
        )
        if affected is None:
            candidates = sorted(self._watchers)
            skipped = 0
        else:
            candidates = sorted(
                query_id for query_id in self._watchers if query_id in affected
            )
            skipped = len(self._watchers) - len(candidates)
        deltas: List[MatchDelta] = []
        delivered = dropped = coalesced = 0
        backpressured: List[str] = []
        timestamp = self.engine.updates_processed
        self.flushes += 1
        self.queries_flushed += len(candidates)
        self.queries_skipped += skipped
        for query_id in candidates:
            watchers = self._watchers.get(query_id)
            if not watchers:
                continue  # a callback un-subscribed it mid-flush
            added, removed = self._tracker.collect(query_id)
            if not added and not removed:
                continue
            delta = MatchDelta(
                query_id,
                added=tuple(dict(key) for key in added),
                removed=tuple(dict(key) for key in removed),
                timestamp=timestamp,
            )
            deltas.append(delta)
            for subscription in tuple(watchers):
                event = subscription._deliver(delta)
                delivered += 1
                if event == "dropped":
                    dropped += 1
                elif event == "coalesced":
                    coalesced += 1
                elif event == "backpressured" and subscription.name not in backpressured:
                    backpressured.append(subscription.name)
        return BrokerTick(
            notified=notified,
            deltas=tuple(deltas),
            delivered=delivered,
            dropped=dropped,
            coalesced=coalesced,
            backpressured=tuple(sorted(backpressured)),
            flushed=len(candidates),
            skipped=skipped,
        )

    def _snapshot_delta(self, query_id: str) -> MatchDelta:
        """Resync delta from the tracker's current state (coalesce path)."""
        keys = (
            self._tracker.snapshot(query_id)
            if query_id in self._tracker.watched
            else [canonical_key(b) for b in self.engine.matches_of(query_id)]
        )
        return MatchDelta(
            query_id,
            added=tuple(dict(key) for key in keys),
            timestamp=self.engine.updates_processed,
            snapshot=True,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Metrics dictionary: engine description plus per-listener stats."""
        return {
            "engine": self.engine.describe(),
            "watched_queries": len(self._watchers),
            "affected_flush": self.affected_flush,
            "flushes": self.flushes,
            "queries_flushed": self.queries_flushed,
            "queries_skipped": self.queries_skipped,
            "subscriptions": [
                subscription.describe()
                for _, subscription in sorted(self._subscriptions.items())
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SubscriptionBroker(engine={self.engine.name!r}, "
            f"subscriptions={len(self._subscriptions)}, "
            f"watched={len(self._watchers)})"
        )


class NotificationLog:
    """Recording listener: legacy match notifications and/or broker deltas.

    This is the former ``repro.streams.report.NotificationLog`` folded into
    the pub/sub subsystem.  It still works as a bare
    :data:`~repro.streams.runner.MatchListener` (``log(update, matched)``
    records ``(timestamp, edge, queries)`` entries — the deprecated
    :class:`~repro.streams.runner.StreamRunner` listener path), and it now
    doubles as a trivial *subscribe-to-all* adapter: :meth:`attach`
    subscribes it to every registered query of a broker's engine and every
    delivered :class:`MatchDelta` is appended to :attr:`deltas`.
    """

    def __init__(self) -> None:
        self.notifications: List[Dict[str, object]] = []
        self.deltas: List[MatchDelta] = []
        self.subscription: Optional[Subscription] = None

    # Legacy MatchListener surface -------------------------------------
    def __call__(self, update, matched) -> None:
        self.notifications.append(
            {
                "timestamp": update.timestamp,
                "edge": str(update.edge),
                "queries": sorted(matched),
            }
        )

    # Broker subscriber surface ----------------------------------------
    def attach(
        self,
        broker: SubscriptionBroker,
        *,
        name: str = "notification-log",
        query_ids: Optional[Iterable[str]] = None,
        labels: Optional[Iterable[str]] = None,
    ) -> Subscription:
        """Subscribe this log to ``broker`` (all registered queries by
        default) in push mode; returns the created subscription."""
        self.subscription = broker.subscribe(
            name, query_ids, labels=labels, callback=self.deltas.append
        )
        return self.subscription

    def __len__(self) -> int:
        return len(self.notifications) + len(self.deltas)

    def queries_notified(self) -> List[str]:
        """Distinct query ids seen so far (notifications, then deltas)."""
        seen: List[str] = []
        for record in self.notifications:
            for query_id in record["queries"]:
                if query_id not in seen:
                    seen.append(query_id)
        for delta in self.deltas:
            if delta.query_id not in seen:
                seen.append(delta.query_id)
        return seen
