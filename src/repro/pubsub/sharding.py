"""Sharded engine groups: partition the query database across engines.

One engine instance indexes the whole query database; a
:class:`ShardedEngineGroup` partitions it across ``N`` independent engine
instances instead — the sharding step of a serving architecture (a broker
that fans work out to index shards and merges the per-shard results).  The
group itself implements the full
:class:`~repro.core.engine.ContinuousEngine` interface, so the replay
harness, the benchmarks and the :class:`~repro.pubsub.broker.SubscriptionBroker`
treat it exactly like a single engine:

* :meth:`register` assigns each query to one shard — ``hash`` assignment
  (stable CRC of the query id) balances blindly; ``label`` assignment
  routes a query to the shard already owning most of its edge labels,
  which clusters structurally related queries (maximising trie sharing
  inside each shard) and narrows the fan-out below,
* stream updates fan out only to the shards whose queries use the edge's
  label (an engine without the label ignores the update anyway — the
  group skips even handing it over), executed by a pluggable *executor*:
  ``serial`` (in-process loop, the default), ``thread`` (one
  :class:`~concurrent.futures.ThreadPoolExecutor` task per relevant
  shard), or ``process`` (each shard lives in its own single-worker
  :class:`~concurrent.futures.ProcessPoolExecutor` and receives picklable
  command/reply frames — true parallelism, since the shard engines share
  nothing),
* notifications and affected sets merge back deterministically as one
  :class:`~repro.core.engine.BatchReport` (shard order, set semantics),
  answers (``matches_of`` routes to the owning shard) and maintained
  answer-delta sources come back through the group, and
  :meth:`describe` / :meth:`shard_statistics` expose per-shard metrics
  including the executor mode and per-shard batch latency.

Because every query lives in exactly one shard — and a shard that *gains*
an edge label through a mid-stream registration is backfilled from the
group's live-edge history (recorded under the same key-matching retention
rule the unsharded registry applies) — the group's answers are
byte-identical to an unsharded engine's for any shard count *and any
executor*, whether queries are registered up front or while the stream is
running.  The one deliberate divergence: a pattern whose *literal-endpoint*
key is first registered after matching edges arrived reads those edges from
the backfill on a fresh shard, where a single engine's new (empty) view
would have dropped them — the group errs toward the oracle's semantics
there.

A group with ``executor="process"`` (or ``"thread"``) holds OS resources;
call :meth:`close` (or use the group as a context manager) when done.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import zlib
from collections import Counter
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.engine import BatchReport, ContinuousEngine, MaintainedAnswerSource
from ..graph.elements import Edge, Update, UpdateKind
from ..graph.errors import EngineError, PersistenceError, ShardUnavailableError
from ..persistence.replication import (
    WORKER_FAILURES,
    ReplicaSet,
    shard_op,
    silent_backfill,
    spawn_worker_pool,
    worker_call,
    worker_init,
)
from ..query.pattern import QueryGraphPattern
from ..query.terms import EdgeKey, candidate_keys_for_edge

__all__ = ["ShardedEngineGroup", "SHARD_EXECUTORS", "silent_backfill"]

#: A zero-argument engine factory (one call per shard).
EngineFactory = Callable[[], ContinuousEngine]

#: Supported fan-out executors.
SHARD_EXECUTORS = ("serial", "thread", "process")


# ----------------------------------------------------------------------
# Process-executor worker runtime (shared with the replication layer)
# ----------------------------------------------------------------------
# The worker-side runtime — pool initializer, command dispatcher, failure
# signature — lives in :mod:`repro.persistence.replication` so primaries
# and replicas run the exact same code; the historical names are kept
# here because this module is the substrate's primary consumer.
_process_shard_init = worker_init
_process_shard_call = worker_call
_shard_op = shard_op
_WORKER_FAILURES = WORKER_FAILURES


class _ProcessShardProxy:
    """Supervised, engine-shaped handle to a shard in its own worker process.

    Each proxy owns a single-worker
    :class:`~concurrent.futures.ProcessPoolExecutor`, so every command it
    submits lands on the same long-lived engine instance.  The group fans a
    batch out by *starting* every relevant shard's command first and
    collecting the replies afterwards — the workers run concurrently.

    **Supervision.**  The proxy is the shard's supervisor: a worker death
    (``SIGKILL``, OOM, crash — surfacing as :class:`BrokenProcessPool` on
    the command channel) is recovered, not propagated.  The proxy keeps a
    *recovery source*: the last worker-state snapshot it pulled (every
    ``snapshot_every`` state-changing commands) plus the ordered log of
    state-changing commands acknowledged since.  Recovery respawns the
    pool with bounded exponential backoff, restores the snapshot inside
    the fresh worker, replays the command log, and re-runs the in-flight
    command **exactly once** — sound because the dead worker's partial
    state died with it, so restored-state + one re-run equals a worker
    that never died (command results and worker state live in the same
    address space: they are lost, or delivered, together).  After
    ``max_respawns`` worker deaths the proxy *degrades gracefully*: it
    rebuilds the engine in-process from the same recovery source and runs
    all further commands serially in the parent — slower, but alive.

    **Replication.**  With ``replicas > 0`` the proxy additionally owns a
    :class:`~repro.persistence.replication.ReplicaSet`: replica workers
    bootstrapped from the primary's snapshot that tail its
    acknowledged-ops log.  Reads (``matches_of``, ``has_matches``,
    ``satisfied_queries``, ``describe``) round-robin across the replicas
    (drained to the acknowledged sequence first, so answers stay
    byte-identical), failing over to the primary when no replica can
    serve.  A dead primary *promotes* the freshest replica instead of
    respawning from the recovery source — the promoted worker already
    holds every acknowledged op, so only the in-flight batch is re-run
    (exactly once, by the same supervision path as before).

    ``answer_delta_source`` always returns ``None``: the maintained answer
    relation lives in the worker's address space, so delta consumers fall
    back to exact ``matches_of`` snapshot diffs over the command channel.
    """

    def __init__(
        self,
        engine_name: str,
        engine_kwargs: Dict[str, object],
        injective: bool,
        *,
        snapshot_every: Optional[int] = 32,
        max_respawns: int = 3,
        replicas: int = 0,
        respawn_window: Optional[float] = 60.0,
    ) -> None:
        self.name = engine_name
        self._engine_kwargs = dict(engine_kwargs)
        self._injective = injective
        self._query_ids: List[str] = []
        #: Worker snapshot cadence in state-changing commands (None: never;
        #: the command log then spans the shard's whole life).
        self.snapshot_every = snapshot_every
        self.max_respawns = max_respawns
        #: Sliding window (seconds) over which worker deaths count against
        #: ``max_respawns`` — only death *bursts* degrade the shard.
        #: ``None`` restores the lifetime cap.
        self.respawn_window = respawn_window
        self.respawns = 0
        self.promotions = 0
        self.restarts = 0
        self.replayed_ops = 0
        self.degraded = False
        self._respawn_times: List[float] = []
        #: In-process engine once degraded (None while a worker serves).
        self._local: Optional[ContinuousEngine] = None
        #: Last worker-state snapshot blob pulled from the worker, and the
        #: acknowledged sequence it covers.
        self._snapshot_blob: Optional[bytes] = None
        self._snapshot_seq = 0
        #: Monotonic sequence of acknowledged state-changing commands —
        #: the shard's replication/journal position.
        self._seq = 0
        #: Acknowledged state-changing commands since that snapshot, as
        #: ``(seq, op, args)`` — the recovery source tail and the
        #: replication stream.
        self._ops_log: List[Tuple[int, str, Tuple]] = []
        self._closed = False
        self._pool = self._spawn_pool()
        self.replica_target = max(0, int(replicas))
        self._replicas: Optional[ReplicaSet] = None
        if self.replica_target:
            self._replicas = ReplicaSet(
                engine_name,
                engine_kwargs,
                injective,
                self.replica_target,
                snapshot_provider=self._replica_seed,
            )

    def _spawn_pool(self) -> ProcessPoolExecutor:
        return spawn_worker_pool(self.name, self._engine_kwargs, self._injective)

    def _replica_seed(self) -> Tuple[Optional[bytes], int]:
        """Seed for a new replica: the primary's snapshot at its sequence."""
        if self._local is not None:
            return self._local.snapshot(), self._seq
        blob = self._pool.submit(worker_call, "snapshot", ()).result()
        return blob, self._seq

    # -- command channel (supervised) ------------------------------------
    def _execute(self, op: str, args: Tuple):
        """Run one command, recovering from worker death until it lands."""
        while True:
            if self._local is not None:
                return _shard_op(self._local, op, args)
            if self._closed:
                raise ShardUnavailableError(
                    f"process shard {self.name!r} is closed"
                )
            try:
                return self._pool.submit(_process_shard_call, op, args).result()
            except _WORKER_FAILURES:
                self._recover()

    def _call(self, op: str, *args):
        return self._execute(op, args)

    def _record_op(self, op: str, args: Tuple) -> None:
        """Log one acknowledged state-changing command and replicate it.

        Ops reach the replicas strictly *after* the primary acknowledged
        them — the invariant promotion relies on: a drained replica equals
        the primary's acknowledged state, never more.
        """
        self._seq += 1
        self._ops_log.append((self._seq, op, args))
        if self._replicas is not None:
            self._replicas.forward(self._seq, op, args)
            self._replicas.replenish()
        self._maybe_worker_snapshot()

    def _mutate(self, op: str, *args):
        """Run one state-changing command and log it once acknowledged."""
        result = self._execute(op, args)
        if self._local is None:
            self._record_op(op, args)
        return result

    def start_batch(self, updates: Sequence[Update]) -> Future:
        """Send a batch command without waiting (the concurrent fan-out).

        Pair with :meth:`finish_batch`, which collects the reply *and*
        supervises: a worker that died mid-batch is recovered there and
        the batch re-run exactly once.
        """
        updates = list(updates)
        if self._local is not None:
            future: Future = Future()
            try:
                future.set_result(_shard_op(self._local, "batch", (updates,)))
            except Exception as error:
                future.set_exception(error)
            return future
        if self._closed:
            raise ShardUnavailableError(f"process shard {self.name!r} is closed")
        try:
            return self._pool.submit(_process_shard_call, "batch", (updates,))
        except _WORKER_FAILURES:
            # The pool broke between batches (e.g. an idle-time SIGKILL
            # detected at submission): recover, then hand out a future
            # against the healed worker.
            self._recover()
            return self.start_batch(updates)

    def finish_batch(
        self, future: Future, updates: Sequence[Update]
    ) -> Tuple[BatchReport, FrozenSet[str], float]:
        """Collect a :meth:`start_batch` reply, recovering a dead worker.

        The exactly-once argument: the worker's reply and its state mutation
        live in the same process, so either both survived (reply collected,
        batch logged) or both died (worker restored to pre-batch state from
        snapshot + log, batch re-run once via the supervised channel).
        """
        try:
            result = future.result()
        except _WORKER_FAILURES:
            self._recover()
            result = self._execute("batch", (list(updates),))
        if self._local is None:
            self._record_op("batch", (list(updates),))
        return result

    # -- supervision -----------------------------------------------------
    def _recover(self) -> None:
        """Promote a replica, else respawn + restore (bounded backoff),
        else degrade."""
        self._pool.shutdown(wait=False)
        if self._replicas is not None and self._try_promote():
            return
        while True:
            if self.respawn_window is not None:
                # Sliding-window budget: deaths older than the window no
                # longer count, so a long-lived deployment only degrades
                # on a death *burst*, not on slow attrition.
                now = time.monotonic()
                self._respawn_times = [
                    stamp
                    for stamp in self._respawn_times
                    if now - stamp < self.respawn_window
                ]
            if len(self._respawn_times) >= self.max_respawns:
                break
            self.respawns += 1
            self._respawn_times.append(time.monotonic())
            # 50ms, 100ms, 200ms, ... capped — enough to ride out a
            # transient (OOM-killer sweep, cgroup hiccup) without turning
            # a hard failure into a long hang.
            time.sleep(min(1.0, 0.05 * (2 ** (len(self._respawn_times) - 1))))
            try:
                self._pool = self._spawn_pool()
                self._restore_worker()
                return
            except _WORKER_FAILURES:
                self._pool.shutdown(wait=False)
        self._degrade()

    def _try_promote(self) -> bool:
        """Fail the dead primary over to the freshest drained replica."""
        while True:
            promoted = self._replicas.promote()
            if promoted is None:
                return False
            behind = [
                entry for entry in self._ops_log if entry[0] > promoted.applied_seq
            ]
            if len(behind) != self._seq - promoted.applied_seq:
                # The ops bridging the replica's position to the current
                # sequence are no longer in the log (cleared by a worker
                # snapshot the replica predates) — it cannot be brought
                # current; try the next-freshest one.
                promoted.pool.shutdown(wait=False)
                continue
            try:
                for _seq, op, args in behind:
                    promoted.pool.submit(worker_call, op, args).result()
            except _WORKER_FAILURES:
                promoted.pool.shutdown(wait=False)
                continue
            self._pool = promoted.pool
            self.promotions += 1
            self.replayed_ops += len(behind)
            self._refresh_recovery_source()
            self._replicas.replenish()
            return True

    def _refresh_recovery_source(self) -> None:
        """Re-anchor the recovery source on the current primary's state."""
        try:
            blob = self._pool.submit(worker_call, "snapshot", ()).result()
        except _WORKER_FAILURES:
            # Primary died during the pull: the old source still covers
            # every acknowledged op; the next command recovers again.
            return
        self._snapshot_blob = blob
        self._snapshot_seq = self._seq
        self._ops_log.clear()

    def _restore_worker(self) -> None:
        """Rebuild a fresh worker's engine from snapshot + command log."""
        if self._snapshot_blob is not None:
            self._pool.submit(
                _process_shard_call, "restore", (self._snapshot_blob,)
            ).result()
        for _seq, op, args in self._ops_log:
            self._pool.submit(_process_shard_call, op, args).result()
        self.replayed_ops += len(self._ops_log)

    def _degrade(self) -> None:
        """Fall back to serial in-process execution (worker budget spent)."""
        if self._snapshot_blob is not None:
            engine = ContinuousEngine.restore(self._snapshot_blob)
        else:
            from ..engines import create_engine

            engine = create_engine(
                self.name, injective=self._injective, **self._engine_kwargs
            )
        for _seq, op, args in self._ops_log:
            _shard_op(engine, op, args)
        self.replayed_ops += len(self._ops_log)
        self._ops_log.clear()
        self._local = engine
        self.degraded = True
        if self._replicas is not None:
            # Degraded shards run in the parent; replicas of a worker that
            # no longer exists serve no reads.
            self._replicas.close()
            self._replicas = None

    def _maybe_worker_snapshot(self) -> None:
        if self.snapshot_every is None or len(self._ops_log) < self.snapshot_every:
            return
        try:
            blob = self._pool.submit(_process_shard_call, "snapshot", ()).result()
        except _WORKER_FAILURES:
            # Worker died during the snapshot pull: keep the old recovery
            # source intact; the next command notices and recovers.
            return
        self._snapshot_blob = blob
        self._snapshot_seq = self._seq
        self._ops_log.clear()

    def restart(self) -> float:
        """One rolling-restart step: drain, snapshot, respawn, tail-replay,
        resume.  Returns the pause in seconds.

        The synchronous snapshot pull *is* the drain (the command channel
        is FIFO), and because it runs between batches the snapshot sits
        exactly at the acknowledged sequence — the replay tail is empty by
        construction and no ``MatchDelta`` frame is in flight.  The
        replacement worker is seeded *before* the old one is shut down, so
        a failed restart leaves the shard serving on the old worker.
        """
        start = time.perf_counter()
        blob = self._execute("snapshot", ())
        if self._local is not None:
            self._local = ContinuousEngine.restore(blob)
            self.restarts += 1
            return time.perf_counter() - start
        pool = self._spawn_pool()
        try:
            pool.submit(worker_call, "restore", (blob,)).result()
        except _WORKER_FAILURES as error:
            pool.shutdown(wait=False)
            raise PersistenceError(
                f"rolling restart of shard {self.name!r} could not seed the "
                "replacement worker; the old worker kept serving"
            ) from error
        old_pool = self._pool
        self._pool = pool
        old_pool.shutdown(wait=True)
        self._snapshot_blob = blob
        self._snapshot_seq = self._seq
        self._ops_log.clear()
        self.restarts += 1
        return time.perf_counter() - start

    def worker_pid(self) -> Optional[int]:
        """OS pid of the live worker process (``None`` once degraded)."""
        if self._local is not None:
            return None
        return self._call("pid")

    def kill_worker(self) -> None:
        """SIGKILL the primary worker process (fault injection).

        The next command on this proxy observes the death and triggers
        supervised recovery — promotion of the freshest replica when one
        is attached, respawn + restore otherwise — exactly the path a real
        worker crash takes.
        """
        pid = self.worker_pid()
        if pid is not None:
            os.kill(pid, signal.SIGKILL)

    def replica_pids(self) -> List[int]:
        """OS pids of the live replica workers (empty without replicas)."""
        if self._replicas is None:
            return []
        return self._replicas.pids()

    def kill_replica(self, index: int = 0) -> None:
        """SIGKILL one replica worker (fault injection).

        The death is observed at the replica's next interaction (a read or
        a forwarded op); the replica is detached and a replacement is
        re-seeded from a fresh primary snapshot.
        """
        if self._replicas is None:
            raise EngineError(f"shard {self.name!r} has no replicas")
        self._replicas.kill(index)

    def replication_info(self) -> Dict[str, object]:
        """Proxy-side replication counters (cheap: no worker IPC)."""
        return {
            "respawns": self.respawns,
            "promotions": self.promotions,
            "restarts": self.restarts,
            "degraded": self.degraded,
            "seq": self._seq,
            "replicas": (
                None
                if self._replicas is None
                else self._replicas.statistics(self._seq)
            ),
        }

    # -- the engine surface the group needs ------------------------------
    @property
    def num_queries(self) -> int:
        return len(self._query_ids)

    @property
    def queries(self) -> Tuple[str, ...]:
        """Ids registered on this shard (patterns live in the worker)."""
        return tuple(self._query_ids)

    def register(self, pattern: QueryGraphPattern) -> None:
        self._mutate("register", pattern)
        self._query_ids.append(pattern.query_id)

    def backfill(self, updates: Sequence[Update]) -> None:
        self._mutate("backfill", list(updates))

    def on_update(self, update: Update) -> BatchReport:
        return self.on_batch([update])

    def on_batch(self, updates: Sequence[Update]) -> BatchReport:
        updates = list(updates)
        report, _, _ = self.finish_batch(self.start_batch(updates), updates)
        return report

    def _read(self, op: str, *args):
        """Serve a read from a replica when one can, else from the primary.

        The replica is drained to the acknowledged sequence first, so its
        answer is byte-identical to the primary's; a replica that dies is
        detached and the read fails over (ultimately to the primary).
        """
        if self._replicas is not None and self._local is None and not self._closed:
            served, result = self._replicas.read(op, args)
            if served:
                return result
            self._replicas.replenish()
        return self._execute(op, args)

    def matches_of(self, query_id: str) -> List[Dict[str, str]]:
        return self._read("matches_of", query_id)

    def has_matches(self, query_id: str) -> bool:
        return self._read("has_matches", query_id)

    def answer_delta_source(self, query_id: str) -> None:
        return None

    def satisfied_queries(self) -> FrozenSet[str]:
        return self._read("satisfied")

    def describe(self) -> Dict[str, object]:
        info = dict(self._read("describe"))
        info["supervision"] = {
            "respawns": self.respawns,
            "promotions": self.promotions,
            "restarts": self.restarts,
            "replayed_ops": self.replayed_ops,
            "degraded": self.degraded,
            "ops_logged": len(self._ops_log),
            "worker_snapshot": self._snapshot_blob is not None,
            "seq": self._seq,
            "replicas": (
                None
                if self._replicas is None
                else self._replicas.statistics(self._seq)
            ),
        }
        return info

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._replicas is not None:
            self._replicas.close()
        self._pool.shutdown()

    # -- pickling (group snapshots) --------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Pickle as the worker engine's snapshot blob plus proxy config.

        The pool is process-local and cannot travel; what a snapshot of a
        sharded group must preserve is the *engine state* inside each
        worker.  Pulling it here is what lets a whole process-executor
        group be snapshotted by the durability layer like any engine.
        """
        if self._local is not None:
            blob = self._local.snapshot()
        else:
            blob = self._call("snapshot")
        return {
            "name": self.name,
            "engine_kwargs": self._engine_kwargs,
            "injective": self._injective,
            "query_ids": list(self._query_ids),
            "snapshot_every": self.snapshot_every,
            "max_respawns": self.max_respawns,
            "respawn_window": self.respawn_window,
            "replicas": self.replica_target,
            "blob": blob,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Unpickle by spawning a fresh worker restored from the blob."""
        self.name = state["name"]
        self._engine_kwargs = dict(state["engine_kwargs"])
        self._injective = state["injective"]
        self._query_ids = list(state["query_ids"])
        self.snapshot_every = state["snapshot_every"]
        self.max_respawns = state["max_respawns"]
        self.respawn_window = state.get("respawn_window", 60.0)
        self.replica_target = int(state.get("replicas", 0))
        self.respawns = 0
        self.promotions = 0
        self.restarts = 0
        self.replayed_ops = 0
        self.degraded = False
        self._respawn_times = []
        self._local = None
        self._snapshot_blob = state["blob"]
        self._snapshot_seq = 0
        self._seq = 0
        self._ops_log = []
        self._closed = False
        self._pool = self._spawn_pool()
        self._restore_worker()
        self._replicas = None
        if self.replica_target:
            # Replicas re-seed from the restored primary's state.
            self._replicas = ReplicaSet(
                self.name,
                self._engine_kwargs,
                self._injective,
                self.replica_target,
                snapshot_provider=self._replica_seed,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_ProcessShardProxy({self.name!r}, queries={self.num_queries})"


class ShardedEngineGroup(ContinuousEngine):
    """N independent engine instances behind the single-engine interface.

    Parameters
    ----------
    engine:
        Engine name resolved through :data:`repro.engines.ENGINE_FACTORIES`
        (e.g. ``"TRIC+"``), or a zero-argument factory callable (one call
        per shard; not supported by the ``process`` executor, whose workers
        rebuild the engine from its registry name).
    num_shards:
        Number of independent shards (``>= 1``).
    assignment:
        ``"hash"`` (stable id hash, blind balance) or ``"label"``
        (label-affinity routing, clusters queries sharing edge labels).
    executor:
        How a batch fans out to the relevant shards: ``"serial"`` (one
        shard after another in-process — zero overhead, the default),
        ``"thread"`` (shards run on a thread pool; the engines share
        nothing, so the GIL is the only serialisation left), or
        ``"process"`` (each shard is a separate worker process driven over
        picklable command frames — true parallelism at the cost of IPC per
        batch).  Answers are byte-identical across executors.
    engine_kwargs:
        Extra keyword arguments forwarded to the named engine's factory
        (ignored when ``engine`` is already a callable).
    injective:
        Injective (isomorphism) answer semantics, forwarded to the shards.
    worker_snapshot_every:
        Process executor only: pull a recovery snapshot from each worker
        every this many state-changing commands (``None`` disables, making
        recovery replay the shard's whole command history).  The snapshot
        plus the command log since it is what a respawned worker is
        restored from.
    max_respawns:
        Process executor only: worker deaths a shard survives via
        respawn + restore before degrading gracefully to in-process serial
        execution.
    replicas:
        Process executor only: replica workers per shard.  Replicas
        bootstrap from the primary's snapshot, tail its acknowledged-ops
        log, absorb read traffic (``matches_of`` / ``has_matches`` /
        ``describe`` round-robin across them, byte-identical answers), and
        stand in for a dead primary via promotion.
    respawn_window:
        Process executor only: sliding window in seconds over which worker
        deaths count against ``max_respawns`` — a shard only degrades on a
        death *burst* inside the window, not on lifetime attrition.
        ``None`` restores the lifetime cap.
    """

    def __init__(
        self,
        engine: "str | EngineFactory" = "TRIC+",
        num_shards: int = 2,
        *,
        assignment: str = "hash",
        executor: str = "serial",
        injective: bool = False,
        engine_kwargs: Optional[Dict[str, object]] = None,
        worker_snapshot_every: Optional[int] = 32,
        max_respawns: int = 3,
        replicas: int = 0,
        respawn_window: Optional[float] = 60.0,
    ) -> None:
        super().__init__(injective=injective)
        if num_shards < 1:
            raise EngineError("num_shards must be at least 1")
        if assignment not in ("hash", "label"):
            raise EngineError(
                f"unknown shard assignment {assignment!r}; options: hash, label"
            )
        if executor not in SHARD_EXECUTORS:
            raise EngineError(
                f"unknown shard executor {executor!r}; options: "
                + ", ".join(SHARD_EXECUTORS)
            )
        if replicas < 0:
            raise EngineError("replicas must be non-negative")
        if replicas and executor != "process":
            raise EngineError(
                "replicas require the process executor (a replica is a "
                "worker process tailing its primary's op log)"
            )
        self.assignment = assignment
        self.executor = executor
        self.replicas_per_shard = replicas
        self.rolling_restarts = 0
        self._restart_lock: Optional[threading.Lock] = threading.Lock()
        kwargs = dict(engine_kwargs or {})
        if callable(engine):
            if executor == "process":
                raise EngineError(
                    "the process executor needs a named engine (its workers "
                    "rebuild the engine from the registry); pass the engine "
                    "name plus engine_kwargs instead of a factory callable"
                )
            factory = engine
        else:
            from ..engines import create_engine

            kwargs.setdefault("injective", injective)
            engine_name = engine
            factory = lambda: create_engine(engine_name, **kwargs)  # noqa: E731
        if executor == "process":
            # An explicit injective in engine_kwargs must win exactly as it
            # does on the in-process path (kwargs.setdefault above), so the
            # executors build semantically identical shard engines.
            worker_injective = bool(kwargs.get("injective", injective))
            worker_kwargs = {k: v for k, v in kwargs.items() if k != "injective"}
            self.shards: List[ContinuousEngine] = [
                _ProcessShardProxy(
                    engine,
                    worker_kwargs,
                    worker_injective,
                    snapshot_every=worker_snapshot_every,
                    max_respawns=max_respawns,
                    replicas=replicas,
                    respawn_window=respawn_window,
                )
                for _ in range(num_shards)
            ]
        else:
            self.shards = [factory() for _ in range(num_shards)]
        self.name = f"{self.shards[0].name}x{num_shards}"
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._closed = False
        #: query id -> owning shard index.
        self._owner: Dict[str, int] = {}
        #: per-shard query ids (the conservative affected fallback when a
        #: shard's engine cannot narrow its own report).
        self._shard_queries: List[Set[str]] = [set() for _ in self.shards]
        #: last known satisfied-set of each shard, piggybacked on every
        #: batch reply; the group's satisfied-set is their union (each
        #: query is owned by exactly one shard, so the union is exact).
        self._shard_satisfied: List[FrozenSet[str]] = [
            frozenset() for _ in self.shards
        ]
        #: per-shard edge labels in use (the fan-out filter).
        self._shard_labels: List[Set[str]] = [set() for _ in self.shards]
        #: per-shard fan-out metrics: batches executed and engine seconds
        #: spent (compute time inside the shard, IPC excluded for process
        #: shards), surfaced by :meth:`describe`.
        self._shard_batches: List[int] = [0 for _ in self.shards]
        self._shard_batch_seconds: List[float] = [0.0 for _ in self.shards]
        #: affected-set accounting across fan-outs (mean size per batch).
        self._fan_outs = 0
        self._affected_reported = 0
        #: label -> live multigraph edges carrying it (multiplicity-counted).
        #: This is what lets a shard that *gains* a label through a
        #: mid-stream registration be backfilled with the edges it never
        #: received — the sharded group's analogue of the engines'
        #: ``_backfill_chain`` — keeping its answers byte-identical to an
        #: unsharded engine's whenever queries are registered.  History
        #: mirrors the unsharded registry's retention rule: an edge is
        #: recorded only when a *registered* generalised key (anywhere in
        #: the group) matches it at arrival, so a late registration sees
        #: exactly what one engine indexing the whole query database would
        #: have retained.
        self._live_edges: Dict[str, Counter] = {}
        #: every generalised key registered by any query in the group.
        self._global_keys: Set[EdgeKey] = set()

    @property
    def num_shards(self) -> int:
        """Number of shards in the group."""
        return len(self.shards)

    # ------------------------------------------------------------------
    # Executor lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release executor resources (worker processes, thread pool).

        Idempotent.  Serial groups hold nothing and close trivially; the
        group stays usable for answer reads (``matches_of`` on in-process
        shards) but process shards are gone once closed.
        """
        if self._closed:
            return
        self._closed = True
        if self._thread_pool is not None:
            self._thread_pool.shutdown()
            self._thread_pool = None
        for shard in self.shards:
            if isinstance(shard, _ProcessShardProxy):
                shard.close()

    def __enter__(self) -> "ShardedEngineGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    def __getstate__(self) -> Dict[str, object]:
        """Pickle without the thread pool (snapshots of sharded groups).

        In-process shards pickle as themselves; process shards pickle as
        their worker-state blobs (see ``_ProcessShardProxy.__getstate__``),
        so unpickling a group respawns restored workers.  The unpickled
        group is open regardless of the original's closed flag — a restore
        is a fresh lease on life.
        """
        state = self.__dict__.copy()
        state["_thread_pool"] = None
        state["_restart_lock"] = None
        state["_closed"] = False
        return state

    # ------------------------------------------------------------------
    # Rolling restarts
    # ------------------------------------------------------------------
    def rolling_restart(self) -> Dict[str, object]:
        """Cycle every shard: drain → snapshot → respawn → tail-replay →
        resume.  Returns per-shard pause seconds.

        The group is driven one batch at a time, so the restart runs
        between batches with no ``MatchDelta`` frame in flight: each shard
        is drained by the synchronous snapshot pull, its replacement
        worker restores that snapshot (in-process shards swap through the
        same snapshot/restore pair), and the swap completes before the
        next batch — zero missed or duplicated frames, byte-identical
        answers.  A concurrent call raises
        :class:`~repro.graph.errors.PersistenceError`; sequential repeat
        calls are idempotent (each is just another restart cycle).
        """
        if self._closed:
            raise PersistenceError("cannot rolling-restart a closed engine group")
        if getattr(self, "_restart_lock", None) is None:
            # Unpickled groups travel without their lock.
            self._restart_lock = threading.Lock()
        if not self._restart_lock.acquire(blocking=False):
            raise PersistenceError("a rolling restart is already in progress")
        try:
            pauses: List[float] = []
            for index, shard in enumerate(self.shards):
                if isinstance(shard, _ProcessShardProxy):
                    pauses.append(shard.restart())
                else:
                    start = time.perf_counter()
                    self.shards[index] = ContinuousEngine.restore(shard.snapshot())
                    pauses.append(time.perf_counter() - start)
            self.rolling_restarts += 1
            return {
                "shards": len(self.shards),
                "pause_seconds": [round(pause, 6) for pause in pauses],
                "rolling_restarts": self.rolling_restarts,
            }
        finally:
            self._restart_lock.release()

    def replication_statistics(self) -> List[Dict[str, object]]:
        """Per-process-shard replication counters (cheap: no worker IPC).

        Empty for non-process executors.  Each entry reports the shard's
        promotions, respawns, restarts, degraded flag, acknowledged
        sequence, and — when replicas are attached — their read/reseed
        counters and journal-seq lag behind the primary.
        """
        return [
            shard.replication_info()
            for shard in self.shards
            if isinstance(shard, _ProcessShardProxy)
        ]

    def _pool(self) -> ThreadPoolExecutor:
        if self._closed:
            # Recreating the pool here would leak it: close() has already
            # run and will never shut the new one down.
            raise EngineError("sharded engine group is closed")
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=len(self.shards), thread_name_prefix="repro-shard"
            )
        return self._thread_pool

    # ------------------------------------------------------------------
    # Query assignment
    # ------------------------------------------------------------------
    def shard_of(self, query_id: str) -> int:
        """Owning shard index of a registered query."""
        self._require_known(query_id)
        return self._owner[query_id]

    def _assign(self, pattern: QueryGraphPattern) -> int:
        if self.assignment == "hash":
            return zlib.crc32(pattern.query_id.encode("utf-8")) % len(self.shards)
        # Label affinity: the shard already owning most of the pattern's
        # labels wins; ties break to the least-loaded (then lowest) shard,
        # which is also where a pattern of entirely new labels lands.
        # Affinity alone degenerates on small label alphabets (every query
        # shares labels with shard 0, so everything piles up there), so a
        # shard more than ~2x ahead of the lightest shard stops attracting
        # and the choice falls back to the remaining shards — bounded
        # imbalance, clustering preserved while it is balance-neutral.
        labels = pattern.edge_labels()
        loads = [shard.num_queries for shard in self.shards]
        cap = 2 * min(loads) + 3
        candidates = [index for index in range(len(loads)) if loads[index] <= cap]
        return min(
            candidates,
            key=lambda index: (
                -len(labels & self._shard_labels[index]),
                self.shards[index].num_queries,
                index,
            ),
        )

    def _index_query(self, pattern: QueryGraphPattern) -> None:
        index = self._assign(pattern)
        shard = self.shards[index]
        new_labels = pattern.edge_labels() - self._shard_labels[index]
        shard.register(pattern)
        self._owner[pattern.query_id] = index
        self._shard_queries[index].add(pattern.query_id)
        self._shard_labels[index].update(pattern.edge_labels())
        self._global_keys.update(edge.key for edge in pattern.edges)
        self._backfill_shard(shard, new_labels)

    def _backfill_shard(self, shard: ContinuousEngine, new_labels: Set[str]) -> None:
        """Feed a shard the live edges of labels it just started owning.

        A mid-stream registration must leave the owning shard consistent
        with the whole stream consumed so far, exactly like registering on
        an unsharded engine: edges of labels the shard already owned were
        delivered in real time (the engine's own backfill covers those);
        edges of freshly gained labels were filtered out by the fan-out and
        are replayed here, one copy per live multigraph multiplicity.  The
        replay is *silent* — like the engines' registration backfill it
        must not mark queries satisfied (a query only enters the
        satisfied-set through a later notification), so the shard's
        satisfied-set is restored afterwards (:func:`silent_backfill`,
        executed inside the worker for a process shard).
        """
        backfill = [
            Update(Edge(label, source, target))
            for label in sorted(new_labels)
            for (source, target), multiplicity in sorted(
                self._live_edges.get(label, Counter()).items()
            )
            for _ in range(multiplicity)
        ]
        if not backfill:
            return
        if isinstance(shard, _ProcessShardProxy):
            shard.backfill(backfill)
        else:
            silent_backfill(shard, backfill)

    def _record_history(self, edges: Sequence[Edge], kind: UpdateKind) -> None:
        live = self._live_edges
        if kind is UpdateKind.ADD:
            global_keys = self._global_keys
            for edge in edges:
                # Retention mirrors EdgeViewRegistry: an edge nobody's
                # registered keys match is dropped, exactly as a single
                # engine indexing every query would drop it.
                if not any(key in global_keys for key in candidate_keys_for_edge(edge)):
                    continue
                bucket = live.get(edge.label)
                if bucket is None:
                    bucket = live[edge.label] = Counter()
                bucket[(edge.source, edge.target)] += 1
        else:
            for edge in edges:
                bucket = live.get(edge.label)
                if bucket is None:
                    continue
                key: Tuple[str, str] = (edge.source, edge.target)
                remaining = bucket.get(key, 0)
                if remaining <= 1:
                    bucket.pop(key, None)
                    if not bucket:
                        del live[edge.label]
                else:
                    bucket[key] = remaining - 1

    # ------------------------------------------------------------------
    # Stream fan-out
    # ------------------------------------------------------------------
    def on_batch(self, updates: Sequence[Update]) -> BatchReport:
        """Process a micro-batch with *one* shard call per relevant shard.

        The base class splits a batch into per-kind runs and would fan each
        run out separately — on an interleaved add/delete stream that turns
        one micro-batch into hundreds of per-shard calls, which is pure
        overhead for the thread executor and pure IPC for the process
        executor.  The group instead hands every shard its full
        label-relevant *subsequence* of the batch (order and interleaving
        preserved) in a single call; the shard's own ``on_batch`` does the
        run splitting locally, with identical answer semantics.
        """
        updates = list(updates)
        if not updates:
            return BatchReport(affected=())
        self._updates_processed += len(updates)
        return self._fan_out_updates(updates)

    def _fan_out_updates(self, updates: Sequence[Update]) -> BatchReport:
        """Hand each shard its label-relevant subsequence, concurrently
        where the executor allows, and merge the per-shard reports.

        The merge is deterministic for every executor: per-shard results
        are collected in shard order and combine through set unions, so the
        outcome does not depend on completion order.  A shard that received
        no relevant update contributes nothing — its queries provably kept
        their answers, which keeps the merged ``affected`` set narrow.
        Each reply piggybacks the shard's satisfied-set, from which the
        group's own satisfied-set is rebuilt (exact: every query is owned
        by exactly one shard).
        """
        # Record history in stream order, one run of each kind at a time.
        additions = deletions = 0
        start = 0
        while start < len(updates):
            kind = updates[start].kind
            stop = start
            while stop < len(updates) and updates[stop].kind is kind:
                stop += 1
            run = [update.edge for update in updates[start:stop]]
            self._record_history(run, kind)
            if kind is UpdateKind.ADD:
                additions += len(run)
            else:
                deletions += len(run)
            start = stop
        jobs: List[Tuple[int, List[Update]]] = []
        for index, labels in enumerate(self._shard_labels):
            relevant = [update for update in updates if update.edge.label in labels]
            if relevant:
                jobs.append((index, relevant))
        if not jobs:
            return BatchReport(affected=())
        results = self._run_jobs(jobs)
        reports: List[BatchReport] = []
        for (index, _), (report, satisfied, seconds) in zip(jobs, results):
            self._shard_batches[index] += 1
            self._shard_batch_seconds[index] += seconds
            self._shard_satisfied[index] = frozenset(satisfied)
            if not isinstance(report, BatchReport) or report.affected is None:
                # Engine without a native report: conservatively treat every
                # query owned by this shard as affected (still far narrower
                # than "the whole query database").
                report = BatchReport(report, affected=self._shard_queries[index])
            reports.append(report)
        self._satisfied.clear()
        self._satisfied.update(*self._shard_satisfied)
        merged = BatchReport.merge(reports)
        self._fan_outs += 1
        self._affected_reported += len(merged.affected or ())
        # Re-stamp counters with the group-level update counts (a shard's
        # own counters would double-count edges relevant to several shards).
        return BatchReport(
            merged, affected=merged.affected, additions=additions, deletions=deletions
        )

    def _run_jobs(
        self, jobs: Sequence[Tuple[int, List[Update]]]
    ) -> List[Tuple[BatchReport, FrozenSet[str], float]]:
        """Execute per-shard batch jobs under the configured executor."""
        if self.executor == "process":
            # Start every worker first, then collect: the shards overlap.
            # Collection goes through each proxy's finish_batch, which is
            # where worker death is detected and supervised recovery (and
            # the exactly-once re-run of the in-flight batch) happens.
            futures = [self.shards[index].start_batch(updates) for index, updates in jobs]
            return [
                self.shards[index].finish_batch(future, updates)
                for (index, updates), future in zip(jobs, futures)
            ]
        if self.executor == "thread" and len(jobs) > 1:
            pool = self._pool()
            futures = [
                pool.submit(self._timed_batch, index, updates)
                for index, updates in jobs
            ]
            return [future.result() for future in futures]
        return [self._timed_batch(index, updates) for index, updates in jobs]

    def _timed_batch(
        self, index: int, updates: Sequence[Update]
    ) -> Tuple[BatchReport, FrozenSet[str], float]:
        shard = self.shards[index]
        start = time.perf_counter()
        if len(updates) == 1:
            report = shard.on_update(updates[0])
        else:
            report = shard.on_batch(updates)
        return report, shard.satisfied_queries(), time.perf_counter() - start

    def _on_addition(self, edge: Edge) -> FrozenSet[str]:
        return self._fan_out_updates([Update(edge, UpdateKind.ADD)])

    def _on_deletion(self, edge: Edge) -> FrozenSet[str]:
        return self._fan_out_updates([Update(edge, UpdateKind.DELETE)])

    def _on_addition_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        return self._fan_out_updates([Update(edge, UpdateKind.ADD) for edge in edges])

    def _on_deletion_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        return self._fan_out_updates(
            [Update(edge, UpdateKind.DELETE) for edge in edges]
        )

    # ------------------------------------------------------------------
    # Answers (routed to the owning shard)
    # ------------------------------------------------------------------
    def matches_of(self, query_id: str) -> List[Dict[str, str]]:
        """Answers of ``query_id``, served by its owning shard."""
        return self.shards[self.shard_of(query_id)].matches_of(query_id)

    def has_matches(self, query_id: str) -> bool:
        """Existence probe, served by the owning shard."""
        return self.shards[self.shard_of(query_id)].has_matches(query_id)

    def answer_delta_source(self, query_id: str) -> Optional[MaintainedAnswerSource]:
        """Maintained answer relation of the owning shard (if any).

        ``None`` for process shards — their relations live in the worker
        process, so delta consumers snapshot-diff ``matches_of`` instead.
        """
        return self.shards[self.shard_of(query_id)].answer_delta_source(query_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard_statistics(self) -> List[Dict[str, object]]:
        """Per-shard description dictionaries (queries, updates, memory...)."""
        return [shard.describe() for shard in self.shards]

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description["shards"] = self.num_shards
        description["assignment"] = self.assignment
        description["executor"] = self.executor
        description["shard_queries"] = [shard.num_queries for shard in self.shards]
        description["shard_labels"] = [len(labels) for labels in self._shard_labels]
        description["shard_batches"] = list(self._shard_batches)
        description["shard_batch_seconds"] = [
            round(seconds, 6) for seconds in self._shard_batch_seconds
        ]
        description["shard_batch_ms_mean"] = [
            round(seconds / batches * 1e3, 6) if batches else 0.0
            for seconds, batches in zip(self._shard_batch_seconds, self._shard_batches)
        ]
        description["affected_per_batch"] = (
            round(self._affected_reported / self._fan_outs, 3) if self._fan_outs else 0.0
        )
        if self.executor == "process":
            proxies = [
                shard for shard in self.shards
                if isinstance(shard, _ProcessShardProxy)
            ]
            description["shard_respawns"] = [proxy.respawns for proxy in proxies]
            description["shard_replayed_ops"] = [
                proxy.replayed_ops for proxy in proxies
            ]
            description["degraded_shards"] = sum(
                1 for proxy in proxies if proxy.degraded
            )
            description["shard_promotions"] = [proxy.promotions for proxy in proxies]
            description["shard_restarts"] = [proxy.restarts for proxy in proxies]
            description["replicas_per_shard"] = self.replicas_per_shard
            description["rolling_restarts"] = self.rolling_restarts
        description["per_shard"] = self.shard_statistics()
        return description

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedEngineGroup({self.shards[0].name!r}, "
            f"num_shards={self.num_shards}, queries={self.num_queries}, "
            f"executor={self.executor!r})"
        )
