"""Sharded engine groups: partition the query database across engines.

One engine instance indexes the whole query database; a
:class:`ShardedEngineGroup` partitions it across ``N`` independent engine
instances instead — the sharding step of a serving architecture (a broker
that fans work out to index shards and merges the per-shard results).  The
group itself implements the full
:class:`~repro.core.engine.ContinuousEngine` interface, so the replay
harness, the benchmarks and the :class:`~repro.pubsub.broker.SubscriptionBroker`
treat it exactly like a single engine:

* :meth:`register` assigns each query to one shard — ``hash`` assignment
  (stable CRC of the query id) balances blindly; ``label`` assignment
  routes a query to the shard already owning most of its edge labels,
  which clusters structurally related queries (maximising trie sharing
  inside each shard) and narrows the fan-out below,
* stream updates fan out only to the shards whose queries use the edge's
  label (an engine without the label ignores the update anyway — the
  group skips even handing it over),
* notifications, answers (``matches_of`` routes to the owning shard) and
  maintained answer-delta sources merge back through the group, and
  :meth:`describe` / :meth:`shard_statistics` expose per-shard metrics.

Because every query lives in exactly one shard — and a shard that *gains*
an edge label through a mid-stream registration is backfilled from the
group's live-edge history (recorded under the same key-matching retention
rule the unsharded registry applies) — the group's answers are
byte-identical to an unsharded engine's for any shard count, whether
queries are registered up front or while the stream is running.  The one
deliberate divergence: a pattern whose *literal-endpoint* key is first
registered after matching edges arrived reads those edges from the
backfill on a fresh shard, where a single engine's new (empty) view would
have dropped them — the group errs toward the oracle's semantics there.
"""

from __future__ import annotations

import zlib
from collections import Counter
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.engine import ContinuousEngine, MaintainedAnswerSource
from ..graph.elements import Edge, Update, UpdateKind
from ..graph.errors import EngineError
from ..query.pattern import QueryGraphPattern
from ..query.terms import EdgeKey, candidate_keys_for_edge

__all__ = ["ShardedEngineGroup"]

#: A zero-argument engine factory (one call per shard).
EngineFactory = Callable[[], ContinuousEngine]


class ShardedEngineGroup(ContinuousEngine):
    """N independent engine instances behind the single-engine interface.

    Parameters
    ----------
    engine:
        Engine name resolved through :data:`repro.engines.ENGINE_FACTORIES`
        (e.g. ``"TRIC+"``), or a zero-argument factory callable (one call
        per shard).
    num_shards:
        Number of independent shards (``>= 1``).
    assignment:
        ``"hash"`` (stable id hash, blind balance) or ``"label"``
        (label-affinity routing, clusters queries sharing edge labels).
    engine_kwargs:
        Extra keyword arguments forwarded to the named engine's factory
        (ignored when ``engine`` is already a callable).
    injective:
        Injective (isomorphism) answer semantics, forwarded to the shards.
    """

    def __init__(
        self,
        engine: "str | EngineFactory" = "TRIC+",
        num_shards: int = 2,
        *,
        assignment: str = "hash",
        injective: bool = False,
        engine_kwargs: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(injective=injective)
        if num_shards < 1:
            raise EngineError("num_shards must be at least 1")
        if assignment not in ("hash", "label"):
            raise EngineError(
                f"unknown shard assignment {assignment!r}; options: hash, label"
            )
        self.assignment = assignment
        if callable(engine):
            factory = engine
        else:
            from ..engines import create_engine

            kwargs = dict(engine_kwargs or {})
            kwargs.setdefault("injective", injective)
            engine_name = engine
            factory = lambda: create_engine(engine_name, **kwargs)  # noqa: E731
        self.shards: List[ContinuousEngine] = [factory() for _ in range(num_shards)]
        self.name = f"{self.shards[0].name}x{num_shards}"
        #: query id -> owning shard index.
        self._owner: Dict[str, int] = {}
        #: per-shard edge labels in use (the fan-out filter).
        self._shard_labels: List[Set[str]] = [set() for _ in self.shards]
        #: label -> live multigraph edges carrying it (multiplicity-counted).
        #: This is what lets a shard that *gains* a label through a
        #: mid-stream registration be backfilled with the edges it never
        #: received — the sharded group's analogue of the engines'
        #: ``_backfill_chain`` — keeping its answers byte-identical to an
        #: unsharded engine's whenever queries are registered.  History
        #: mirrors the unsharded registry's retention rule: an edge is
        #: recorded only when a *registered* generalised key (anywhere in
        #: the group) matches it at arrival, so a late registration sees
        #: exactly what one engine indexing the whole query database would
        #: have retained.
        self._live_edges: Dict[str, Counter] = {}
        #: every generalised key registered by any query in the group.
        self._global_keys: Set[EdgeKey] = set()

    @property
    def num_shards(self) -> int:
        """Number of shards in the group."""
        return len(self.shards)

    # ------------------------------------------------------------------
    # Query assignment
    # ------------------------------------------------------------------
    def shard_of(self, query_id: str) -> int:
        """Owning shard index of a registered query."""
        self._require_known(query_id)
        return self._owner[query_id]

    def _assign(self, pattern: QueryGraphPattern) -> int:
        if self.assignment == "hash":
            return zlib.crc32(pattern.query_id.encode("utf-8")) % len(self.shards)
        # Label affinity: the shard already owning most of the pattern's
        # labels wins; ties break to the least-loaded (then lowest) shard,
        # which is also where a pattern of entirely new labels lands.
        # Affinity alone degenerates on small label alphabets (every query
        # shares labels with shard 0, so everything piles up there), so a
        # shard more than ~2x ahead of the lightest shard stops attracting
        # and the choice falls back to the remaining shards — bounded
        # imbalance, clustering preserved while it is balance-neutral.
        labels = pattern.edge_labels()
        loads = [shard.num_queries for shard in self.shards]
        cap = 2 * min(loads) + 3
        candidates = [index for index in range(len(loads)) if loads[index] <= cap]
        return min(
            candidates,
            key=lambda index: (
                -len(labels & self._shard_labels[index]),
                self.shards[index].num_queries,
                index,
            ),
        )

    def _index_query(self, pattern: QueryGraphPattern) -> None:
        index = self._assign(pattern)
        shard = self.shards[index]
        new_labels = pattern.edge_labels() - self._shard_labels[index]
        shard.register(pattern)
        self._owner[pattern.query_id] = index
        self._shard_labels[index].update(pattern.edge_labels())
        self._global_keys.update(edge.key for edge in pattern.edges)
        self._backfill_shard(shard, new_labels)

    def _backfill_shard(self, shard: ContinuousEngine, new_labels: Set[str]) -> None:
        """Feed a shard the live edges of labels it just started owning.

        A mid-stream registration must leave the owning shard consistent
        with the whole stream consumed so far, exactly like registering on
        an unsharded engine: edges of labels the shard already owned were
        delivered in real time (the engine's own backfill covers those);
        edges of freshly gained labels were filtered out by the fan-out and
        are replayed here, one copy per live multigraph multiplicity.  The
        replay is *silent* — like the engines' registration backfill it
        must not mark queries satisfied (a query only enters the
        satisfied-set through a later notification), so the shard's
        satisfied-set is restored afterwards.
        """
        backfill = [
            Update(Edge(label, source, target))
            for label in sorted(new_labels)
            for (source, target), multiplicity in sorted(
                self._live_edges.get(label, Counter()).items()
            )
            for _ in range(multiplicity)
        ]
        if not backfill:
            return
        satisfied_before = shard.satisfied_queries()
        shard.on_batch(backfill)
        shard._satisfied.clear()
        shard._satisfied.update(satisfied_before)

    def _record_history(self, edges: Sequence[Edge], kind: UpdateKind) -> None:
        live = self._live_edges
        if kind is UpdateKind.ADD:
            global_keys = self._global_keys
            for edge in edges:
                # Retention mirrors EdgeViewRegistry: an edge nobody's
                # registered keys match is dropped, exactly as a single
                # engine indexing every query would drop it.
                if not any(key in global_keys for key in candidate_keys_for_edge(edge)):
                    continue
                bucket = live.get(edge.label)
                if bucket is None:
                    bucket = live[edge.label] = Counter()
                bucket[(edge.source, edge.target)] += 1
        else:
            for edge in edges:
                bucket = live.get(edge.label)
                if bucket is None:
                    continue
                key: Tuple[str, str] = (edge.source, edge.target)
                remaining = bucket.get(key, 0)
                if remaining <= 1:
                    bucket.pop(key, None)
                    if not bucket:
                        del live[edge.label]
                else:
                    bucket[key] = remaining - 1

    # ------------------------------------------------------------------
    # Stream fan-out
    # ------------------------------------------------------------------
    def _relevant_shards(self, label: str) -> List[int]:
        return [
            index
            for index, labels in enumerate(self._shard_labels)
            if label in labels
        ]

    def _fan_out(self, edges: Sequence[Edge], kind: UpdateKind) -> FrozenSet[str]:
        """Hand each shard its label-relevant slice of the run, merge ids."""
        self._record_history(edges, kind)
        merged: Set[str] = set()
        for index, shard in enumerate(self.shards):
            labels = self._shard_labels[index]
            relevant = [edge for edge in edges if edge.label in labels]
            if not relevant:
                continue
            if len(relevant) == 1:
                merged.update(shard.on_update(Update(relevant[0], kind)))
            else:
                merged.update(
                    shard.on_batch([Update(edge, kind) for edge in relevant])
                )
        return frozenset(merged)

    def _on_addition(self, edge: Edge) -> FrozenSet[str]:
        return self._fan_out([edge], UpdateKind.ADD)

    def _on_deletion(self, edge: Edge) -> FrozenSet[str]:
        return self._fan_out([edge], UpdateKind.DELETE)

    def _on_addition_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        return self._fan_out(edges, UpdateKind.ADD)

    def _on_deletion_batch(self, edges: Sequence[Edge]) -> FrozenSet[str]:
        return self._fan_out(edges, UpdateKind.DELETE)

    # ------------------------------------------------------------------
    # Answers (routed to the owning shard)
    # ------------------------------------------------------------------
    def matches_of(self, query_id: str) -> List[Dict[str, str]]:
        """Answers of ``query_id``, served by its owning shard."""
        return self.shards[self.shard_of(query_id)].matches_of(query_id)

    def has_matches(self, query_id: str) -> bool:
        """Existence probe, served by the owning shard."""
        return self.shards[self.shard_of(query_id)].has_matches(query_id)

    def answer_delta_source(self, query_id: str) -> Optional[MaintainedAnswerSource]:
        """Maintained answer relation of the owning shard (if any)."""
        return self.shards[self.shard_of(query_id)].answer_delta_source(query_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard_statistics(self) -> List[Dict[str, object]]:
        """Per-shard description dictionaries (queries, updates, memory...)."""
        return [shard.describe() for shard in self.shards]

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description["shards"] = self.num_shards
        description["assignment"] = self.assignment
        description["shard_queries"] = [shard.num_queries for shard in self.shards]
        description["shard_labels"] = [len(labels) for labels in self._shard_labels]
        description["per_shard"] = self.shard_statistics()
        return description

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedEngineGroup({self.shards[0].name!r}, "
            f"num_shards={self.num_shards}, queries={self.num_queries})"
        )
