"""Engine registry: build any of the seven evaluated engines by name.

The benchmark harness, the examples, and the tests all construct engines
through this registry so that the set of algorithms under evaluation is
defined in exactly one place.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .baselines.graphdb_engine import GraphDBEngine
from .baselines.inc import INCEngine, INCPlusEngine
from .baselines.inv import INVEngine, INVPlusEngine
from .baselines.naive import NaiveEngine
from .core.engine import ContinuousEngine
from .core.tric import TRICEngine, TRICPlusEngine
from .graph.errors import EngineError

__all__ = [
    "ENGINE_FACTORIES",
    "ENGINE_STRATEGIES",
    "PAPER_ENGINES",
    "CLUSTERING_ENGINES",
    "ANSWER_MATERIALISING_ENGINES",
    "available_engines",
    "create_engine",
    "create_engines",
    "create_sharded_engine",
]

#: Engine name -> zero-argument-friendly factory (keyword args forwarded).
ENGINE_FACTORIES: Dict[str, Callable[..., ContinuousEngine]] = {
    "TRIC": TRICEngine,
    "TRIC+": TRICPlusEngine,
    "INV": INVEngine,
    "INV+": INVPlusEngine,
    "INC": INCEngine,
    "INC+": INCPlusEngine,
    "GraphDB": GraphDBEngine,
    "Naive": NaiveEngine,
}

#: One-line strategy of each engine — the re-differentiated matrix surfaced
#: by ``repro-bench --list-engines`` (base engines probe existence and join
#: on demand; ``+`` engines additionally materialise polled answer sets).
ENGINE_STRATEGIES: Dict[str, str] = {
    "TRIC": "trie-clustered covering paths, delta joins, witness-probe notifications",
    "TRIC+": "TRIC + maintained counted answer relations (O(answer) matches_of, O(1) invalidation)",
    "INV": "inverted edge indexes, full path re-materialization per update",
    "INV+": "INV + cached answer sets (patched on additions, recomputed on deletions)",
    "INC": "INV indexes with update-seeded incremental path joins",
    "INC+": "INC + cached answer sets (patched on additions, recomputed on deletions)",
    "GraphDB": "embedded property-graph store, affected queries re-executed per batch",
    "Naive": "full re-evaluation oracle (correctness reference)",
}

#: The seven algorithms compared throughout the paper's evaluation.
PAPER_ENGINES = ("TRIC", "TRIC+", "INV", "INV+", "INC", "INC+", "GraphDB")

#: The engines that exploit clustering / trie sharing.
CLUSTERING_ENGINES = ("TRIC", "TRIC+")

#: The re-differentiated ``+`` tier: base algorithm + maintained answer
#: materialisation for ``matches_of`` (see ``repro.matching.answers``).
ANSWER_MATERIALISING_ENGINES = ("TRIC+", "INV+", "INC+")


def available_engines() -> List[str]:
    """Names of every engine the registry can build."""
    return list(ENGINE_FACTORIES)


def create_engine(name: str, **kwargs) -> ContinuousEngine:
    """Instantiate the engine called ``name`` (e.g. ``"TRIC+"``).

    Keyword arguments (such as ``injective=True``) are forwarded to the
    engine constructor.
    """
    factory = ENGINE_FACTORIES.get(name)
    if factory is None:
        raise EngineError(
            f"unknown engine {name!r}; available engines: {', '.join(ENGINE_FACTORIES)}"
        )
    return factory(**kwargs)


def create_engines(names=PAPER_ENGINES, **kwargs) -> Dict[str, ContinuousEngine]:
    """Instantiate several engines at once, keyed by name."""
    return {name: create_engine(name, **kwargs) for name in names}


def create_sharded_engine(
    name: str,
    num_shards: int = 1,
    *,
    assignment: str = "hash",
    executor: str = "serial",
    journal_dir: "str | None" = None,
    snapshot_every: "int | None" = None,
    journal_fsync: bool = True,
    replicas: int = 0,
    respawn_window: "float | None" = 60.0,
    **kwargs,
) -> ContinuousEngine:
    """Engine ``name``, sharded across ``num_shards`` instances when > 1.

    With ``num_shards <= 1`` (and no replicas) this is exactly
    :func:`create_engine`; otherwise the query database is partitioned
    across independent engine instances behind a
    :class:`~repro.pubsub.sharding.ShardedEngineGroup` (``assignment`` is
    ``"hash"`` or ``"label"``; ``executor`` is ``"serial"``, ``"thread"``
    or ``"process"`` and decides how a batch fans out to the relevant
    shards).  Keyword arguments are forwarded to the underlying engine
    factory either way.

    ``replicas`` (process executor only) attaches that many replica
    workers to every shard: they bootstrap from the primary's snapshot,
    tail its acknowledged-ops log, absorb ``matches_of`` /
    ``has_matches`` / ``describe`` traffic, and stand in for a dead
    primary via promotion.  A single-shard engine with replicas is still
    built as a (one-shard) group, since replication lives in the shard
    proxy.  ``respawn_window`` bounds how long worker deaths count
    against the shard's respawn budget (``None``: lifetime cap).

    ``journal_dir`` makes the result durable: the engine (or the whole
    sharded group) is wrapped in a
    :class:`~repro.persistence.durable.DurableEngine` that write-ahead
    journals every registration and micro-batch into that directory
    (fsync-on-batch unless ``journal_fsync`` is off) and snapshots the
    full state every ``snapshot_every`` records, so
    :meth:`DurableEngine.recover <repro.persistence.durable.DurableEngine.recover>`
    resumes byte-identically after a crash.
    """
    if journal_dir is not None:
        from .persistence import DurableEngine

        engine = create_sharded_engine(
            name,
            num_shards,
            assignment=assignment,
            executor=executor,
            replicas=replicas,
            respawn_window=respawn_window,
            **kwargs,
        )
        return DurableEngine(
            engine, journal_dir, snapshot_every=snapshot_every, fsync=journal_fsync
        )
    if num_shards <= 1 and replicas <= 0:
        return create_engine(name, **kwargs)
    if name not in ENGINE_FACTORIES:
        raise EngineError(
            f"unknown engine {name!r}; available engines: {', '.join(ENGINE_FACTORIES)}"
        )
    from .pubsub.sharding import ShardedEngineGroup

    injective = bool(kwargs.pop("injective", False))
    return ShardedEngineGroup(
        name,
        max(1, num_shards),
        assignment=assignment,
        executor=executor,
        injective=injective,
        engine_kwargs=kwargs,
        replicas=replicas,
        respawn_window=respawn_window,
    )
