"""Continuous multi-query processing over graph streams.

A faithful, pure-Python reproduction of *"Efficient Continuous Multi-Query
Processing over Graph Streams"* (Zervakis et al., EDBT 2020): the TRIC /
TRIC+ trie-clustering engines, the INV / INC inverted-index baselines, an
embedded property-graph database baseline, synthetic dataset generators for
the paper's three workloads, and a benchmark harness regenerating every
figure of the paper's evaluation.

Quickstart
----------
>>> from repro import QueryBuilder, TRICEngine, add
>>> engine = TRICEngine()
>>> engine.register(
...     QueryBuilder("checkin")
...     .edge("knows", "?a", "?b")
...     .edge("checksIn", "?a", "?place")
...     .edge("checksIn", "?b", "?place")
...     .build()
... )
>>> engine.on_update(add("knows", "alice", "bob"))
frozenset()
>>> engine.on_update(add("checksIn", "alice", "rio"))
frozenset()
>>> sorted(engine.on_update(add("checksIn", "bob", "rio")))
['checkin']
"""

from .baselines import (
    GraphDBEngine,
    INCEngine,
    INCPlusEngine,
    INVEngine,
    INVPlusEngine,
    NaiveEngine,
)
from .core import BatchReport, ContinuousEngine, TRICEngine, TRICPlusEngine
from .engines import (
    ANSWER_MATERIALISING_ENGINES,
    CLUSTERING_ENGINES,
    ENGINE_FACTORIES,
    ENGINE_STRATEGIES,
    PAPER_ENGINES,
    available_engines,
    create_engine,
    create_engines,
    create_sharded_engine,
)
from .graph import (
    Edge,
    Graph,
    GraphStream,
    ReproError,
    Update,
    UpdateKind,
    add,
    delete,
)
from .persistence import (
    DeltaJournal,
    DurableEngine,
    FaultInjector,
    InjectedCrash,
)
from .pubsub import (
    MatchDelta,
    NotificationLog,
    OverflowPolicy,
    ShardedEngineGroup,
    Subscription,
    SubscriptionBroker,
)
from .query import (
    CoveringPath,
    QueryBuilder,
    QueryGraphPattern,
    QueryWorkload,
    QueryWorkloadConfig,
    QueryWorkloadGenerator,
    covering_paths,
    generate_workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph model
    "Edge",
    "Update",
    "UpdateKind",
    "Graph",
    "GraphStream",
    "add",
    "delete",
    "ReproError",
    # query model
    "QueryBuilder",
    "QueryGraphPattern",
    "CoveringPath",
    "covering_paths",
    "QueryWorkload",
    "QueryWorkloadConfig",
    "QueryWorkloadGenerator",
    "generate_workload",
    # engines
    "BatchReport",
    "ContinuousEngine",
    "TRICEngine",
    "TRICPlusEngine",
    "INVEngine",
    "INVPlusEngine",
    "INCEngine",
    "INCPlusEngine",
    "GraphDBEngine",
    "NaiveEngine",
    "ENGINE_FACTORIES",
    "ENGINE_STRATEGIES",
    "PAPER_ENGINES",
    "CLUSTERING_ENGINES",
    "ANSWER_MATERIALISING_ENGINES",
    "available_engines",
    "create_engine",
    "create_engines",
    "create_sharded_engine",
    # pub/sub serving layer
    "SubscriptionBroker",
    "Subscription",
    "MatchDelta",
    "OverflowPolicy",
    "ShardedEngineGroup",
    "NotificationLog",
    # durability & crash recovery
    "DurableEngine",
    "DeltaJournal",
    "FaultInjector",
    "InjectedCrash",
]
