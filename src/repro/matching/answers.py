"""Maintained answer materialisation: the subsystem behind the ``+`` engines.

The base engines (TRIC, INV, INC) answer *notifications* — "did this query
gain or lose answers?" — through existence probes that stop at the first
witness, and compute the full answer set of a query only on demand, by
joining its covering-path relations.  The ``+`` variants (TRIC+, INV+, INC+)
additionally *materialise* each polled query's answer relation and keep it
maintained, so :meth:`~repro.core.engine.ContinuousEngine.matches_of`
becomes an O(answer-set) decode instead of a cross-path join, and deletion
invalidation of a polled query becomes an O(1) emptiness check.

Two maintenance strategies live here, matching the two engine families:

:class:`MaterializedAnswers`
    Exact *counting-based* maintenance for engines with maintained per-path
    binding relations (TRIC+).  The answer relation is a
    :class:`~repro.matching.relation.CountedRelation` whose support counts
    equal the number of derivations — combinations of one visible binding
    per covering path — of each answer.  Positive and negative binding
    deltas from the engine's delta pipeline are joined against the *other*
    paths' binding relations (through their maintained indexes) and patch
    the relation in place; an answer disappears exactly when its last
    derivation dies.

:class:`AnswerSetCache`
    Set-semantics caching for recompute-style engines without maintained
    per-path state (INV+, INC+).  Additions are absorbed exactly — any
    answer created by a batch is derivable from the batch's delta rows, so
    unioning the engine's delta bindings into the cache is lossless — while
    deletions mark the cache dirty: invalidation keeps using the engines'
    O(witness) existence probe, and the recompute (which the base variants
    performed on *every* ``matches_of`` call) is deferred to the next
    poll.

Both classes are deliberately engine-agnostic: they hold no references to
views, tries, or inverted indexes, only to a
:class:`~repro.matching.plans.QueryEvaluationPlan` and whatever relations
the engine hands them.

Answer-ordering note: engines decode these relations through
:func:`~repro.matching.plans.bindings_to_dicts`, which canonicalises the
output order — a materialised answer relation with the same *rows* as a
fresh evaluation therefore yields a byte-identical ``matches_of`` list.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from .plans import QueryEvaluationPlan
from .relation import CountedRelation, Relation, Row

__all__ = ["MaterializedAnswers", "AnswerSetCache"]

#: A visibility change of one per-path binding: ``(binding, +1)`` when the
#: binding became visible in its path's binding relation, ``(binding, -1)``
#: when it disappeared (support dropped to zero).
BindingDelta = Tuple[Row, int]


class MaterializedAnswers:
    """Counted, maintained answer relation of one query (TRIC+ strategy).

    The relation's rows are tuples over the plan's
    :attr:`~repro.matching.plans.QueryEvaluationPlan.variable_names`; the
    support count of a row is the number of *derivations* currently
    producing it — combinations of one visible binding per covering path
    that join to the answer (and pass the injectivity filter when the
    engine requires isomorphism semantics).

    Lifecycle
    ---------
    A maintainer starts *stale*.  :meth:`rebuild` computes the relation
    from the query's current binding relations (one enumeration pass, one
    ``add`` per derivation).  From then on the owning engine must feed
    every binding-visibility change through :meth:`apply_binding_deltas`
    *in the order the binding relations are patched*: when the engine
    patches path ``i``, paths ``< i`` are already at their new state and
    paths ``> i`` still at their old state, which is exactly the
    sequential inclusion–exclusion order that makes counted multi-way
    join maintenance exact.  Wholesale changes to any binding relation
    (an epoch bump) must :meth:`mark_stale` the maintainer, which ignores
    further deltas until the next :meth:`rebuild`.
    """

    __slots__ = ("plan", "injective", "relation", "_stale", "_over_budget")

    def __init__(self, plan: QueryEvaluationPlan, *, injective: bool = False) -> None:
        self.plan = plan
        self.injective = injective
        self.relation: CountedRelation = CountedRelation(plan.variable_names)
        self._stale = True
        self._over_budget = False

    @property
    def stale(self) -> bool:
        """``True`` while the relation needs a :meth:`rebuild`."""
        return self._stale

    @property
    def over_budget(self) -> bool:
        """``True`` when the last budgeted :meth:`rebuild` hit its row cap.

        An over-budget maintainer stays stale and the owning engine spills
        the query to the on-demand evaluation paths (``evaluate_full`` for
        answers, the ``limit=1`` witness probe for invalidation) instead of
        re-enumerating a huge answer set on every poll.  The flag clears on
        :meth:`mark_stale` — a wholesale change is the signal to retry.
        """
        return self._over_budget

    def mark_stale(self) -> None:
        """Invalidate the relation (a binding relation changed wholesale)."""
        self._stale = True
        self._over_budget = False

    def rebuild(self, binding_relations: Sequence[Relation], *, row_cap: int | None = None) -> bool:
        """Recompute the relation from the current ``binding_relations``.

        Enumerates every derivation through the plan's backtracking
        program (probing the binding relations' maintained indexes), so
        the cost is proportional to the number of derivations, not to the
        cross product of the path relations.

        With ``row_cap`` the enumeration is *budgeted*: once more than
        ``row_cap`` distinct answers exist the rebuild aborts, the
        maintainer stays stale and flags itself :attr:`over_budget`, and
        ``False`` is returned — the owning engine then serves the query
        through the on-demand ``evaluate_full`` / witness paths, bounding
        first-poll latency on huge answer sets.  Returns ``True`` when the
        relation was (re)built.
        """
        relation = CountedRelation(self.plan.variable_names)
        if all(rel.rows for rel in binding_relations):
            for answer in self.plan.iter_derivations(
                binding_relations, injective=self.injective
            ):
                relation.add(answer)
                if row_cap is not None and len(relation) > row_cap:
                    self._over_budget = True
                    return False
        self.relation = relation
        self._stale = False
        self._over_budget = False
        return True

    def apply_binding_deltas(
        self,
        path_index: int,
        deltas: Iterable[BindingDelta],
        binding_relations: Sequence[Relation],
    ) -> None:
        """Patch the relation with one path's binding-visibility deltas.

        ``deltas`` are the visibility changes of path ``path_index``'s
        binding relation, in log order.  Each delta binding is extended
        across the *other* paths' binding relations (at their current
        state — see the class docstring for why that ordering is exact)
        and every resulting derivation adds or retracts one unit of
        support for its answer.  No-op while :attr:`stale`.
        """
        if self._stale:
            return
        relation = self.relation
        plan = self.plan
        for binding, sign in deltas:
            derivations = plan.iter_delta_derivations(
                path_index, binding, binding_relations, injective=self.injective
            )
            if sign > 0:
                for answer in derivations:
                    relation.add(answer)
            else:
                for answer in derivations:
                    relation.remove(answer)

    def __len__(self) -> int:
        return len(self.relation)

    def __bool__(self) -> bool:
        return bool(self.relation)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "stale" if self._stale else f"answers={len(self.relation)}"
        return f"MaterializedAnswers({state})"


class AnswerSetCache:
    """Set-semantics materialised answers (INV+ / INC+ strategy).

    Engines without maintained per-path binding relations cannot attribute
    a retracted base tuple to the answers it supported, so this cache
    patches additions exactly and invalidates lazily on deletions:

    * :meth:`absorb_new` unions a batch's *delta bindings* (the answers
      derivable using at least one new base tuple — which the engine
      already computes for its notification decision) into the relation.
      This is lossless: every answer present after a batch of additions
      either existed before or uses a new tuple.
    * :meth:`mark_dirty` records that a deletion may have removed cached
      answers.  A dirty cache is *not* recomputed eagerly — the engine's
      deletion-time invalidation keeps using the O(witness) existence
      probe — but the next actual poll refreshes it through
      :meth:`reset_to` (the same full evaluation the non-materialising
      engine would run inside every ``matches_of``).

    The cache is born dirty, so the first poll computes it.
    """

    __slots__ = ("relation", "_dirty")

    def __init__(self, plan: QueryEvaluationPlan) -> None:
        self.relation = Relation(plan.variable_names)
        self._dirty = True

    @property
    def dirty(self) -> bool:
        """``True`` while a deletion may have invalidated cached answers."""
        return self._dirty

    def mark_dirty(self) -> None:
        """Record a deletion touching this query (refresh deferred to the
        next poll)."""
        self._dirty = True

    def absorb_new(self, new_bindings: Relation) -> None:
        """Union the answers of a positive delta into the cache.

        A no-op while dirty: the pending refresh recomputes everything
        anyway, so patching a known-stale relation is wasted work.
        """
        if not self._dirty:
            self.relation.add_all(new_bindings.rows)

    def reset_to(self, bindings: Relation) -> None:
        """Replace the cached answers wholesale (poll-time refresh)."""
        self.relation.replace_rows(bindings.rows)
        self._dirty = False

    def __len__(self) -> int:
        return len(self.relation)

    def __bool__(self) -> bool:
        return bool(self.relation)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "dirty, " if self._dirty else ""
        return f"AnswerSetCache({state}answers={len(self.relation)})"
