"""Join-structure caching used by the ``+`` engine variants (TRIC+, INV+, INC+).

Section 4.2 of the paper ("Caching") observes that the hash-join build phase
repeatedly reconstructs the same hash tables for the same materialized views.
The ``+`` variants keep those build-side structures and update them
incrementally instead of rebuilding them from scratch.

:class:`JoinCache` keys build-side hash tables by ``(relation uid, key
columns)`` and tracks the relation version it was built against.  When the
relation has since gained rows, the cached table is *patched* with only the
new rows (cheap) rather than rebuilt; when rows were removed the entry is
rebuilt from scratch.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .relation import Relation, Row

__all__ = ["JoinCache", "CacheStatistics"]


class CacheStatistics:
    """Counters describing how effective a :class:`JoinCache` has been."""

    __slots__ = ("hits", "misses", "incremental_patches", "rebuilds")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.incremental_patches = 0
        self.rebuilds = 0

    @property
    def lookups(self) -> int:
        """Total number of build-side requests."""
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "incremental_patches": self.incremental_patches,
            "rebuilds": self.rebuilds,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheStatistics(hits={self.hits}, misses={self.misses}, "
            f"patches={self.incremental_patches}, rebuilds={self.rebuilds})"
        )


class _CacheEntry:
    __slots__ = ("index", "version", "log_position", "removal_version")

    def __init__(
        self,
        index: Dict[Tuple[str, ...], List[Row]],
        version: int,
        log_position: int,
        removal_version: int,
    ) -> None:
        self.index = index
        self.version = version
        self.log_position = log_position
        self.removal_version = removal_version


class JoinCache:
    """Cache of hash-join build-side tables keyed by relation and key columns."""

    def __init__(self, max_entries: int | None = None) -> None:
        self._entries: Dict[Tuple[int, Tuple[int, ...]], _CacheEntry] = {}
        self._max_entries = max_entries
        self.statistics = CacheStatistics()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every cached structure."""
        self._entries.clear()

    def build_index(
        self, relation: Relation, key_positions: Tuple[int, ...]
    ) -> Dict[Tuple[str, ...], List[Row]]:
        """Return a build-side hash table for ``relation`` keyed by ``key_positions``.

        The table maps key tuples to the list of rows carrying that key.  The
        caller must treat the returned mapping as read-only.
        """
        cache_key = (relation.uid, key_positions)
        entry = self._entries.get(cache_key)
        if entry is not None and entry.removal_version == relation.last_removal_version:
            if entry.version == relation.version:
                self.statistics.hits += 1
                return entry.index
            # Rows were only appended since the entry was built: patch the
            # build table with just the new rows from the append log.
            self.statistics.hits += 1
            self.statistics.incremental_patches += 1
            for row in relation.appended_since(entry.log_position):
                key = tuple(row[i] for i in key_positions)
                entry.index.setdefault(key, []).append(row)
            entry.log_position = relation.log_length
            entry.version = relation.version
            return entry.index

        self.statistics.misses += 1
        if entry is not None:
            self.statistics.rebuilds += 1
        index: Dict[Tuple[str, ...], List[Row]] = {}
        for row in relation.rows:
            key = tuple(row[i] for i in key_positions)
            index.setdefault(key, []).append(row)
        self._entries[cache_key] = _CacheEntry(
            index, relation.version, relation.log_length, relation.last_removal_version
        )
        self._evict_if_needed()
        return index

    def invalidate(self, relation: Relation) -> None:
        """Forget every cached structure derived from ``relation``."""
        stale = [key for key in self._entries if key[0] == relation.uid]
        for key in stale:
            del self._entries[key]

    def _evict_if_needed(self) -> None:
        if self._max_entries is None:
            return
        while len(self._entries) > self._max_entries:
            # FIFO eviction keeps the implementation simple and deterministic.
            oldest = next(iter(self._entries))
            del self._entries[oldest]
