"""Join-structure caching (historical ``+`` engine variants; now legacy).

Section 4.2 of the paper ("Caching") observes that the hash-join build phase
repeatedly reconstructs the same hash tables for the same materialized views.
The ``+`` variants kept those build-side structures here and updated them
incrementally instead of rebuilding them from scratch.

That role has since been subsumed by the relations' own *maintained indexes*
(:meth:`repro.matching.relation.Relation.ensure_index`), which live on the
relation, are patched by its mutations directly, and need no version
bookkeeping.  :class:`JoinCache` is retained for the legacy
``deletion_strategy="rebuild"`` comparison path and for callers that pass an
explicit cache to :func:`repro.matching.relation.natural_join`.

:class:`JoinCache` keys build-side hash tables by ``(relation uid, key
columns)`` and tracks the relation version it was built against.  When the
relation has since changed, the cached table is *patched* by replaying the
relation's signed delta log: appended rows are inserted into their buckets
and removed rows are deleted from them, so deletions are as cheap to absorb
as additions.  Only a wholesale replacement of the relation (an epoch bump)
forces a rebuild from scratch.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .relation import Relation, Row

__all__ = ["JoinCache", "CacheStatistics"]


class CacheStatistics:
    """Counters describing how effective a :class:`JoinCache` has been."""

    __slots__ = ("hits", "misses", "incremental_patches", "removal_patches", "rebuilds")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.incremental_patches = 0
        self.removal_patches = 0
        self.rebuilds = 0

    @property
    def lookups(self) -> int:
        """Total number of build-side requests."""
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "incremental_patches": self.incremental_patches,
            "removal_patches": self.removal_patches,
            "rebuilds": self.rebuilds,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheStatistics(hits={self.hits}, misses={self.misses}, "
            f"patches={self.incremental_patches}, removals={self.removal_patches}, "
            f"rebuilds={self.rebuilds})"
        )


class _CacheEntry:
    __slots__ = ("index", "version", "log_position", "epoch")

    def __init__(
        self,
        index: Dict[Tuple[str, ...], List[Row]],
        version: int,
        log_position: int,
        epoch: int,
    ) -> None:
        self.index = index
        self.version = version
        self.log_position = log_position
        self.epoch = epoch


class JoinCache:
    """Cache of hash-join build-side tables keyed by relation and key columns."""

    def __init__(self, max_entries: int | None = None) -> None:
        self._entries: Dict[Tuple[int, Tuple[int, ...]], _CacheEntry] = {}
        self._max_entries = max_entries
        self.statistics = CacheStatistics()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every cached structure."""
        self._entries.clear()

    def build_index(
        self, relation: Relation, key_positions: Tuple[int, ...]
    ) -> Dict[Tuple[str, ...], List[Row]]:
        """Return a build-side hash table for ``relation`` keyed by ``key_positions``.

        The table maps key tuples to the list of rows carrying that key.  The
        caller must treat the returned mapping as read-only.
        """
        cache_key = (relation.uid, key_positions)
        entry = self._entries.get(cache_key)
        if entry is not None and entry.epoch == relation.epoch:
            if entry.version == relation.version:
                self.statistics.hits += 1
                return entry.index
            if self._patch_entry(entry, relation, key_positions):
                self.statistics.hits += 1
                self.statistics.incremental_patches += 1
                return entry.index
            # The entry diverged from the relation (should not happen):
            # self-heal by falling through to a full rebuild.

        self.statistics.misses += 1
        if entry is not None:
            # Wholesale replacement (epoch bump) or a failed patch: rebuild.
            self.statistics.rebuilds += 1
        index: Dict[Tuple[str, ...], List[Row]] = {}
        for row in relation.rows:
            key = tuple(row[i] for i in key_positions)
            index.setdefault(key, []).append(row)
        self._entries[cache_key] = _CacheEntry(
            index, relation.version, relation.log_length, relation.epoch
        )
        self._evict_if_needed()
        return index

    def _patch_entry(
        self, entry: _CacheEntry, relation: Relation, key_positions: Tuple[int, ...]
    ) -> bool:
        """Replay the relation's signed delta log against a build table.

        The deltas are collapsed to their *net* visibility effect per row
        (a row removed and re-added cancels out), removals are applied with
        one filtering pass per affected bucket instead of one list scan per
        row, and appends are bulk-extended.  Returns ``False`` — leaving the
        entry untouched for a rebuild — when a removal does not match the
        bucket contents, which would mean the table diverged from its
        relation.
        """
        net: Dict[Row, int] = {}
        for row, sign in relation.deltas_since(entry.log_position):
            net[row] = net.get(row, 0) + sign
        added_by_key: Dict[Tuple[str, ...], List[Row]] = {}
        removed_by_key: Dict[Tuple[str, ...], Set[Row]] = {}
        for row, effect in net.items():
            if effect == 0:
                continue
            key = tuple(row[i] for i in key_positions)
            if effect > 0:
                added_by_key.setdefault(key, []).append(row)
            else:
                removed_by_key.setdefault(key, set()).add(row)

        index = entry.index
        replacements: Dict[Tuple[str, ...], List[Row]] = {}
        for key, removed_rows in removed_by_key.items():
            bucket = index.get(key)
            if bucket is None:
                return False
            kept = [row for row in bucket if row not in removed_rows]
            if len(kept) != len(bucket) - len(removed_rows):
                return False
            replacements[key] = kept
            self.statistics.removal_patches += len(removed_rows)
        for key, kept in replacements.items():
            if kept:
                index[key] = kept
            else:
                del index[key]
        for key, added_rows in added_by_key.items():
            index.setdefault(key, []).extend(added_rows)
        entry.log_position = relation.log_length
        entry.version = relation.version
        return True

    def invalidate(self, relation: Relation) -> None:
        """Forget every cached structure derived from ``relation``."""
        stale = [key for key in self._entries if key[0] == relation.uid]
        for key in stale:
            del self._entries[key]

    def _evict_if_needed(self) -> None:
        if self._max_entries is None:
            return
        while len(self._entries) > self._max_entries:
            # FIFO eviction keeps the implementation simple and deterministic.
            oldest = next(iter(self._entries))
            del self._entries[oldest]
