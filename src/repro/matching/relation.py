"""Relations: the tuple sets behind materialized views.

A :class:`Relation` is a named-column set of tuples over graph vertices.  It
is the representation used for

* base edge views (schema ``("s", "t")``),
* per-path prefix views inside the TRIC tries (schema ``("p0", ..., "pk")``),
* query-level binding tables (schema of variable names).

Joins are classic hash joins with a build and a probe phase, exactly as
described in Section 4.2 of the paper.  The build-side hash tables are the
relations' own *maintained indexes* — persistent buckets patched in place by
every mutation (:meth:`Relation.ensure_index` / :meth:`Relation.probe`) —
so joining repeatedly against a stable relation reuses an incrementally
maintained structure instead of rebuilding one per call.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

__all__ = [
    "Relation",
    "CountedRelation",
    "natural_join",
    "extend_path_rows",
    "build_row_index",
    "EMPTY_ROWS",
]

#: Rows are tuples of vertex ids — dense ints on the interned hot path
#: (see :mod:`repro.graph.interning`), strings at the public surface.
Row = Tuple[object, ...]
#: A visibility change of one row: ``(row, +1)`` when the row appeared in the
#: relation, ``(row, -1)`` when it disappeared.
Delta = Tuple[Row, int]
EMPTY_ROWS: frozenset = frozenset()

_uid_counter = itertools.count()

#: Delta-log compaction thresholds: the log is snapshot-reset once it is at
#: least this long *and* more than ``_COMPACT_FACTOR`` times the live row
#: count (see :meth:`Relation._maybe_compact_log`).
_COMPACT_MIN_LOG = 64
_COMPACT_FACTOR = 4


class Relation:
    """A set of equal-length tuples with named columns.

    Relations are mutable (rows are added and removed incrementally as
    updates arrive) and carry a ``version`` counter plus a signed *delta log*
    of visibility changes, so cached join-side hash tables can be patched
    with exactly the rows that appeared or disappeared since they were built
    — additions and deletions are symmetric deltas, neither forces a
    rebuild.  Only the wholesale operations (:meth:`replace_rows`,
    :meth:`clear`) reset the log; they bump ``epoch`` so log positions from
    a previous epoch are recognisably stale.

    Relations additionally carry *maintained indexes*: persistent hash
    buckets over chosen key columns (:meth:`ensure_index` / :meth:`probe`)
    that are patched in place by every :meth:`add` / :meth:`remove`, so a
    probe costs O(bucket) regardless of how large the relation has grown —
    the adjacency structures behind the whole matching layer.
    """

    __slots__ = ("schema", "arity", "rows", "version", "uid", "epoch", "_delta_log", "_indexes")

    def __init__(self, schema: Sequence[str], rows: Iterable[Row] = ()) -> None:
        self.schema: Tuple[str, ...] = tuple(schema)
        #: Number of columns (cached: checked on every hot-path ``add``).
        self.arity: int = len(self.schema)
        self.rows: Set[Row] = set(rows)
        self.version = 0
        self.uid = next(_uid_counter)
        #: Bumped whenever the delta log is reset wholesale; positions into
        #: the log are only comparable within the same epoch.
        self.epoch = 0
        self._delta_log: List[Delta] = [(row, 1) for row in self.rows]
        #: key positions -> {key tuple -> set of rows carrying that key}.
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple, Set[Row]]] = {}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __contains__(self, row: Row) -> bool:
        return row in self.rows

    def column_index(self, column: str) -> int:
        """Index of ``column`` in the schema."""
        return self.schema.index(column)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, row: Row) -> bool:
        """Add ``row``; return ``True`` when it was not already present."""
        if len(row) != self.arity:
            raise ValueError(
                f"row arity {len(row)} does not match schema arity {self.arity}"
            )
        if row in self.rows:
            return False
        self.rows.add(row)
        self._delta_log.append((row, 1))
        if self._indexes:
            for positions, index in self._indexes.items():
                if len(positions) == 1:
                    key = (row[positions[0]],)
                else:
                    key = tuple(row[i] for i in positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = {row}
                else:
                    bucket.add(row)
        self.version += 1
        return True

    def add_all(self, rows: Iterable[Row]) -> List[Row]:
        """Add every row; return the list of rows that were actually new."""
        added = [row for row in rows if self.add(row)]
        return added

    def remove(self, row: Row) -> bool:
        """Remove ``row`` if present; return ``True`` when something was removed.

        The removal is recorded in the delta log as a negative entry, so
        caches built against this relation patch themselves instead of
        rebuilding.
        """
        if row not in self.rows:
            return False
        self.rows.remove(row)
        self._delta_log.append((row, -1))
        if self._indexes:
            for positions, index in self._indexes.items():
                if len(positions) == 1:
                    key = (row[positions[0]],)
                else:
                    key = tuple(row[i] for i in positions)
                bucket = index.get(key)
                if bucket is not None:
                    bucket.discard(row)
                    if not bucket:
                        del index[key]
        self.version += 1
        self._maybe_compact_log()
        return True

    def _maybe_compact_log(self) -> None:
        """Bound the delta log on churn-heavy relations.

        Add/remove pairs grow the log without growing the row set; once it
        dominates the live rows the log is reset to a snapshot (an epoch
        bump, so readers holding positions rebuild instead of patching).
        The O(rows) reset is amortized against the removals that earned it.
        """
        log = self._delta_log
        if len(log) >= _COMPACT_MIN_LOG and len(log) > _COMPACT_FACTOR * len(self.rows):
            self.epoch += 1
            self._delta_log = [(row, 1) for row in self.rows]

    def remove_all(self, rows: Iterable[Row]) -> List[Row]:
        """Remove every row; return the list of rows actually removed."""
        return [row for row in rows if self.remove(row)]

    def discard(self, row: Row) -> bool:
        """Alias of :meth:`remove` (kept for backwards compatibility)."""
        return self.remove(row)

    def clear(self) -> None:
        """Remove every row (wholesale: resets the delta log, bumps the epoch)."""
        if self.rows:
            self.rows.clear()
            self.version += 1
            self.epoch += 1
            self._delta_log = []
            for positions in self._indexes:
                self._indexes[positions] = {}

    def replace_rows(self, rows: Iterable[Row]) -> None:
        """Replace the contents wholesale (resets the delta log, bumps the epoch)."""
        self.rows = set(rows)
        self.version += 1
        self.epoch += 1
        self._delta_log = [(row, 1) for row in self.rows]
        for positions in self._indexes:
            self._indexes[positions] = self._bucket_rows(positions)

    def deltas_since(self, log_position: int) -> Sequence[Delta]:
        """Signed visibility changes after ``log_position`` (same epoch only)."""
        return self._delta_log[log_position:]

    def appended_since(self, log_position: int) -> List[Row]:
        """Rows that appeared after ``log_position`` (ignores removals)."""
        return [row for row, sign in self._delta_log[log_position:] if sign > 0]

    @property
    def log_length(self) -> int:
        """Current length of the delta log."""
        return len(self._delta_log)

    # ------------------------------------------------------------------
    # Maintained indexes (persistent adjacency)
    # ------------------------------------------------------------------
    def ensure_index(self, key_positions: Sequence[int]) -> None:
        """Create (once) a maintained index over ``key_positions``.

        The index maps key tuples to the set of rows carrying that key and
        is patched in place by every subsequent mutation — it is built at
        most once per relation lifetime (wholesale :meth:`replace_rows` /
        :meth:`clear` recompute it, everything else is O(1) per delta).
        Registering the index while the relation is still empty makes even
        the initial build free.
        """
        positions = tuple(key_positions)
        if positions not in self._indexes:
            self._indexes[positions] = self._bucket_rows(positions)

    def _bucket_rows(self, positions: Tuple[int, ...]) -> Dict[Tuple, Set[Row]]:
        index: Dict[Tuple, Set[Row]] = {}
        single = positions[0] if len(positions) == 1 else None
        for row in self.rows:
            key = (row[single],) if single is not None else tuple(row[i] for i in positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = {row}
            else:
                bucket.add(row)
        return index

    def index_map(self, key_positions: Tuple[int, ...]) -> Dict[Tuple, Set[Row]]:
        """The maintained index over ``key_positions``, created on first use.

        Returns the live ``{key tuple -> set of rows}`` mapping — treat it
        as read-only; it is patched by the relation's own mutations.  Hot
        loops fetch this once and probe the plain dict directly.
        """
        positions = tuple(key_positions)
        index = self._indexes.get(positions)
        if index is None:
            index = self._bucket_rows(positions)
            self._indexes[positions] = index
        return index

    def probe(self, key_positions: Tuple[int, ...], key: Tuple) -> Set[Row]:
        """Rows whose ``key_positions`` columns equal ``key`` — O(bucket).

        Creates the maintained index on first use.  The returned set is the
        live bucket: treat it as read-only and snapshot it (e.g. via
        ``list(...)``) before mutating the relation.
        """
        return self.index_map(key_positions).get(key, EMPTY_ROWS)

    def has_maintained_index(self, key_positions: Tuple[int, ...]) -> bool:
        """``True`` when a maintained index over ``key_positions`` exists."""
        return tuple(key_positions) in self._indexes

    @property
    def maintained_index_positions(self) -> List[Tuple[int, ...]]:
        """Key positions of the maintained indexes (introspection/tests)."""
        return list(self._indexes)

    # ------------------------------------------------------------------
    # Relational operators
    # ------------------------------------------------------------------
    def copy(self) -> "Relation":
        """Shallow copy with the same schema and rows."""
        return Relation(self.schema, self.rows)

    def project(self, columns: Sequence[str]) -> "Relation":
        """Project onto ``columns`` (duplicates collapse, set semantics)."""
        indices = [self.column_index(c) for c in columns]
        return Relation(columns, {tuple(row[i] for i in indices) for row in self.rows})

    def rename(self, mapping: Dict[str, str]) -> "Relation":
        """Return a relation with columns renamed through ``mapping``."""
        new_schema = tuple(mapping.get(c, c) for c in self.schema)
        result = Relation(new_schema, self.rows)
        return result

    def select_equal(self, column: str, value: str) -> "Relation":
        """Rows where ``column == value``."""
        index = self.column_index(column)
        return Relation(self.schema, {row for row in self.rows if row[index] == value})

    def select_positions_equal(self, positions: Sequence[Tuple[int, int]]) -> "Relation":
        """Rows where every ``(i, j)`` pair of positions holds equal values."""
        if not positions:
            return self.copy()
        kept = {
            row
            for row in self.rows
            if all(row[i] == row[j] for i, j in positions)
        }
        return Relation(self.schema, kept)

    def distinct_values(self, column: str) -> Set[str]:
        """Distinct values appearing in ``column``."""
        index = self.column_index(column)
        return {row[index] for row in self.rows}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation(schema={self.schema}, rows={len(self.rows)})"


class CountedRelation(Relation):
    """A relation whose rows carry *support counts* (counting-based maintenance).

    Used for derived views where the same row can be produced by several
    distinct derivations — e.g. a per-path binding relation, where many
    positional path rows project onto the same variable binding.  A row
    becomes visible when its support goes ``0 -> 1`` and disappears only when
    the *last* supporting derivation is retracted (``1 -> 0``), which is the
    classic counting algorithm for incremental view maintenance of
    projections.  Visibility changes are logged exactly like a plain
    :class:`Relation`, so join caches built on a counted relation patch
    themselves identically.
    """

    __slots__ = ("_counts",)

    def __init__(self, schema: Sequence[str], rows: Iterable[Row] = ()) -> None:
        super().__init__(schema)
        self._counts: Dict[Row, int] = {}
        for row in rows:
            self.add(row)

    def support(self, row: Row) -> int:
        """Number of live derivations of ``row``."""
        return self._counts.get(row, 0)

    def add(self, row: Row) -> bool:
        """Add one derivation of ``row``; ``True`` when the row became visible."""
        count = self._counts.get(row, 0)
        self._counts[row] = count + 1
        if count == 0:
            return super().add(row)
        return False

    def remove(self, row: Row) -> bool:
        """Retract one derivation of ``row``; ``True`` when the row disappeared."""
        count = self._counts.get(row, 0)
        if count == 0:
            return False
        if count == 1:
            del self._counts[row]
            return super().remove(row)
        self._counts[row] = count - 1
        return False

    def discard(self, row: Row) -> bool:
        """Drop ``row`` entirely, regardless of its remaining support."""
        self._counts.pop(row, None)
        if row in self.rows:
            return Relation.remove(self, row)
        return False

    def clear(self) -> None:
        self._counts.clear()
        super().clear()

    def replace_rows(self, rows: Iterable[Row]) -> None:
        counts: Dict[Row, int] = {}
        for row in rows:
            counts[row] = counts.get(row, 0) + 1
        self._counts = counts
        super().replace_rows(counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CountedRelation(schema={self.schema}, rows={len(self.rows)})"


def build_row_index(
    rows: Iterable[Row], key_positions: Sequence[int]
) -> Dict[Tuple[str, ...], List[Row]]:
    """Hash-join build phase: bucket ``rows`` by their key columns."""
    index: Dict[Tuple[str, ...], List[Row]] = {}
    for row in rows:
        key = tuple(row[i] for i in key_positions)
        index.setdefault(key, []).append(row)
    return index


# Backwards-compatible private alias (pre-batching internal name).
_build_index = build_row_index


def extend_path_rows(
    rows: Iterable[Row],
    base: Relation,
    *,
    direction: str = "forward",
) -> List[Row]:
    """Extend positional path rows by one edge through a base edge view.

    ``base`` must be a two-column ``(source, target)`` edge view.  With
    ``direction="forward"`` each row is extended on the right by the targets
    of base tuples whose source equals the row's last value (the ordinary
    left-to-right path join); with ``direction="backward"`` each row is
    extended on the left by the sources of base tuples whose target equals
    the row's first value.

    Probes go through the base view's maintained adjacency index
    (``source -> rows`` / ``target -> rows``), which is patched in place by
    the view's own mutations — each probe is O(bucket), never O(|view|).
    """
    extended: List[Row] = []
    if direction == "forward":
        lookup = base.index_map((0,)).get
        for row in rows:
            bucket = lookup((row[-1],))
            if bucket:
                extended.extend(row + (base_row[1],) for base_row in bucket)
    elif direction == "backward":
        lookup = base.index_map((1,)).get
        for row in rows:
            bucket = lookup((row[0],))
            if bucket:
                extended.extend((base_row[0],) + row for base_row in bucket)
    else:
        raise ValueError(f"unknown direction: {direction!r}")
    return extended


def natural_join(left: Relation, right: Relation) -> Relation:
    """Natural join of two relations on their shared column names.

    The build side's hash table is the relation's own *maintained index*
    over the join columns, so joining repeatedly against a stable relation
    (e.g. a maintained binding table) reuses an incrementally patched
    structure instead of rebuilding one.  A side that already carries a
    maintained index over the join columns is preferred as the build side
    even when larger (its "build phase" is free); otherwise the smaller
    side builds, as in the paper's hash-join description.  With no shared
    columns the result is the Cartesian product.
    """
    shared = [c for c in left.schema if c in right.schema]
    right_only = [c for c in right.schema if c not in shared]
    out_schema = tuple(left.schema) + tuple(right_only)

    if not left.rows or not right.rows:
        return Relation(out_schema)

    if not shared:
        # Cartesian product: with no shared columns ``right_only`` is the
        # whole right schema in order, so rows concatenate directly.
        return Relation(
            out_schema, {lrow + rrow for lrow in left.rows for rrow in right.rows}
        )

    left_key_pos = [left.column_index(c) for c in shared]
    right_key_pos = [right.column_index(c) for c in shared]
    right_extra_pos = [right.column_index(c) for c in right_only]

    # Build-side choice: a side that already carries a maintained index over
    # the join columns is free to "build" (the index persists and is patched
    # incrementally), so prefer it even when it is the larger side — this is
    # what turns a delta-against-full join into an O(delta) probe.  With no
    # maintained index on either side, build on the smaller one as usual.
    left_positions, right_positions = tuple(left_key_pos), tuple(right_key_pos)
    left_indexed = left.has_maintained_index(left_positions)
    right_indexed = right.has_maintained_index(right_positions)
    if left_indexed != right_indexed:
        build_is_right = right_indexed
    else:
        build_is_right = len(right) <= len(left)
    if build_is_right:
        build_rel, build_positions = right, right_positions
        probe_rel, probe_pos = left, left_key_pos
    else:
        build_rel, build_positions = left, left_positions
        probe_rel, probe_pos = right, right_key_pos

    lookup = build_rel.index_map(build_positions).get

    rows: Set[Row] = set()
    if build_is_right:
        for probe_row in probe_rel.rows:
            key = tuple(probe_row[i] for i in probe_pos)
            bucket = lookup(key)
            if not bucket:
                continue
            for build_row in bucket:
                rows.add(probe_row + tuple(build_row[i] for i in right_extra_pos))
    else:
        for probe_row in probe_rel.rows:
            key = tuple(probe_row[i] for i in probe_pos)
            bucket = lookup(key)
            if not bucket:
                continue
            extra = tuple(probe_row[i] for i in right_extra_pos)
            for build_row in bucket:
                rows.add(build_row + extra)
    return Relation(out_schema, rows)
