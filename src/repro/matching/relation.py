"""Relations: the tuple sets behind materialized views.

A :class:`Relation` is a named-column set of tuples over graph vertices.  It
is the representation used for

* base edge views (schema ``("s", "t")``),
* per-path prefix views inside the TRIC tries (schema ``("p0", ..., "pk")``),
* query-level binding tables (schema of variable names).

Joins are classic hash joins with a build and a probe phase, exactly as
described in Section 4.2 of the paper; the build side can be cached and
reused by the ``+`` engine variants (see :mod:`repro.matching.cache`).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

__all__ = ["Relation", "natural_join", "extend_path_rows", "EMPTY_ROWS"]

Row = Tuple[str, ...]
EMPTY_ROWS: frozenset = frozenset()

_uid_counter = itertools.count()


class Relation:
    """A set of equal-length tuples with named columns.

    Relations are mutable (rows are added incrementally as updates arrive)
    and carry a ``version`` counter so cached join-side hash tables can be
    invalidated cheaply.
    """

    __slots__ = ("schema", "rows", "version", "uid", "_append_log", "last_removal_version")

    def __init__(self, schema: Sequence[str], rows: Iterable[Row] = ()) -> None:
        self.schema: Tuple[str, ...] = tuple(schema)
        self.rows: Set[Row] = set(rows)
        self.version = 0
        self.uid = next(_uid_counter)
        # Append-only log of added rows; lets join caches patch their build
        # tables with only the rows added since they were built.  Removals
        # bump ``last_removal_version`` which forces a full rebuild instead.
        self._append_log: List[Row] = list(self.rows)
        self.last_removal_version = 0

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.schema)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __contains__(self, row: Row) -> bool:
        return row in self.rows

    def column_index(self, column: str) -> int:
        """Index of ``column`` in the schema."""
        return self.schema.index(column)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, row: Row) -> bool:
        """Add ``row``; return ``True`` when it was not already present."""
        if len(row) != len(self.schema):
            raise ValueError(
                f"row arity {len(row)} does not match schema arity {len(self.schema)}"
            )
        if row in self.rows:
            return False
        self.rows.add(row)
        self._append_log.append(row)
        self.version += 1
        return True

    def add_all(self, rows: Iterable[Row]) -> List[Row]:
        """Add every row; return the list of rows that were actually new."""
        added = [row for row in rows if self.add(row)]
        return added

    def discard(self, row: Row) -> bool:
        """Remove ``row`` if present; return ``True`` when something was removed."""
        if row in self.rows:
            self.rows.remove(row)
            self.version += 1
            self.last_removal_version = self.version
            self._append_log = list(self.rows)
            return True
        return False

    def clear(self) -> None:
        """Remove every row."""
        if self.rows:
            self.rows.clear()
            self.version += 1
            self.last_removal_version = self.version
            self._append_log = []

    def replace_rows(self, rows: Iterable[Row]) -> None:
        """Replace the contents wholesale (used when rebuilding after deletes)."""
        self.rows = set(rows)
        self.version += 1
        self.last_removal_version = self.version
        self._append_log = list(self.rows)

    def appended_since(self, log_position: int) -> Sequence[Row]:
        """Rows appended after ``log_position`` (valid while no removal happened)."""
        return self._append_log[log_position:]

    @property
    def log_length(self) -> int:
        """Current length of the append log."""
        return len(self._append_log)

    # ------------------------------------------------------------------
    # Relational operators
    # ------------------------------------------------------------------
    def copy(self) -> "Relation":
        """Shallow copy with the same schema and rows."""
        return Relation(self.schema, self.rows)

    def project(self, columns: Sequence[str]) -> "Relation":
        """Project onto ``columns`` (duplicates collapse, set semantics)."""
        indices = [self.column_index(c) for c in columns]
        return Relation(columns, {tuple(row[i] for i in indices) for row in self.rows})

    def rename(self, mapping: Dict[str, str]) -> "Relation":
        """Return a relation with columns renamed through ``mapping``."""
        new_schema = tuple(mapping.get(c, c) for c in self.schema)
        result = Relation(new_schema, self.rows)
        return result

    def select_equal(self, column: str, value: str) -> "Relation":
        """Rows where ``column == value``."""
        index = self.column_index(column)
        return Relation(self.schema, {row for row in self.rows if row[index] == value})

    def select_positions_equal(self, positions: Sequence[Tuple[int, int]]) -> "Relation":
        """Rows where every ``(i, j)`` pair of positions holds equal values."""
        if not positions:
            return self.copy()
        kept = {
            row
            for row in self.rows
            if all(row[i] == row[j] for i, j in positions)
        }
        return Relation(self.schema, kept)

    def distinct_values(self, column: str) -> Set[str]:
        """Distinct values appearing in ``column``."""
        index = self.column_index(column)
        return {row[index] for row in self.rows}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation(schema={self.schema}, rows={len(self.rows)})"


def _build_index(
    rows: Iterable[Row], key_positions: Sequence[int]
) -> Dict[Tuple[str, ...], List[Row]]:
    """Hash-join build phase: bucket ``rows`` by their key columns."""
    index: Dict[Tuple[str, ...], List[Row]] = {}
    for row in rows:
        key = tuple(row[i] for i in key_positions)
        index.setdefault(key, []).append(row)
    return index


def extend_path_rows(
    rows: Iterable[Row],
    base: Relation,
    cache=None,
    *,
    direction: str = "forward",
) -> List[Row]:
    """Extend positional path rows by one edge through a base edge view.

    ``base`` must be a two-column ``(source, target)`` edge view.  With
    ``direction="forward"`` each row is extended on the right by the targets
    of base tuples whose source equals the row's last value (the ordinary
    left-to-right path join); with ``direction="backward"`` each row is
    extended on the left by the sources of base tuples whose target equals
    the row's first value.  When a :class:`~repro.matching.cache.JoinCache`
    is supplied the base view's build-side hash table is cached and reused.
    """
    if direction == "forward":
        key_position, value_position = 0, 1
    elif direction == "backward":
        key_position, value_position = 1, 0
    else:
        raise ValueError(f"unknown direction: {direction!r}")

    if cache is not None:
        index = cache.build_index(base, (key_position,))
    else:
        index = _build_index(base.rows, (key_position,))

    extended: List[Row] = []
    for row in rows:
        probe = row[-1] if direction == "forward" else row[0]
        bucket = index.get((probe,))
        if not bucket:
            continue
        if direction == "forward":
            extended.extend(row + (base_row[value_position],) for base_row in bucket)
        else:
            extended.extend((base_row[value_position],) + row for base_row in bucket)
    return extended


def natural_join(left: Relation, right: Relation, cache=None) -> Relation:
    """Natural join of two relations on their shared column names.

    The smaller relation is used as the build side (as in the paper's hash
    join description).  When ``cache`` (a :class:`~repro.matching.cache.JoinCache`)
    is provided, the build-side hash table is fetched from / stored into it.
    With no shared columns the result is the Cartesian product.
    """
    shared = [c for c in left.schema if c in right.schema]
    right_only = [c for c in right.schema if c not in shared]
    out_schema = tuple(left.schema) + tuple(right_only)

    left_key_pos = [left.column_index(c) for c in shared]
    right_key_pos = [right.column_index(c) for c in shared]
    right_extra_pos = [right.column_index(c) for c in right_only]

    if not shared:
        rows = {
            tuple(lrow) + tuple(rrow[i] for i in right_extra_pos)
            for lrow in left.rows
            for rrow in right.rows
        }
        return Relation(out_schema, rows)

    # Build on the smaller side, probe with the larger one.
    if len(right) <= len(left):
        build_rel, build_pos = right, right_key_pos
        probe_rel, probe_pos = left, left_key_pos
        build_is_right = True
    else:
        build_rel, build_pos = left, left_key_pos
        probe_rel, probe_pos = right, right_key_pos
        build_is_right = False

    if cache is not None:
        index = cache.build_index(build_rel, tuple(build_pos))
    else:
        index = _build_index(build_rel.rows, build_pos)

    rows: Set[Row] = set()
    for probe_row in probe_rel.rows:
        key = tuple(probe_row[i] for i in probe_pos)
        bucket = index.get(key)
        if not bucket:
            continue
        for build_row in bucket:
            if build_is_right:
                lrow, rrow = probe_row, build_row
            else:
                lrow, rrow = build_row, probe_row
            rows.add(tuple(lrow) + tuple(rrow[i] for i in right_extra_pos))
    return Relation(out_schema, rows)
