"""Materialized base views of query edges.

Every distinct (generalised) query edge present in the query database owns a
materialized view ``matV[e]`` holding all stream updates that satisfy it
(paper Section 4.1, "Materialization").  The registry only materializes edges
that occur in registered queries — the engines never index the full graph,
which is exactly the behaviour the paper calls out in Section 3.2.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..graph.elements import Edge
from ..graph.interning import VertexInterner
from ..query.terms import EdgeKey, candidate_keys_for_edge
from .relation import Relation, Row

__all__ = ["EdgeViewRegistry"]

# Base edge views always use this two-column schema: source and target vertex.
EDGE_VIEW_SCHEMA = ("s", "t")


class EdgeViewRegistry:
    """Registry of base materialized views keyed by generalised edge keys.

    The registry is the interning boundary of the matching layer: incoming
    edges have their endpoint strings dictionary-encoded through a
    :class:`~repro.graph.interning.VertexInterner`, so every view row — and
    everything joined from it downstream — is a tuple of dense ints.  Each
    view is born with maintained ``source -> rows`` and ``target -> rows``
    adjacency indexes, created while the view is still empty and patched by
    its own mutations ever after (never rebuilt on the stream path).
    """

    def __init__(self, interner: Optional[VertexInterner] = None) -> None:
        #: The string <-> dense-int vertex encoding shared by every view.
        self.interner = interner if interner is not None else VertexInterner()
        self._views: Dict[EdgeKey, Relation] = {}
        # label -> keys with that label; avoids probing all four candidate
        # generalisations when no registered key uses the label at all.
        self._keys_by_label: Dict[str, Set[EdgeKey]] = {}
        # Multigraph support: number of live copies of each concrete edge that
        # matches at least one registered key.  Views hold *distinct* tuples,
        # so a tuple may only be retracted once every copy has been deleted.
        self._multiplicity: Counter[Edge] = Counter()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, key: EdgeKey) -> Relation:
        """Ensure a view exists for ``key`` and return it."""
        view = self._views.get(key)
        if view is None:
            view = Relation(EDGE_VIEW_SCHEMA)
            # Adjacency indexes registered at birth: built over zero rows,
            # then maintained incrementally for the view's lifetime.
            view.ensure_index((0,))
            view.ensure_index((1,))
            self._views[key] = view
            self._keys_by_label.setdefault(key.label, set()).add(key)
        return view

    def register_all(self, keys: Iterable[EdgeKey]) -> None:
        """Register every key in ``keys``."""
        for key in keys:
            self.register(key)

    def view(self, key: EdgeKey) -> Relation:
        """Return the view for ``key`` (registering it on first use)."""
        return self.register(key)

    def get(self, key: EdgeKey) -> Relation | None:
        """Return the view for ``key`` or ``None`` when not registered."""
        return self._views.get(key)

    def __contains__(self, key: EdgeKey) -> bool:
        return key in self._views

    def __len__(self) -> int:
        return len(self._views)

    def keys(self) -> Iterator[EdgeKey]:
        """Iterate over registered keys."""
        return iter(self._views)

    def has_label(self, label: str) -> bool:
        """``True`` when at least one registered key uses ``label``."""
        return bool(self._keys_by_label.get(label))

    # ------------------------------------------------------------------
    # Stream maintenance
    # ------------------------------------------------------------------
    def matching_keys(self, edge: Edge) -> List[EdgeKey]:
        """Registered keys that the concrete ``edge`` satisfies (at most four)."""
        if not self.has_label(edge.label):
            return []
        return [key for key in candidate_keys_for_edge(edge) if key in self._views]

    def apply_addition(self, edge: Edge) -> List[Tuple[EdgeKey, bool]]:
        """Add ``edge`` to every view it satisfies.

        Returns a list of ``(key, is_new)`` pairs for the affected views;
        ``is_new`` is ``False`` when the tuple was already present (duplicate
        multigraph edge), in which case downstream deltas are empty.
        """
        return self._apply_addition(edge)[0]

    def _apply_addition(self, edge: Edge) -> Tuple[List[Tuple[EdgeKey, bool]], Row | None]:
        """:meth:`apply_addition` plus the interned row (``None`` if unmatched).

        Endpoints are only interned once the edge is known to match a
        registered key, so non-matching stream traffic never grows the
        vertex dictionary.
        """
        keys = self.matching_keys(edge)
        if not keys:
            return [], None
        self._multiplicity[edge] += 1
        results: List[Tuple[EdgeKey, bool]] = []
        row = self.interner.intern_pair(edge.source, edge.target)
        for key in keys:
            is_new = self._views[key].add(row)
            results.append((key, is_new))
        return results, row

    def apply_deletion(self, edge: Edge) -> List[EdgeKey]:
        """Remove one copy of ``edge``; return the keys whose view changed.

        With multigraph semantics the tuple only leaves the views once the
        last remaining copy of the edge has been deleted.
        """
        return self._apply_deletion(edge)[0]

    def _apply_deletion(self, edge: Edge) -> Tuple[List[EdgeKey], Row | None]:
        """:meth:`apply_deletion` plus the interned row (``None`` if unmatched)."""
        keys = self.matching_keys(edge)
        if not keys:
            return [], None
        remaining = self._multiplicity.get(edge, 0)
        if remaining > 1:
            self._multiplicity[edge] = remaining - 1
            return [], None
        if remaining == 1:
            del self._multiplicity[edge]
        affected: List[EdgeKey] = []
        row = self.interner.intern_pair(edge.source, edge.target)
        for key in keys:
            if self._views[key].discard(row):
                affected.append(key)
        return affected, row

    def multiplicity(self, edge: Edge) -> int:
        """Number of live copies of ``edge`` known to the registry."""
        return self._multiplicity.get(edge, 0)

    # ------------------------------------------------------------------
    # Micro-batch maintenance
    # ------------------------------------------------------------------
    def apply_additions(self, edges: Iterable[Edge]) -> Dict[EdgeKey, List[Row]]:
        """Add a micro-batch of edges; group the genuinely new tuples by key.

        Returns a mapping from each affected generalised key to the list of
        ``(source, target)`` tuples that were new to its view — exactly the
        per-key positive deltas the engines join down their structures.
        """
        new_by_key: Dict[EdgeKey, List[Row]] = {}
        for edge in edges:
            changed, row = self._apply_addition(edge)
            for key, is_new in changed:
                if is_new:
                    new_by_key.setdefault(key, []).append(row)
        return new_by_key

    def apply_deletions(self, edges: Iterable[Edge]) -> Dict[EdgeKey, Set[Row]]:
        """Delete a micro-batch of edges; group the retracted tuples by key.

        Returns a mapping from each affected generalised key to the set of
        ``(source, target)`` tuples its view lost — the per-key negative
        deltas, symmetric to :meth:`apply_additions`.
        """
        removed_by_key: Dict[EdgeKey, Set[Row]] = {}
        for edge in edges:
            affected, row = self._apply_deletion(edge)
            for key in affected:
                removed_by_key.setdefault(key, set()).add(row)
        return removed_by_key

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_rows(self) -> int:
        """Total number of tuples across all views (for memory reports)."""
        return sum(len(view) for view in self._views.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeViewRegistry(views={len(self._views)}, rows={self.total_rows()})"
