"""Per-query evaluation plans shared by every engine.

A query graph pattern is answered from its covering paths: each path yields a
relation of *positional* rows (one column per path position), those rows are
turned into *variable bindings* (within-path repeated-variable constraints
applied, literal columns dropped), and the binding relations of all paths are
joined on shared variable names (paper Section 4.1, "Materialization" and
"Variable Handling").

:class:`QueryEvaluationPlan` encapsulates that per-query logic so that TRIC,
INV and INC only differ in *how* they produce the per-path positional
relations (shared trie views vs. per-query joins), not in how the final
answer is assembled.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from ..query.paths import CoveringPath, covering_paths
from ..query.pattern import QueryGraphPattern
from ..query.terms import EdgeKey, Literal, Variable
from .cache import JoinCache
from .relation import CountedRelation, Relation, Row, natural_join

__all__ = ["PathPlan", "QueryEvaluationPlan", "bindings_to_dicts"]


def _positional_schema(length: int) -> Tuple[str, ...]:
    """Column names for a path with ``length`` edges (``length + 1`` positions)."""
    return tuple(f"p{i}" for i in range(length + 1))


class PathPlan:
    """Evaluation metadata for one covering path of a query."""

    __slots__ = (
        "path",
        "terms",
        "schema",
        "equality_positions",
        "variable_positions",
        "variable_names",
    )

    def __init__(self, path: CoveringPath) -> None:
        self.path = path
        self.terms = path.terms()
        self.schema = _positional_schema(path.length)

        # Positions that must carry equal values because the same variable
        # occurs more than once along the path (cycles, self-joins).
        first_seen: Dict[str, int] = {}
        equality: List[Tuple[int, int]] = []
        for position, term in enumerate(self.terms):
            if isinstance(term, Variable):
                if term.name in first_seen:
                    equality.append((first_seen[term.name], position))
                else:
                    first_seen[term.name] = position
        self.equality_positions: Tuple[Tuple[int, int], ...] = tuple(equality)
        # First position of each variable, in first-occurrence order.
        self.variable_names: Tuple[str, ...] = tuple(first_seen)
        self.variable_positions: Tuple[int, ...] = tuple(
            first_seen[name] for name in self.variable_names
        )

    @property
    def key_sequence(self) -> Tuple[EdgeKey, ...]:
        """Generalised edge keys along the path."""
        return self.path.key_sequence()

    def positions_of_key(self, key: EdgeKey) -> List[int]:
        """Edge positions (0-based) along the path whose key equals ``key``."""
        return [i for i, k in enumerate(self.key_sequence) if k == key]

    # ------------------------------------------------------------------
    # Positional rows -> variable bindings
    # ------------------------------------------------------------------
    def binding_of_row(self, row: Row) -> Row | None:
        """Variable binding of one positional row, or ``None`` when the row
        violates the path's repeated-variable equality constraints."""
        eq = self.equality_positions
        if eq and not all(row[i] == row[j] for i, j in eq):
            return None
        return tuple(row[p] for p in self.variable_positions)

    def bindings_from_rows(self, rows: Iterable[Row]) -> Relation:
        """Convert positional path rows into a relation over variable names."""
        result = Relation(self.variable_names)
        for row in rows:
            binding = self.binding_of_row(row)
            if binding is not None:
                result.rows.add(binding)
        if result.rows:
            result.version += 1
        return result

    def counted_bindings_from_rows(self, rows: Iterable[Row]) -> CountedRelation:
        """Like :meth:`bindings_from_rows` but with per-binding support counts.

        Each positional row contributes one derivation to its binding, so
        the relation can later absorb positional-row *removals* through the
        counting algorithm instead of being rebuilt.
        """
        result = CountedRelation(self.variable_names)
        for row in rows:
            binding = self.binding_of_row(row)
            if binding is not None:
                result.add(binding)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PathPlan(length={self.path.length}, vars={self.variable_names})"


class QueryEvaluationPlan:
    """Covering-path decomposition plus answer assembly for one query."""

    def __init__(self, pattern: QueryGraphPattern, paths: Sequence[CoveringPath] | None = None) -> None:
        self.pattern = pattern
        if paths is None:
            paths = covering_paths(pattern)
        self.path_plans: List[PathPlan] = [PathPlan(path) for path in paths]
        variables: List[str] = []
        for plan in self.path_plans:
            for name in plan.variable_names:
                if name not in variables:
                    variables.append(name)
        self.variable_names: Tuple[str, ...] = tuple(variables)
        self._literal_values: Tuple[str, ...] = tuple(
            literal.value for literal in pattern.literals()
        )
        # Generalised edge key -> list of (path index, edge positions in path).
        self.key_occurrences: Dict[EdgeKey, List[Tuple[int, List[int]]]] = {}
        for path_index, plan in enumerate(self.path_plans):
            for key in set(plan.key_sequence):
                positions = plan.positions_of_key(key)
                self.key_occurrences.setdefault(key, []).append((path_index, positions))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_paths(self) -> int:
        """Number of covering paths."""
        return len(self.path_plans)

    def distinct_keys(self) -> Set[EdgeKey]:
        """All generalised edge keys used by the query's covering paths."""
        return set(self.key_occurrences)

    def paths_containing(self, key: EdgeKey) -> List[int]:
        """Indices of covering paths that contain ``key``."""
        return [index for index, _ in self.key_occurrences.get(key, [])]

    # ------------------------------------------------------------------
    # Answer assembly
    # ------------------------------------------------------------------
    def evaluate_full(
        self,
        path_rows: Sequence[Iterable[Row]],
        *,
        join_cache: JoinCache | None = None,
        binding_relations: Sequence[Relation] | None = None,
        injective: bool = False,
    ) -> Relation:
        """Join every path's rows into query-level bindings.

        ``path_rows`` supplies the positional rows of each covering path (in
        plan order).  ``binding_relations`` may supply pre-converted binding
        relations (used by the caching engines so the join cache sees stable
        relation identities); entries set to ``None`` are converted on the
        fly.
        """
        relations: List[Relation] = []
        for index, plan in enumerate(self.path_plans):
            prebuilt = binding_relations[index] if binding_relations else None
            if prebuilt is not None:
                relations.append(prebuilt)
            else:
                relations.append(plan.bindings_from_rows(path_rows[index]))
        return self._join_bindings(relations, join_cache, injective)

    def evaluate_delta(
        self,
        delta_rows_by_path: Mapping[int, Iterable[Row]],
        full_path_rows: Sequence[Iterable[Row]],
        *,
        join_cache: JoinCache | None = None,
        binding_relations: Sequence[Relation] | None = None,
        injective: bool = False,
    ) -> Relation:
        """Bindings derivable only with the new (delta) rows of affected paths.

        For each affected path its delta rows replace the full relation while
        the other paths contribute their full relations; the union over
        affected paths is exactly the set of *new* query answers produced by
        the triggering update.
        """
        result = Relation(self.variable_names)
        for affected_index, delta_rows in delta_rows_by_path.items():
            delta_bindings = self.path_plans[affected_index].bindings_from_rows(delta_rows)
            if not delta_bindings:
                continue
            relations: List[Relation] = []
            for index, plan in enumerate(self.path_plans):
                if index == affected_index:
                    relations.append(delta_bindings)
                    continue
                prebuilt = binding_relations[index] if binding_relations else None
                if prebuilt is not None:
                    relations.append(prebuilt)
                else:
                    relations.append(plan.bindings_from_rows(full_path_rows[index]))
            joined = self._join_bindings(relations, join_cache, injective)
            result.rows.update(joined.rows)
        if result.rows:
            result.version += 1
        return result

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _join_bindings(
        self,
        relations: List[Relation],
        join_cache: JoinCache | None,
        injective: bool,
    ) -> Relation:
        if not relations:
            return Relation(self.variable_names)
        if any(len(relation) == 0 for relation in relations):
            return Relation(self.variable_names)
        # Join smaller relations first to keep intermediate results small;
        # ties broken by plan order for determinism.
        order = sorted(range(len(relations)), key=lambda i: (len(relations[i]), i))
        current = relations[order[0]]
        for index in order[1:]:
            current = natural_join(current, relations[index], cache=join_cache)
            if not current:
                break
        # Normalise the column order to the plan's variable order.
        if current.schema != self.variable_names and current.rows:
            positions = [current.column_index(name) for name in self.variable_names]
            current = Relation(
                self.variable_names,
                {tuple(row[p] for p in positions) for row in current.rows},
            )
        elif current.schema != self.variable_names:
            current = Relation(self.variable_names)
        if injective and current.rows:
            current = self._injective_filter(current)
        return current

    def _injective_filter(self, bindings: Relation) -> Relation:
        """Keep only bindings where variables (and literals) map to distinct vertices."""
        literals = self._literal_values
        kept = set()
        for row in bindings.rows:
            values = row + literals
            if len(set(values)) == len(values):
                kept.add(row)
        return Relation(bindings.schema, kept)


def bindings_to_dicts(bindings: Relation) -> List[Dict[str, str]]:
    """Convert a binding relation into a list of ``{variable: vertex}`` dicts."""
    return [dict(zip(bindings.schema, row)) for row in sorted(bindings.rows)]
