"""Per-query evaluation plans shared by every engine.

A query graph pattern is answered from its covering paths: each path yields a
relation of *positional* rows (one column per path position), those rows are
turned into *variable bindings* (within-path repeated-variable constraints
applied, literal columns dropped), and the binding relations of all paths are
joined on shared variable names (paper Section 4.1, "Materialization" and
"Variable Handling").

:class:`QueryEvaluationPlan` encapsulates that per-query logic so that TRIC,
INV and INC only differ in *how* they produce the per-path positional
relations (shared trie views vs. per-query joins), not in how the final
answer is assembled.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..graph.interning import VertexInterner
from ..query.paths import CoveringPath, covering_paths
from ..query.pattern import QueryGraphPattern
from ..query.terms import EdgeKey, Variable
from .relation import CountedRelation, Relation, Row, natural_join

__all__ = ["PathPlan", "QueryEvaluationPlan", "bindings_to_dicts"]


def _positional_schema(length: int) -> Tuple[str, ...]:
    """Column names for a path with ``length`` edges (``length + 1`` positions)."""
    return tuple(f"p{i}" for i in range(length + 1))


class PathPlan:
    """Evaluation metadata for one covering path of a query."""

    __slots__ = (
        "path",
        "terms",
        "schema",
        "equality_positions",
        "variable_positions",
        "variable_names",
    )

    def __init__(self, path: CoveringPath) -> None:
        self.path = path
        self.terms = path.terms()
        self.schema = _positional_schema(path.length)

        # Positions that must carry equal values because the same variable
        # occurs more than once along the path (cycles, self-joins).
        first_seen: Dict[str, int] = {}
        equality: List[Tuple[int, int]] = []
        for position, term in enumerate(self.terms):
            if isinstance(term, Variable):
                if term.name in first_seen:
                    equality.append((first_seen[term.name], position))
                else:
                    first_seen[term.name] = position
        self.equality_positions: Tuple[Tuple[int, int], ...] = tuple(equality)
        # First position of each variable, in first-occurrence order.
        self.variable_names: Tuple[str, ...] = tuple(first_seen)
        self.variable_positions: Tuple[int, ...] = tuple(
            first_seen[name] for name in self.variable_names
        )

    @property
    def key_sequence(self) -> Tuple[EdgeKey, ...]:
        """Generalised edge keys along the path."""
        return self.path.key_sequence()

    def positions_of_key(self, key: EdgeKey) -> List[int]:
        """Edge positions (0-based) along the path whose key equals ``key``."""
        return [i for i, k in enumerate(self.key_sequence) if k == key]

    # ------------------------------------------------------------------
    # Positional rows -> variable bindings
    # ------------------------------------------------------------------
    def binding_of_row(self, row: Row) -> Row | None:
        """Variable binding of one positional row, or ``None`` when the row
        violates the path's repeated-variable equality constraints."""
        for i, j in self.equality_positions:
            if row[i] != row[j]:
                return None
        return tuple([row[p] for p in self.variable_positions])

    def bindings_from_rows(self, rows: Iterable[Row]) -> Relation:
        """Convert positional path rows into a relation over variable names."""
        result = Relation(self.variable_names)
        for row in rows:
            binding = self.binding_of_row(row)
            if binding is not None:
                result.rows.add(binding)
        if result.rows:
            result.version += 1
        return result

    def counted_bindings_from_rows(self, rows: Iterable[Row]) -> CountedRelation:
        """Like :meth:`bindings_from_rows` but with per-binding support counts.

        Each positional row contributes one derivation to its binding, so
        the relation can later absorb positional-row *removals* through the
        counting algorithm instead of being rebuilt.
        """
        result = CountedRelation(self.variable_names)
        for row in rows:
            binding = self.binding_of_row(row)
            if binding is not None:
                result.add(binding)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PathPlan(length={self.path.length}, vars={self.variable_names})"


class QueryEvaluationPlan:
    """Covering-path decomposition plus answer assembly for one query.

    ``interner`` is the vertex encoding of the engine's edge-view registry;
    when supplied, the plan's literal vertex values are interned up front so
    the injectivity filter compares dense ints against int rows (the rows it
    sees are produced by interned base views).
    """

    def __init__(
        self,
        pattern: QueryGraphPattern,
        paths: Sequence[CoveringPath] | None = None,
        *,
        interner: VertexInterner | None = None,
    ) -> None:
        self.pattern = pattern
        if paths is None:
            paths = covering_paths(pattern)
        self.path_plans: List[PathPlan] = [PathPlan(path) for path in paths]
        variables: List[str] = []
        for plan in self.path_plans:
            for name in plan.variable_names:
                if name not in variables:
                    variables.append(name)
        self.variable_names: Tuple[str, ...] = tuple(variables)
        literal_values = (literal.value for literal in pattern.literals())
        self._literal_values: Tuple[object, ...] = tuple(
            interner.intern(value) for value in literal_values
        ) if interner is not None else tuple(literal_values)
        # Generalised edge key -> list of (path index, edge positions in path).
        self.key_occurrences: Dict[EdgeKey, List[Tuple[int, List[int]]]] = {}
        for path_index, plan in enumerate(self.path_plans):
            for key in set(plan.key_sequence):
                positions = plan.positions_of_key(key)
                self.key_occurrences.setdefault(key, []).append((path_index, positions))
        # affected path index (or None for the full-enumeration program) ->
        # probe program for the existence/enumeration machinery, built lazily.
        self._delta_programs: Dict[Optional[int], List[Tuple]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_paths(self) -> int:
        """Number of covering paths."""
        return len(self.path_plans)

    def distinct_keys(self) -> Set[EdgeKey]:
        """All generalised edge keys used by the query's covering paths."""
        return set(self.key_occurrences)

    def paths_containing(self, key: EdgeKey) -> List[int]:
        """Indices of covering paths that contain ``key``."""
        return [index for index, _ in self.key_occurrences.get(key, [])]

    # ------------------------------------------------------------------
    # Answer assembly
    # ------------------------------------------------------------------
    def evaluate_full(
        self,
        path_rows: Sequence[Iterable[Row]] | None = None,
        *,
        binding_relations: Sequence[Relation] | None = None,
        injective: bool = False,
        limit: int | None = None,
    ) -> Relation:
        """Join every path's rows into query-level bindings.

        Parameters
        ----------
        path_rows:
            Positional rows of each covering path (in plan order).  May be
            ``None`` when ``binding_relations`` supplies every path.
        binding_relations:
            Pre-converted binding relations (engines with maintained
            per-path state pass these so the relations' maintained indexes
            are reused); entries set to ``None`` are converted from
            ``path_rows`` on the fly.
        injective:
            Keep only bindings mapping distinct variables (and literals)
            to distinct vertices (isomorphism semantics).
        limit:
            *Existence mode.*  When given, the full cross-path join is
            skipped: bindings are enumerated by backtracking through the
            binding relations' maintained indexes and the evaluation stops
            as soon as ``limit`` distinct bindings exist.  ``limit=1`` is
            the deletion-invalidation probe — "does any answer survive?" —
            and costs O(first witness) instead of O(answer set).

        Returns
        -------
        Relation
            Bindings over :attr:`variable_names` — the query's full answer
            relation, or its first ``limit`` bindings in existence mode.
        """
        relations: List[Relation] = []
        for index, plan in enumerate(self.path_plans):
            prebuilt = binding_relations[index] if binding_relations else None
            if prebuilt is not None:
                relations.append(prebuilt)
            else:
                if path_rows is None:
                    raise ValueError(
                        "evaluate_full needs path_rows for paths without a "
                        "prebuilt binding relation"
                    )
                relations.append(plan.bindings_from_rows(path_rows[index]))
        if limit is not None:
            return self._evaluate_limited(relations, injective, limit)
        return self._join_bindings(relations, injective)

    def evaluate_delta(
        self,
        delta_rows_by_path: Mapping[int, Iterable[Row]],
        full_path_rows: Sequence[Iterable[Row]],
        *,
        binding_relations: Sequence[Relation] | None = None,
        injective: bool = False,
    ) -> Relation:
        """Bindings derivable only with the new (delta) rows of affected paths.

        For each affected path its delta rows replace the full relation while
        the other paths contribute their full relations; the union over
        affected paths is exactly the set of *new* query answers produced by
        the triggering update.
        """
        result = Relation(self.variable_names)
        for affected_index, delta_rows in delta_rows_by_path.items():
            delta_bindings = self.path_plans[affected_index].bindings_from_rows(delta_rows)
            if not delta_bindings:
                continue
            relations: List[Relation] = []
            for index, plan in enumerate(self.path_plans):
                if index == affected_index:
                    relations.append(delta_bindings)
                    continue
                prebuilt = binding_relations[index] if binding_relations else None
                if prebuilt is not None:
                    relations.append(prebuilt)
                else:
                    relations.append(plan.bindings_from_rows(full_path_rows[index]))
            joined = self._join_bindings(relations, injective)
            result.rows.update(joined.rows)
        if result.rows:
            result.version += 1
        return result

    # ------------------------------------------------------------------
    # Existence check (the notification hot path)
    # ------------------------------------------------------------------
    def has_new_binding(
        self,
        delta_rows_by_path: Mapping[int, Iterable[Row]],
        binding_relations: Sequence[Relation],
        *,
        injective: bool = False,
    ) -> bool:
        """``True`` iff :meth:`evaluate_delta` would be non-empty — without
        materialising it.

        Per-update notifications only need to know *whether* a query gained
        an answer.  Instead of building delta relations and joining them
        into full result sets, each delta binding is extended across the
        other covering paths by backtracking through their binding
        relations' maintained indexes, stopping at the first complete
        binding.  Every probe is O(bucket) and the whole check is
        proportional to the delta, not to the query's answer set.

        ``binding_relations`` must hold the *full* (already refreshed)
        binding relation of every covering path, in plan order.
        """
        for relation in binding_relations:
            if not relation.rows:
                # Some covering path has no bindings at all: no complete
                # answer can exist, with or without the delta.
                return False
        for affected_index, delta_rows in delta_rows_by_path.items():
            path_plan = self.path_plans[affected_index]
            program = self._delta_program(affected_index)
            names = path_plan.variable_names
            seen: Set[Row] = set()
            for row in delta_rows:
                binding = path_plan.binding_of_row(row)
                if binding is None or binding in seen:
                    continue
                seen.add(binding)
                assignment = dict(zip(names, binding))
                if self._extend_assignment(program, 0, assignment, binding_relations, injective):
                    return True
        return False

    def _delta_program(self, affected_index: Optional[int]) -> List[Tuple]:
        """Probe steps extending an affected path's binding across the others.

        With ``affected_index=None`` the program enumerates *every* path
        from an empty assignment (the full-enumeration program behind
        :meth:`iter_derivations` and the ``limit`` mode of
        :meth:`evaluate_full`).  Paths are ordered greedily so each step
        shares at least one already bound variable where possible; each
        step precomputes the positions probed (the shared variables) and
        the positions contributing new variables, so the runtime check does
        no schema arithmetic.
        """
        program = self._delta_programs.get(affected_index)
        if program is None:
            if affected_index is None:
                bound: Set[str] = set()
                remaining = list(range(len(self.path_plans)))
            else:
                bound = set(self.path_plans[affected_index].variable_names)
                remaining = [i for i in range(len(self.path_plans)) if i != affected_index]
            program = []
            while remaining:
                index = next(
                    (i for i in remaining if bound.intersection(self.path_plans[i].variable_names)),
                    remaining[0],
                )
                remaining.remove(index)
                names = self.path_plans[index].variable_names
                shared = tuple(name for name in names if name in bound)
                shared_positions = tuple(names.index(name) for name in shared)
                fresh = tuple(
                    (name, position) for position, name in enumerate(names) if name not in bound
                )
                program.append(
                    (
                        index,
                        shared,
                        shared_positions,
                        tuple(name for name, _ in fresh),
                        tuple(position for _, position in fresh),
                    )
                )
                bound.update(names)
            self._delta_programs[affected_index] = program
        return program

    def _extend_assignment(
        self,
        program: List[Tuple],
        step: int,
        assignment: Dict[str, object],
        binding_relations: Sequence[Relation],
        injective: bool,
    ) -> bool:
        if step == len(program):
            return not injective or self._is_injective(assignment.values())
        index, shared, shared_positions, new_names, new_positions = program[step]
        relation = binding_relations[index]
        if shared_positions:
            key = tuple(assignment[name] for name in shared)
            bucket = relation.probe(shared_positions, key)
        else:
            bucket = relation.rows
        if not bucket:
            return False
        if not new_names:
            # Every bucket row agrees with the assignment and binds nothing
            # new; one witness is enough.
            return self._extend_assignment(program, step + 1, assignment, binding_relations, injective)
        for bucket_row in bucket:
            extended = dict(assignment)
            for name, position in zip(new_names, new_positions):
                extended[name] = bucket_row[position]
            if self._extend_assignment(program, step + 1, extended, binding_relations, injective):
                return True
        return False

    # ------------------------------------------------------------------
    # Derivation enumeration (answer materialisation and existence mode)
    # ------------------------------------------------------------------
    def iter_derivations(
        self,
        binding_relations: Sequence[Relation],
        *,
        injective: bool = False,
    ) -> Iterator[Row]:
        """Yield one answer tuple per *derivation* of the query.

        A derivation is a combination of one binding per covering path that
        agrees on every shared variable; the same answer tuple is yielded
        once per derivation, which is exactly the multiplicity a counted
        answer relation needs (see
        :class:`~repro.matching.answers.MaterializedAnswers`).  Probes go
        through the binding relations' maintained indexes, so the cost is
        proportional to the number of derivations, never to the cross
        product of the path relations.
        """
        program = self._delta_program(None)
        names = self.variable_names
        for assignment in self._iter_assignments(program, 0, {}, binding_relations):
            if injective and not self._is_injective(assignment.values()):
                continue
            yield tuple(assignment[name] for name in names)

    def iter_delta_derivations(
        self,
        path_index: int,
        binding: Row,
        binding_relations: Sequence[Relation],
        *,
        injective: bool = False,
    ) -> Iterator[Row]:
        """Yield the derivations gained (or lost) with one path binding.

        Extends ``binding`` — a binding of covering path ``path_index``
        that just appeared in or disappeared from that path's binding
        relation — across the *other* paths' binding relations.  Each yield
        is one derivation of an answer whose support changes by exactly one
        unit; ``path_index``'s own relation is never probed, so the caller
        is free to feed the delta before or after patching it.
        """
        path_plan = self.path_plans[path_index]
        assignment = dict(zip(path_plan.variable_names, binding))
        program = self._delta_program(path_index)
        names = self.variable_names
        for extended in self._iter_assignments(program, 0, assignment, binding_relations):
            if injective and not self._is_injective(extended.values()):
                continue
            yield tuple(extended[name] for name in names)

    def _iter_assignments(
        self,
        program: List[Tuple],
        step: int,
        assignment: Dict[str, object],
        binding_relations: Sequence[Relation],
    ) -> Iterator[Dict[str, object]]:
        """Enumerate every completion of ``assignment`` through ``program``.

        Unlike :meth:`_extend_assignment` (which short-circuits at the
        first witness), every consistent combination of bucket rows is
        visited — one yield per derivation.  When a step binds no new
        variable its bucket is keyed on every column, so it holds at most
        one row and contributes at most one choice.
        """
        if step == len(program):
            yield assignment
            return
        index, shared, shared_positions, new_names, new_positions = program[step]
        relation = binding_relations[index]
        if shared_positions:
            key = tuple(assignment[name] for name in shared)
            bucket = relation.probe(shared_positions, key)
        else:
            bucket = relation.rows
        if not bucket:
            return
        if not new_names:
            yield from self._iter_assignments(
                program, step + 1, assignment, binding_relations
            )
            return
        for bucket_row in bucket:
            extended = dict(assignment)
            for name, position in zip(new_names, new_positions):
                extended[name] = bucket_row[position]
            yield from self._iter_assignments(
                program, step + 1, extended, binding_relations
            )

    def _evaluate_limited(
        self, relations: List[Relation], injective: bool, limit: int
    ) -> Relation:
        """Existence-mode evaluation: stop once ``limit`` bindings exist."""
        result = Relation(self.variable_names)
        if limit < 1 or any(len(relation) == 0 for relation in relations):
            return result
        for answer in self.iter_derivations(relations, injective=injective):
            result.add(answer)
            if len(result.rows) >= limit:
                break
        return result

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _is_injective(self, values: Iterable[object]) -> bool:
        """``True`` when ``values`` plus the plan's literals are pairwise distinct."""
        combined = tuple(values) + self._literal_values
        return len(set(combined)) == len(combined)

    def _join_bindings(self, relations: List[Relation], injective: bool) -> Relation:
        if not relations:
            return Relation(self.variable_names)
        if any(len(relation) == 0 for relation in relations):
            return Relation(self.variable_names)
        # Join smaller relations first to keep intermediate results small;
        # ties broken by plan order for determinism.
        order = sorted(range(len(relations)), key=lambda i: (len(relations[i]), i))
        current = relations[order[0]]
        for index in order[1:]:
            current = natural_join(current, relations[index])
            if not current:
                break
        # Normalise the column order to the plan's variable order.
        if current.schema != self.variable_names and current.rows:
            positions = [current.column_index(name) for name in self.variable_names]
            current = Relation(
                self.variable_names,
                {tuple(row[p] for p in positions) for row in current.rows},
            )
        elif current.schema != self.variable_names:
            current = Relation(self.variable_names)
        if injective and current.rows:
            current = self._injective_filter(current)
        return current

    def _injective_filter(self, bindings: Relation) -> Relation:
        """Keep only bindings where variables (and literals) map to distinct vertices."""
        literals = self._literal_values
        kept = set()
        for row in bindings.rows:
            values = row + literals
            if len(set(values)) == len(values):
                kept.add(row)
        return Relation(bindings.schema, kept)


def bindings_to_dicts(
    bindings: Relation, interner: VertexInterner | None = None
) -> List[Dict[str, str]]:
    """Convert a binding relation into a list of ``{variable: vertex}`` dicts.

    With ``interner`` the rows are int-encoded and decoded back to the
    original identifier strings first.  The output is sorted on the
    variable-name-sorted items of each binding — the canonical answer order
    the naive string-based oracle uses — so every engine's ``matches_of``
    list compares equal element for element.  (The seed sorted on raw rows
    in schema order instead, which silently diverged from the oracle
    whenever a query's first-occurrence variable order was not
    alphabetical.)
    """
    schema = bindings.schema
    if interner is not None:
        rows: Iterable[Row] = (interner.decode_row(row) for row in bindings.rows)
    else:
        rows = bindings.rows
    dicts = [dict(zip(schema, row)) for row in rows]
    dicts.sort(key=lambda binding: tuple(sorted(binding.items())))
    return dicts
