"""Backtracking sub-graph matcher over a materialised graph.

This is the reference evaluator used by

* the naive per-query oracle engine (correctness baseline in tests),
* the graph-database baseline, which re-executes affected queries on the
  full store after each update, and
* unit tests that cross-check the incremental engines' answers.

The matcher performs plain backtracking search over query edges with a
most-constrained-edge-first ordering, resolving candidates through the
graph's label and adjacency indexes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..graph.elements import Edge
from ..graph.graph import Graph
from ..query.pattern import QueryEdge, QueryGraphPattern
from ..query.terms import Literal, Variable

__all__ = ["find_embeddings", "find_new_embeddings", "count_embeddings"]

Assignment = Dict[str, str]


def find_embeddings(
    graph: Graph,
    pattern: QueryGraphPattern,
    *,
    injective: bool = False,
    limit: int | None = None,
) -> List[Assignment]:
    """Enumerate homomorphisms from ``pattern`` into ``graph``.

    Returns variable assignments (``{variable name: vertex}``).  With
    ``injective=True`` distinct variables (and literals) must map to distinct
    vertices, i.e. classic sub-graph isomorphism.  ``limit`` stops the search
    early once that many embeddings have been found.
    """
    results: List[Assignment] = []
    _search(graph, list(pattern.edges), {}, pattern, injective, limit, results)
    return _dedupe(results)


def find_new_embeddings(
    graph: Graph,
    pattern: QueryGraphPattern,
    new_edge: Edge,
    *,
    injective: bool = False,
    limit: int | None = None,
) -> List[Assignment]:
    """Embeddings that *use* ``new_edge`` — i.e. the answers created by it.

    For each query edge whose generalised key matches ``new_edge``, the query
    edge is pinned onto ``new_edge`` and the remaining edges are matched as
    usual.  The union over all pinnings is exactly the set of new answers
    produced by adding ``new_edge`` to the graph (assuming the edge was not
    present before).
    """
    results: List[Assignment] = []
    for query_edge in pattern.edges:
        if not query_edge.key.matches(new_edge):
            continue
        assignment = _bind_edge(query_edge, new_edge, {})
        if assignment is None:
            continue
        remaining = [e for e in pattern.edges if e.index != query_edge.index]
        _search(graph, remaining, assignment, pattern, injective, limit, results)
        if limit is not None and len(results) >= limit:
            break
    return _dedupe(results)


def count_embeddings(graph: Graph, pattern: QueryGraphPattern, *, injective: bool = False) -> int:
    """Number of distinct embeddings of ``pattern`` in ``graph``."""
    return len(find_embeddings(graph, pattern, injective=injective))


# ----------------------------------------------------------------------
# Internal machinery
# ----------------------------------------------------------------------
def _dedupe(assignments: Iterable[Assignment]) -> List[Assignment]:
    seen: Set[Tuple[Tuple[str, str], ...]] = set()
    unique: List[Assignment] = []
    for assignment in assignments:
        key = tuple(sorted(assignment.items()))
        if key not in seen:
            seen.add(key)
            unique.append(assignment)
    return unique


def _resolve(term, assignment: Assignment) -> Optional[str]:
    """Concrete vertex for ``term`` under ``assignment`` (``None`` if unbound)."""
    if isinstance(term, Literal):
        return term.value
    return assignment.get(term.name)


def _bind_term(term, vertex: str, assignment: Assignment) -> Optional[Assignment]:
    """Extend ``assignment`` so ``term`` maps to ``vertex`` (or ``None`` on clash)."""
    if isinstance(term, Literal):
        return assignment if term.value == vertex else None
    bound = assignment.get(term.name)
    if bound is None:
        extended = dict(assignment)
        extended[term.name] = vertex
        return extended
    return assignment if bound == vertex else None


def _bind_edge(query_edge: QueryEdge, edge: Edge, assignment: Assignment) -> Optional[Assignment]:
    """Bind both endpoints of ``query_edge`` onto the concrete ``edge``."""
    after_source = _bind_term(query_edge.source, edge.source, assignment)
    if after_source is None:
        return None
    return _bind_term(query_edge.target, edge.target, after_source)


def _candidate_edges(graph: Graph, query_edge: QueryEdge, assignment: Assignment):
    """Concrete graph edges that could match ``query_edge`` under ``assignment``."""
    source = _resolve(query_edge.source, assignment)
    target = _resolve(query_edge.target, assignment)
    label = query_edge.label
    if source is not None and target is not None:
        edge = Edge(label, source, target)
        return [edge] if graph.has_edge(edge) else []
    if source is not None:
        return [Edge(label, source, t) for t in graph.successors(source, label)]
    if target is not None:
        return [Edge(label, s, target) for s in graph.predecessors(target, label)]
    return [Edge(label, s, t) for s, t in graph.edges_with_label(label)]


def _boundness(query_edge: QueryEdge, assignment: Assignment) -> int:
    """How constrained an edge is: 2 = both endpoints known, 0 = neither."""
    score = 0
    if _resolve(query_edge.source, assignment) is not None:
        score += 1
    if _resolve(query_edge.target, assignment) is not None:
        score += 1
    return score


def _search(
    graph: Graph,
    remaining: Sequence[QueryEdge],
    assignment: Assignment,
    pattern: QueryGraphPattern,
    injective: bool,
    limit: int | None,
    results: List[Assignment],
) -> None:
    if limit is not None and len(results) >= limit:
        return
    if not remaining:
        if not injective or _is_injective(assignment, pattern):
            results.append(dict(assignment))
        return
    # Most-constrained edge first: fewest candidate graph edges to try.
    next_edge = max(remaining, key=lambda e: (_boundness(e, assignment), -e.index))
    rest = [e for e in remaining if e.index != next_edge.index]
    for edge in _candidate_edges(graph, next_edge, assignment):
        extended = _bind_edge(next_edge, edge, assignment)
        if extended is None:
            continue
        _search(graph, rest, extended, pattern, injective, limit, results)
        if limit is not None and len(results) >= limit:
            return


def _is_injective(assignment: Assignment, pattern: QueryGraphPattern) -> bool:
    values = list(assignment.values()) + [lit.value for lit in pattern.literals()]
    return len(set(values)) == len(values)
