"""Materialized views, hash joins, caching, and query evaluation plans."""

from .cache import CacheStatistics, JoinCache
from .evaluator import count_embeddings, find_embeddings, find_new_embeddings
from .plans import PathPlan, QueryEvaluationPlan, bindings_to_dicts
from .relation import CountedRelation, Relation, natural_join
from .views import EdgeViewRegistry

__all__ = [
    "Relation",
    "CountedRelation",
    "natural_join",
    "JoinCache",
    "CacheStatistics",
    "EdgeViewRegistry",
    "PathPlan",
    "QueryEvaluationPlan",
    "bindings_to_dicts",
    "find_embeddings",
    "find_new_embeddings",
    "count_embeddings",
]
