"""The matching layer: relations, joins, views, plans, and answer caches.

``pydoc repro.matching`` is the reference for the whole layer:

* :class:`Relation` / :class:`CountedRelation` — mutable tuple sets with
  signed delta logs and *maintained indexes* (persistent hash buckets
  patched by every mutation; see :meth:`Relation.ensure_index` and
  :meth:`Relation.probe`).
* :class:`EdgeViewRegistry` — the materialized base views of query edges
  and the interning boundary of the system.
* :class:`QueryEvaluationPlan` / :class:`PathPlan` — per-query covering-path
  decomposition, delta evaluation, the witness-probe existence checks
  (:meth:`QueryEvaluationPlan.has_new_binding` and
  ``evaluate_full(limit=1)``), and derivation enumeration.
* :class:`MaterializedAnswers` / :class:`AnswerSetCache` — the maintained
  answer relations behind the ``+`` engines (TRIC+ / INV+ / INC+).
"""

from .answers import AnswerSetCache, MaterializedAnswers
from .evaluator import count_embeddings, find_embeddings, find_new_embeddings
from .plans import PathPlan, QueryEvaluationPlan, bindings_to_dicts
from .relation import CountedRelation, Relation, natural_join
from .views import EdgeViewRegistry

__all__ = [
    "Relation",
    "CountedRelation",
    "natural_join",
    "EdgeViewRegistry",
    "PathPlan",
    "QueryEvaluationPlan",
    "bindings_to_dicts",
    "MaterializedAnswers",
    "AnswerSetCache",
    "find_embeddings",
    "find_new_embeddings",
    "count_embeddings",
]
