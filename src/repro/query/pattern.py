"""Query graph patterns (Definition 3.4 of the paper).

A :class:`QueryGraphPattern` is a small directed labelled multigraph whose
vertex terms are literals or variables.  Patterns are immutable once built;
use :class:`~repro.query.builder.QueryBuilder` or
:func:`QueryGraphPattern.from_triples` to construct them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from ..graph.errors import QueryError
from .terms import EdgeKey, Literal, Term, Variable, edge_key_for_query_edge, term

__all__ = ["QueryEdge", "QueryGraphPattern"]


@dataclass(frozen=True, slots=True)
class QueryEdge:
    """A single directed query edge ``source --label--> target``.

    ``index`` identifies the edge occurrence inside its pattern, which matters
    for multigraph queries that repeat the same (label, source, target)
    triple.
    """

    index: int
    label: str
    source: Term
    target: Term

    @property
    def key(self) -> EdgeKey:
        """Generalised key of this edge (variables anonymised)."""
        return edge_key_for_query_edge(self.label, self.source, self.target)

    def terms(self) -> Tuple[Term, Term]:
        """Return the (source, target) terms."""
        return (self.source, self.target)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source} -[{self.label}]-> {self.target}"


class QueryGraphPattern:
    """An immutable continuous sub-graph query.

    Parameters
    ----------
    query_id:
        Unique identifier of the query within a query database.
    edges:
        Sequence of ``(label, source, target)`` triples; terms may be given as
        strings (``"?x"`` denotes a variable) or :class:`Term` instances.
    name:
        Optional human-readable name used in reports.
    """

    def __init__(
        self,
        query_id: str,
        edges: Sequence[tuple[str, "Term | str", "Term | str"]],
        name: str | None = None,
    ) -> None:
        if not edges:
            raise QueryError("a query graph pattern must contain at least one edge")
        self.query_id = query_id
        self.name = name or query_id
        self._edges: List[QueryEdge] = []
        for index, (label, source, target) in enumerate(edges):
            if not label:
                raise QueryError("query edge labels must be non-empty")
            self._edges.append(QueryEdge(index, label, term(source), term(target)))
        self._vertices: List[Term] = []
        seen: Set[Term] = set()
        for edge in self._edges:
            for vertex in edge.terms():
                if vertex not in seen:
                    seen.add(vertex)
                    self._vertices.append(vertex)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_triples(
        cls,
        query_id: str,
        triples: Iterable[tuple[str, str, str]],
        name: str | None = None,
    ) -> "QueryGraphPattern":
        """Build a pattern from ``(label, source, target)`` string triples."""
        return cls(query_id, list(triples), name=name)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def edges(self) -> Sequence[QueryEdge]:
        """The query edges in declaration order."""
        return tuple(self._edges)

    @property
    def num_edges(self) -> int:
        """Number of query edges."""
        return len(self._edges)

    @property
    def vertices(self) -> Sequence[Term]:
        """Distinct vertex terms in first-seen order."""
        return tuple(self._vertices)

    @property
    def num_vertices(self) -> int:
        """Number of distinct vertex terms."""
        return len(self._vertices)

    def variables(self) -> Tuple[Variable, ...]:
        """Distinct variables in first-seen order."""
        return tuple(v for v in self._vertices if isinstance(v, Variable))

    def literals(self) -> Tuple[Literal, ...]:
        """Distinct literals in first-seen order."""
        return tuple(v for v in self._vertices if isinstance(v, Literal))

    def edge_keys(self) -> Tuple[EdgeKey, ...]:
        """Generalised keys of every edge (in edge order, duplicates kept)."""
        return tuple(edge.key for edge in self._edges)

    def distinct_edge_keys(self) -> Set[EdgeKey]:
        """Set of distinct generalised edge keys."""
        return {edge.key for edge in self._edges}

    def edge_labels(self) -> Set[str]:
        """Set of distinct edge labels used by the pattern."""
        return {edge.label for edge in self._edges}

    def out_edges(self, vertex: Term) -> List[QueryEdge]:
        """Edges whose source term equals ``vertex``."""
        return [edge for edge in self._edges if edge.source == vertex]

    def in_edges(self, vertex: Term) -> List[QueryEdge]:
        """Edges whose target term equals ``vertex``."""
        return [edge for edge in self._edges if edge.target == vertex]

    def adjacency(self) -> Dict[Term, List[QueryEdge]]:
        """Map each vertex term to its outgoing query edges."""
        result: Dict[Term, List[QueryEdge]] = {vertex: [] for vertex in self._vertices}
        for edge in self._edges:
            result[edge.source].append(edge)
        return result

    # ------------------------------------------------------------------
    # Structural classification helpers (used by the workload generator
    # and by tests).
    # ------------------------------------------------------------------
    def degree(self, vertex: Term) -> int:
        """Total degree (in + out) of a vertex term."""
        return len(self.out_edges(vertex)) + len(self.in_edges(vertex))

    def is_chain(self) -> bool:
        """``True`` when the pattern is a simple directed chain."""
        if self.num_edges != self.num_vertices - 1:
            return False
        sources = [e.source for e in self._edges]
        targets = [e.target for e in self._edges]
        starts = [v for v in self._vertices if v in sources and v not in targets]
        ends = [v for v in self._vertices if v in targets and v not in sources]
        if len(starts) != 1 or len(ends) != 1:
            return False
        return all(self.degree(v) <= 2 for v in self._vertices)

    def is_star(self) -> bool:
        """``True`` when one centre vertex touches every edge."""
        if self.num_edges < 2:
            return False
        return any(self.degree(v) == self.num_edges for v in self._vertices)

    def is_cycle(self) -> bool:
        """``True`` when the pattern is a single directed cycle."""
        if self.num_edges != self.num_vertices or self.num_edges < 2:
            return False
        return all(
            len(self.out_edges(v)) == 1 and len(self.in_edges(v)) == 1
            for v in self._vertices
        )

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[QueryEdge]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryGraphPattern):
            return NotImplemented
        return self.query_id == other.query_id and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self.query_id, tuple(self._edges)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryGraphPattern(id={self.query_id!r}, edges={self.num_edges}, "
            f"vertices={self.num_vertices})"
        )
