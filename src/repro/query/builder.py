"""Fluent builder for query graph patterns.

The builder is the friendly front door for applications: it accepts terms as
plain strings (``"?x"`` for variables), checks connectivity, and produces an
immutable :class:`~repro.query.pattern.QueryGraphPattern`.
"""

from __future__ import annotations

from typing import List, Tuple

from ..graph.errors import QueryError
from .pattern import QueryGraphPattern
from .terms import Term, term

__all__ = ["QueryBuilder"]


class QueryBuilder:
    """Incrementally assemble a :class:`QueryGraphPattern`.

    Example
    -------
    >>> query = (
    ...     QueryBuilder("spam-clique")
    ...     .edge("shares", "?user", "?post")
    ...     .edge("links", "?post", "flagged.example.org")
    ...     .build()
    ... )
    >>> query.num_edges
    2
    """

    def __init__(self, query_id: str, name: str | None = None) -> None:
        self.query_id = query_id
        self.name = name
        self._edges: List[Tuple[str, Term, Term]] = []

    def edge(self, label: str, source: "Term | str", target: "Term | str") -> "QueryBuilder":
        """Add a directed edge ``source --label--> target`` and return ``self``."""
        if not label:
            raise QueryError("query edge labels must be non-empty")
        self._edges.append((label, term(source), term(target)))
        return self

    def chain(self, label: str, *vertices: "Term | str") -> "QueryBuilder":
        """Add a chain of edges with the same label through ``vertices``."""
        if len(vertices) < 2:
            raise QueryError("a chain requires at least two vertices")
        for source, target in zip(vertices, vertices[1:]):
            self.edge(label, source, target)
        return self

    @property
    def num_edges(self) -> int:
        """Number of edges added so far."""
        return len(self._edges)

    def build(self) -> QueryGraphPattern:
        """Finalise and return the immutable pattern.

        Raises
        ------
        QueryError
            If no edge was added or the pattern is not weakly connected
            (disconnected patterns are almost always user errors: they match
            the Cartesian product of their components).
        """
        if not self._edges:
            raise QueryError("cannot build an empty query graph pattern")
        pattern = QueryGraphPattern(self.query_id, list(self._edges), name=self.name)
        if not _is_weakly_connected(pattern):
            raise QueryError(
                f"query {self.query_id!r} is not weakly connected; "
                "register the components as separate queries instead"
            )
        return pattern


def _is_weakly_connected(pattern: QueryGraphPattern) -> bool:
    """Return ``True`` when the pattern is connected ignoring edge direction."""
    vertices = list(pattern.vertices)
    if len(vertices) <= 1:
        return True
    neighbours = {vertex: set() for vertex in vertices}
    for edge in pattern.edges:
        neighbours[edge.source].add(edge.target)
        neighbours[edge.target].add(edge.source)
    seen = {vertices[0]}
    frontier = [vertices[0]]
    while frontier:
        vertex = frontier.pop()
        for neighbour in neighbours[vertex]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return len(seen) == len(vertices)
