"""Covering-path decomposition of query graph patterns (paper Section 4.1).

Every query graph pattern is decomposed into a set of directed paths that
together cover all of its vertices and edges (Definition 4.2).  The greedy
procedure mirrors the paper: depth-first walks are started from "root-like"
vertices and follow unvisited edges until a leaf is reached, walks are
repeated until every edge is covered, and paths that are contiguous sub-paths
of other paths are discarded.

Paths purposely share prefixes whenever queries share structure — this is the
property the TRIC trie exploits to cluster queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..graph.errors import DecompositionError
from .pattern import QueryEdge, QueryGraphPattern
from .terms import EdgeKey, Term

__all__ = ["CoveringPath", "covering_paths", "is_subpath"]


@dataclass(frozen=True)
class CoveringPath:
    """A directed walk over query edges: ``t0 -e0-> t1 -e1-> ... -> tk``."""

    edges: Tuple[QueryEdge, ...]

    def __post_init__(self) -> None:
        if not self.edges:
            raise DecompositionError("a covering path must contain at least one edge")
        for previous, current in zip(self.edges, self.edges[1:]):
            if previous.target != current.source:
                raise DecompositionError(
                    "covering path edges are not connected: "
                    f"{previous} does not lead into {current}"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of edges in the path."""
        return len(self.edges)

    def terms(self) -> Tuple[Term, ...]:
        """Vertex terms along the path (length + 1 positions)."""
        positions: List[Term] = [self.edges[0].source]
        positions.extend(edge.target for edge in self.edges)
        return tuple(positions)

    def key_sequence(self) -> Tuple[EdgeKey, ...]:
        """Generalised edge keys along the path (the trie path)."""
        return tuple(edge.key for edge in self.edges)

    def edge_indices(self) -> Tuple[int, ...]:
        """Indices (within the query) of the edges along the path."""
        return tuple(edge.index for edge in self.edges)

    def __len__(self) -> int:
        return len(self.edges)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [str(self.edges[0].source)]
        for edge in self.edges:
            parts.append(f"-[{edge.label}]-> {edge.target}")
        return " ".join(parts)


def is_subpath(candidate: CoveringPath, other: CoveringPath) -> bool:
    """Return ``True`` when ``candidate`` is a contiguous sub-path of ``other``."""
    if candidate.length > other.length:
        return False
    needle = candidate.edge_indices()
    haystack = other.edge_indices()
    for start in range(len(haystack) - len(needle) + 1):
        if haystack[start : start + len(needle)] == needle:
            return True
    return False


def covering_paths(pattern: QueryGraphPattern) -> List[CoveringPath]:
    """Decompose ``pattern`` into covering paths (Definition 4.2).

    The result covers every edge (and therefore every vertex, since patterns
    have no isolated vertices) at least once; no returned path is a
    contiguous sub-path of another.
    """
    adjacency = pattern.adjacency()
    covered: Set[int] = set()
    walks: List[List[QueryEdge]] = []

    for start in _start_order(pattern):
        while len(covered) < pattern.num_edges:
            walk = _greedy_walk(start, adjacency, covered)
            new_edges = [edge for edge in walk if edge.index not in covered]
            if not new_edges:
                break
            covered.update(edge.index for edge in walk)
            walks.append(walk)
        if len(covered) == pattern.num_edges:
            break

    # Cycles (or components only reachable through covered edges) may leave
    # edges uncovered when every start vertex has been exhausted; walk from
    # the uncovered edges directly.
    while len(covered) < pattern.num_edges:
        remaining = [edge for edge in pattern.edges if edge.index not in covered]
        start = remaining[0].source
        walk = _greedy_walk(start, adjacency, covered)
        new_edges = [edge for edge in walk if edge.index not in covered]
        if not new_edges:
            # The walk could not make progress (should not happen); fall back
            # to emitting the uncovered edge as a single-edge path.
            walk = [remaining[0]]
        covered.update(edge.index for edge in walk)
        walks.append(walk)

    paths = [CoveringPath(tuple(walk)) for walk in walks]
    paths = _drop_subpaths(paths)
    _validate_cover(pattern, paths)
    return paths


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _start_order(pattern: QueryGraphPattern) -> List[Term]:
    """Vertices ordered for walk starts: sources without incoming edges first.

    Starting every walk from the same root-like vertices maximises shared
    prefixes across the covering paths of a query (and across queries), which
    is what the trie clustering exploits.
    """
    targets = {edge.target for edge in pattern.edges}
    roots = [vertex for vertex in pattern.vertices if vertex not in targets]
    others = [vertex for vertex in pattern.vertices if vertex in targets]
    return roots + others


def _greedy_walk(
    start: Term,
    adjacency: Dict[Term, List[QueryEdge]],
    covered: Set[int],
) -> List[QueryEdge]:
    """Depth-first walk from ``start`` preferring uncovered edges.

    The walk traverses already-covered edges only when doing so can still
    reach an uncovered edge (this reproduces the paper's example where a
    shared prefix edge is re-walked to reach a second branch).  Each edge
    occurrence is used at most once per walk, which guarantees termination on
    cyclic patterns.
    """
    walk: List[QueryEdge] = []
    used_in_walk: Set[int] = set()
    current = start
    total_edges = sum(len(edges) for edges in adjacency.values())
    while len(walk) < total_edges:
        candidates = [
            edge for edge in adjacency.get(current, []) if edge.index not in used_in_walk
        ]
        if not candidates:
            break
        uncovered = [edge for edge in candidates if edge.index not in covered]
        if uncovered:
            chosen = min(uncovered, key=lambda edge: edge.index)
        else:
            reaching = [
                edge
                for edge in candidates
                if _leads_to_uncovered(edge, adjacency, covered, used_in_walk)
            ]
            if not reaching:
                break
            chosen = min(reaching, key=lambda edge: edge.index)
        walk.append(chosen)
        used_in_walk.add(chosen.index)
        current = chosen.target
    return walk


def _leads_to_uncovered(
    edge: QueryEdge,
    adjacency: Dict[Term, List[QueryEdge]],
    covered: Set[int],
    used_in_walk: Set[int],
) -> bool:
    """Return ``True`` when following ``edge`` can still reach an uncovered edge."""
    seen: Set[int] = set(used_in_walk)
    seen.add(edge.index)
    frontier = [edge.target]
    visited_terms: Set[Term] = set()
    while frontier:
        vertex = frontier.pop()
        if vertex in visited_terms:
            continue
        visited_terms.add(vertex)
        for candidate in adjacency.get(vertex, []):
            if candidate.index in seen:
                continue
            if candidate.index not in covered:
                return True
            seen.add(candidate.index)
            frontier.append(candidate.target)
    return False


def _drop_subpaths(paths: List[CoveringPath]) -> List[CoveringPath]:
    """Remove duplicates and paths that are contiguous sub-paths of others."""
    unique: List[CoveringPath] = []
    seen: Set[Tuple[int, ...]] = set()
    for path in paths:
        indices = path.edge_indices()
        if indices not in seen:
            seen.add(indices)
            unique.append(path)
    kept: List[CoveringPath] = []
    for path in unique:
        redundant = any(
            path is not other and is_subpath(path, other) and path.length < other.length
            for other in unique
        )
        if not redundant:
            kept.append(path)
    return kept


def _validate_cover(pattern: QueryGraphPattern, paths: Iterable[CoveringPath]) -> None:
    """Assert that ``paths`` cover every edge and vertex of ``pattern``."""
    covered_edges: Set[int] = set()
    covered_terms: Set[Term] = set()
    for path in paths:
        covered_edges.update(path.edge_indices())
        covered_terms.update(path.terms())
    missing_edges = {edge.index for edge in pattern.edges} - covered_edges
    if missing_edges:
        raise DecompositionError(
            f"covering paths for {pattern.query_id} miss edges {sorted(missing_edges)}"
        )
    missing_terms = set(pattern.vertices) - covered_terms
    if missing_terms:
        raise DecompositionError(
            f"covering paths for {pattern.query_id} miss vertices {missing_terms}"
        )
