"""Query model: patterns, terms, covering paths, builder, workload generator."""

from .builder import QueryBuilder
from .generator import (
    QueryWorkload,
    QueryWorkloadConfig,
    QueryWorkloadGenerator,
    generate_workload,
)
from .paths import CoveringPath, covering_paths, is_subpath
from .pattern import QueryEdge, QueryGraphPattern
from .terms import (
    ANY,
    EdgeKey,
    Literal,
    Term,
    Variable,
    candidate_keys_for_edge,
    edge_key_for_query_edge,
    generalize_term,
    is_variable,
    term,
)

__all__ = [
    "QueryBuilder",
    "QueryGraphPattern",
    "QueryEdge",
    "CoveringPath",
    "covering_paths",
    "is_subpath",
    "QueryWorkload",
    "QueryWorkloadConfig",
    "QueryWorkloadGenerator",
    "generate_workload",
    "ANY",
    "EdgeKey",
    "Literal",
    "Variable",
    "Term",
    "term",
    "is_variable",
    "generalize_term",
    "edge_key_for_query_edge",
    "candidate_keys_for_edge",
]
