"""Query terms: literals and variables used in query graph patterns.

A query graph pattern (Definition 3.4 of the paper) labels its vertices with
either *literals* — concrete entity identifiers that must match exactly — or
*variables* (written ``?name``) that may bind to any graph vertex.

The TRIC index clusters structurally-identical paths by *generalising*
variables: every variable becomes the anonymous variable ``?var`` so that two
paths that differ only in variable naming share trie nodes (Section 4.1,
"Variable Handling").  :func:`generalize` implements that mapping and
:class:`EdgeKey` is the generalised form of a query edge used as the key of
tries, inverted indexes, and materialized base views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..graph.elements import Edge, Vertex

__all__ = [
    "Variable",
    "Literal",
    "Term",
    "term",
    "is_variable",
    "ANY",
    "EdgeKey",
    "generalize_term",
    "edge_key_for_query_edge",
    "candidate_keys_for_edge",
]


@dataclass(frozen=True, slots=True)
class Variable:
    """A named query variable, e.g. ``?friend``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True, slots=True)
class Literal:
    """A literal vertex term that only matches the identical graph vertex."""

    value: Vertex

    def __str__(self) -> str:
        return self.value


Term = Union[Variable, Literal]

# Sentinel used in generalised edge keys wherever the original term was a
# variable.  A plain module-level string keeps keys hashable and compact.
ANY = "?var"


def term(value: "Term | str") -> Term:
    """Coerce ``value`` into a :class:`Variable` or :class:`Literal`.

    Strings beginning with ``"?"`` become variables (without the prefix);
    every other string becomes a literal.  Existing terms pass through.
    """
    if isinstance(value, (Variable, Literal)):
        return value
    if isinstance(value, str):
        if value.startswith("?"):
            name = value[1:]
            if not name:
                raise ValueError("variable names must not be empty")
            return Variable(name)
        return Literal(value)
    raise TypeError(f"cannot interpret {value!r} as a query term")


def is_variable(value: Term) -> bool:
    """Return ``True`` when ``value`` is a :class:`Variable`."""
    return isinstance(value, Variable)


@dataclass(frozen=True, slots=True)
class EdgeKey:
    """Generalised form of a query edge: label plus literal-or-``?var`` ends.

    ``source`` / ``target`` hold the literal vertex value when the original
    term was a literal, and :data:`ANY` when it was a variable.
    """

    label: str
    source: str
    target: str

    @property
    def source_is_variable(self) -> bool:
        """``True`` when the source position was a variable."""
        return self.source == ANY

    @property
    def target_is_variable(self) -> bool:
        """``True`` when the target position was a variable."""
        return self.target == ANY

    def matches(self, edge: Edge) -> bool:
        """Return ``True`` when a concrete graph ``edge`` satisfies this key."""
        if edge.label != self.label:
            return False
        if not self.source_is_variable and edge.source != self.source:
            return False
        if not self.target_is_variable and edge.target != self.target:
            return False
        return True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source} -[{self.label}]-> {self.target}"


def generalize_term(value: Term) -> str:
    """Map a term to its generalised key component (literal value or ``?var``)."""
    if isinstance(value, Variable):
        return ANY
    return value.value


def edge_key_for_query_edge(label: str, source: Term, target: Term) -> EdgeKey:
    """Build the :class:`EdgeKey` for a query edge."""
    return EdgeKey(label, generalize_term(source), generalize_term(target))


def candidate_keys_for_edge(edge: Edge) -> tuple[EdgeKey, EdgeKey, EdgeKey, EdgeKey]:
    """Enumerate the four generalised keys a concrete edge can match.

    An update ``s -[l]-> t`` can satisfy query edges that fix both endpoints,
    only the source, only the target, or neither.  The answering phase of
    every engine probes its indexes with these four keys.
    """
    return (
        EdgeKey(edge.label, edge.source, edge.target),
        EdgeKey(edge.label, edge.source, ANY),
        EdgeKey(edge.label, ANY, edge.target),
        EdgeKey(edge.label, ANY, ANY),
    )
