"""Synthetic query-workload generator (paper Section 6.1).

The paper evaluates every engine against query databases built from three
query classes — *chains*, *stars*, and *cycles*, chosen equiprobably — and
controlled by four knobs:

``num_queries``
    the query-database size ``|QDB|``,
``avg_edges``
    the average query size ``l`` (edges per query),
``selectivity``
    the fraction ``σ`` of queries that the update stream eventually
    satisfies,
``overlap``
    the fraction ``o`` of queries that share a common sub-pattern with other
    queries.

Satisfiable queries are sampled as embeddings of the *final* graph produced
by the stream (so they are guaranteed to match once enough updates arrive);
unsatisfiable queries reuse realistic edge labels but pin one endpoint to a
vertex that never appears, so engines still pay the indexing/probing cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..graph.errors import DatasetError
from ..graph.graph import Graph
from ..graph.stream import GraphStream
from .pattern import QueryGraphPattern
from .terms import Literal, Term, Variable

__all__ = ["QueryWorkloadConfig", "QueryWorkload", "QueryWorkloadGenerator", "generate_workload"]

_QUERY_CLASSES = ("chain", "star", "cycle")


@dataclass(frozen=True)
class QueryWorkloadConfig:
    """Knobs controlling the generated query database."""

    num_queries: int = 100
    avg_edges: int = 5
    selectivity: float = 0.25
    overlap: float = 0.35
    variable_ratio: float = 0.7
    seed: int = 7
    classes: Tuple[str, ...] = _QUERY_CLASSES
    overlap_pool_size: int | None = None

    def __post_init__(self) -> None:
        if self.num_queries <= 0:
            raise DatasetError("num_queries must be positive")
        if self.avg_edges <= 0:
            raise DatasetError("avg_edges must be positive")
        if not 0.0 <= self.selectivity <= 1.0:
            raise DatasetError("selectivity must lie in [0, 1]")
        if not 0.0 <= self.overlap <= 1.0:
            raise DatasetError("overlap must lie in [0, 1]")
        if not 0.0 <= self.variable_ratio <= 1.0:
            raise DatasetError("variable_ratio must lie in [0, 1]")
        unknown = set(self.classes) - set(_QUERY_CLASSES)
        if unknown:
            raise DatasetError(f"unknown query classes: {sorted(unknown)}")


@dataclass
class QueryWorkload:
    """A generated query database plus bookkeeping used by tests/benchmarks."""

    queries: List[QueryGraphPattern]
    satisfiable_ids: Set[str] = field(default_factory=set)
    overlapping_ids: Set[str] = field(default_factory=set)
    config: QueryWorkloadConfig = field(default_factory=QueryWorkloadConfig)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


class QueryWorkloadGenerator:
    """Sample a query database from the final graph of an update stream."""

    def __init__(self, graph: Graph, config: QueryWorkloadConfig | None = None) -> None:
        if graph.num_edges == 0:
            raise DatasetError("cannot generate a query workload from an empty graph")
        self.graph = graph
        self.config = config or QueryWorkloadConfig()
        self._random = random.Random(self.config.seed)
        self._vertices = sorted(graph.vertices())
        self._vertices_with_out = [v for v in self._vertices if graph.successors(v)]
        if not self._vertices_with_out:
            raise DatasetError("graph has no vertex with outgoing edges")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self) -> QueryWorkload:
        """Generate the full query workload described by the configuration."""
        config = self.config
        workload = QueryWorkload(queries=[], config=config)
        num_satisfiable = round(config.num_queries * config.selectivity)
        num_overlapping = round(config.num_queries * config.overlap)
        seeds = self._build_overlap_seeds()

        for index in range(config.num_queries):
            query_id = f"Q{index}"
            query_class = self._random.choice(list(config.classes))
            satisfiable = index < num_satisfiable
            overlapping = bool(seeds) and index % max(1, config.num_queries) < num_overlapping
            seed_walk = self._random.choice(seeds) if overlapping else None
            triples, satisfied = self._sample_query(query_class, satisfiable, seed_walk)
            pattern = QueryGraphPattern(query_id, triples, name=f"{query_class}-{query_id}")
            workload.queries.append(pattern)
            if satisfied:
                workload.satisfiable_ids.add(query_id)
            if overlapping:
                workload.overlapping_ids.add(query_id)

        # Shuffle so satisfiable / overlapping queries are not clustered by id
        # order (engines must not be able to exploit registration order).
        self._random.shuffle(workload.queries)
        return workload

    # ------------------------------------------------------------------
    # Sampling primitives
    # ------------------------------------------------------------------
    def _sample_query(
        self,
        query_class: str,
        satisfiable: bool,
        seed_walk: Sequence[Tuple[str, str, str]] | None,
    ) -> Tuple[List[Tuple[str, "Term | str", "Term | str"]], bool]:
        """Sample one query; returns its triples and whether it is satisfiable."""
        size = self._sample_size()
        if query_class == "chain":
            walk = self._sample_chain(size, seed_walk)
        elif query_class == "star":
            walk = self._sample_star(size, seed_walk)
        else:
            walk = self._sample_cycle(size, seed_walk)
        if not walk:
            walk = self._sample_chain(size, seed_walk)
        if not walk:
            raise DatasetError("unable to sample a query from the base graph")

        terms = self._assign_terms(walk)
        triples = [
            (label, terms[source], terms[target]) for label, source, target in walk
        ]
        if satisfiable:
            return triples, True
        return self._poison(triples), False

    def _sample_size(self) -> int:
        """Draw a query size so the workload average is ``avg_edges``."""
        avg = self.config.avg_edges
        low = max(1, avg - 2)
        high = avg + 2
        return self._random.randint(low, high)

    def _sample_chain(
        self, size: int, seed_walk: Sequence[Tuple[str, str, str]] | None
    ) -> List[Tuple[str, str, str]]:
        """Random directed walk of up to ``size`` edges in the base graph."""
        walk: List[Tuple[str, str, str]] = list(seed_walk or ())
        current = walk[-1][2] if walk else self._random.choice(self._vertices_with_out)
        attempts = 0
        while len(walk) < size and attempts < size * 4:
            attempts += 1
            successors = self._labelled_successors(current)
            if not successors:
                break
            label, target = self._random.choice(successors)
            walk.append((label, current, target))
            current = target
        return walk

    def _sample_star(
        self, size: int, seed_walk: Sequence[Tuple[str, str, str]] | None
    ) -> List[Tuple[str, str, str]]:
        """Star pattern: one hub vertex touching every edge (in or out)."""
        walk: List[Tuple[str, str, str]] = list(seed_walk or ())
        hub = walk[-1][2] if walk else self._random.choice(self._vertices_with_out)
        outgoing = [(label, hub, target) for label, target in self._labelled_successors(hub)]
        incoming = [(label, source, hub) for label, source in self._labelled_predecessors(hub)]
        incident = outgoing + incoming
        self._random.shuffle(incident)
        seen: Set[Tuple[str, str, str]] = set(walk)
        for triple in incident:
            if len(walk) >= size:
                break
            if triple in seen:
                continue
            seen.add(triple)
            walk.append(triple)
        return walk

    def _sample_cycle(
        self, size: int, seed_walk: Sequence[Tuple[str, str, str]] | None
    ) -> List[Tuple[str, str, str]]:
        """Directed cycle of up to ``size`` edges; falls back to a chain.

        Real directed cycles can be rare in sparse streams, so a bounded
        number of random walks looks for one; when none is found the query
        degrades into a chain, mirroring how the paper's generator keeps the
        three classes "typical in the relevant literature" without requiring
        every sample to succeed.
        """
        for _ in range(8):
            start = self._random.choice(self._vertices_with_out)
            walk: List[Tuple[str, str, str]] = []
            current = start
            for _ in range(max(2, size)):
                successors = self._labelled_successors(current)
                if not successors:
                    break
                closing = [(label, t) for label, t in successors if t == start and walk]
                if closing and len(walk) >= 1:
                    label, target = self._random.choice(closing)
                    walk.append((label, current, target))
                    return walk
                label, target = self._random.choice(successors)
                walk.append((label, current, target))
                current = target
        return self._sample_chain(size, seed_walk)

    # ------------------------------------------------------------------
    # Term assignment and poisoning
    # ------------------------------------------------------------------
    def _assign_terms(self, walk: Sequence[Tuple[str, str, str]]) -> Dict[str, Term]:
        """Map each sampled graph vertex to a variable or literal term."""
        mapping: Dict[str, Term] = {}
        counter = 0
        for _, source, target in walk:
            for vertex in (source, target):
                if vertex in mapping:
                    continue
                if self._random.random() < self.config.variable_ratio:
                    mapping[vertex] = Variable(f"v{counter}")
                    counter += 1
                else:
                    mapping[vertex] = Literal(vertex)
        # Guarantee at least one variable so the query is a pattern rather
        # than a fully-ground edge list.
        if not any(isinstance(t, Variable) for t in mapping.values()):
            first_vertex = walk[0][1]
            mapping[first_vertex] = Variable("v0")
        return mapping

    def _poison(
        self, triples: List[Tuple[str, "Term | str", "Term | str"]]
    ) -> List[Tuple[str, "Term | str", "Term | str"]]:
        """Make a query unsatisfiable while keeping its labels realistic.

        One endpoint of one edge is replaced with a literal vertex that never
        occurs in the stream.  Engines still index the query and probe their
        structures for it on every matching label — exactly the work an
        unselective subscription causes in practice.
        """
        index = self._random.randrange(len(triples))
        label, source, target = triples[index]
        missing = Literal(f"__absent_{self._random.randrange(10**9)}__")
        if self._random.random() < 0.5:
            triples[index] = (label, missing, target)
        else:
            triples[index] = (label, source, missing)
        # Poisoning must not leave the query without any variable (it would no
        # longer be a pattern); if it did, re-introduce one on the poisoned
        # edge — the absent literal keeps the query unsatisfiable regardless.
        has_variable = any(
            isinstance(term_, Variable)
            for _, source_, target_ in triples
            for term_ in (source_, target_)
        )
        if not has_variable:
            label, source, target = triples[index]
            if source == missing:
                triples[index] = (label, source, Variable("v0"))
            else:
                triples[index] = (label, Variable("v0"), target)
        return triples

    # ------------------------------------------------------------------
    # Overlap seeds
    # ------------------------------------------------------------------
    def _build_overlap_seeds(self) -> List[List[Tuple[str, str, str]]]:
        """Short shared walks that overlapping queries are grown from."""
        pool_size = self.config.overlap_pool_size
        if pool_size is None:
            pool_size = max(1, self.config.num_queries // 50)
        seeds: List[List[Tuple[str, str, str]]] = []
        attempts = 0
        while len(seeds) < pool_size and attempts < pool_size * 20:
            attempts += 1
            walk = self._sample_chain(2, None)
            if walk:
                seeds.append(walk[:2])
        return seeds

    # ------------------------------------------------------------------
    # Graph access helpers
    # ------------------------------------------------------------------
    def _labelled_successors(self, vertex: str) -> List[Tuple[str, str]]:
        """All (label, target) pairs leaving ``vertex``, deterministically ordered."""
        result: List[Tuple[str, str]] = []
        for label in sorted(self.graph.edge_labels()):
            for target in sorted(self.graph.successors(vertex, label)):
                result.append((label, target))
        return result

    def _labelled_predecessors(self, vertex: str) -> List[Tuple[str, str]]:
        """All (label, source) pairs entering ``vertex``, deterministically ordered."""
        result: List[Tuple[str, str]] = []
        for label in sorted(self.graph.edge_labels()):
            for source in sorted(self.graph.predecessors(vertex, label)):
                result.append((label, source))
        return result


def generate_workload(
    stream: GraphStream, config: QueryWorkloadConfig | None = None
) -> QueryWorkload:
    """Convenience wrapper: materialise ``stream`` and sample a workload from it."""
    graph = stream.to_graph()
    return QueryWorkloadGenerator(graph, config).generate()
