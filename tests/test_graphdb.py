"""Tests for the embedded property-graph database substrate."""

from __future__ import annotations

import pytest

from repro.graph.errors import EdgeNotFoundError, GraphError
from repro.graphdb import (
    GraphQuery,
    PropertyGraphStore,
    QueryExecutor,
    QueryPlanner,
    TransactionManager,
    compile_pattern,
)
from repro.query import QueryGraphPattern


@pytest.fixture
def store() -> PropertyGraphStore:
    store = PropertyGraphStore()
    store.add_edge("knows", "a", "b")
    store.add_edge("knows", "b", "c")
    store.add_edge("checksIn", "a", "rio")
    store.add_edge("checksIn", "b", "rio")
    return store


class TestStore:
    def test_vertices_and_edges_counts(self, store):
        assert store.num_vertices == 4
        assert store.num_edges == 4

    def test_create_vertex_merges_labels_and_properties(self):
        store = PropertyGraphStore()
        store.create_vertex("v", labels=["Person"], properties={"age": 3})
        store.create_vertex("v", labels=["Admin"], properties={"name": "x"})
        vertex = store.vertex("v")
        assert vertex.labels == {"Person", "Admin"}
        assert vertex.properties == {"age": 3, "name": "x"}
        assert store.vertices_with_label("Person") == {"v"}

    def test_has_edge_and_multiplicity(self, store):
        assert store.has_edge("knows", "a", "b")
        store.add_edge("knows", "a", "b")
        assert store.multiplicity("knows", "a", "b") == 2

    def test_remove_edge(self, store):
        store.remove_edge("knows", "a", "b")
        assert not store.has_edge("knows", "a", "b")
        with pytest.raises(EdgeNotFoundError):
            store.remove_edge("knows", "a", "b")

    def test_remove_duplicate_edge_keeps_one(self, store):
        store.add_edge("knows", "a", "b")
        store.remove_edge("knows", "a", "b")
        assert store.has_edge("knows", "a", "b")

    def test_navigation(self, store):
        assert store.successors("a", "knows") == {"b"}
        assert store.predecessors("rio", "checksIn") == {"a", "b"}
        assert store.edges_with_label("knows") == {("a", "b"), ("b", "c")}
        assert store.label_cardinality("checksIn") == 2

    def test_statistics(self, store):
        stats = store.statistics()
        assert stats.num_edges == 4
        assert stats.label_cardinalities["knows"] == 2


class TestTransactions:
    def test_commit_applies_buffered_writes(self):
        store = PropertyGraphStore()
        manager = TransactionManager(store, writes_per_transaction=10)
        manager.write_edge_addition("knows", "a", "b")
        assert store.num_edges == 0  # still buffered
        manager.flush()
        assert store.num_edges == 1
        assert manager.transactions_committed == 1
        assert manager.writes_committed == 1

    def test_autocommit_when_batch_is_full(self):
        store = PropertyGraphStore()
        manager = TransactionManager(store, writes_per_transaction=2)
        manager.write_edge_addition("l", "a", "b")
        manager.write_edge_addition("l", "b", "c")
        assert store.num_edges == 2

    def test_removal_through_transaction(self):
        store = PropertyGraphStore()
        store.add_edge("l", "a", "b")
        manager = TransactionManager(store)
        manager.write_edge_removal("l", "a", "b")
        manager.flush()
        assert store.num_edges == 0

    def test_rollback_discards_writes(self):
        store = PropertyGraphStore()
        manager = TransactionManager(store)
        tx = manager.begin()
        tx.add_edge("l", "a", "b")
        tx.rollback()
        assert manager.flush() == 0
        assert store.num_edges == 0

    def test_committed_transaction_cannot_be_reused(self):
        store = PropertyGraphStore()
        tx = TransactionManager(store).begin()
        tx.commit()
        with pytest.raises(GraphError):
            tx.add_edge("l", "a", "b")

    def test_invalid_batch_size(self):
        with pytest.raises(GraphError):
            TransactionManager(PropertyGraphStore(), writes_per_transaction=0)


class TestCompileAndPlan:
    def test_compile_pattern(self, checkin_query):
        compiled = compile_pattern(checkin_query)
        assert isinstance(compiled, GraphQuery)
        assert compiled.num_constraints == 3
        assert set(compiled.variables) == {"p1", "p2", "place"}
        text = compiled.to_text()
        assert text.startswith("MATCH")
        assert "[:knows]" in text and "RETURN" in text

    def test_planner_prefers_selective_constraints(self, store):
        pattern = QueryGraphPattern(
            "q", [("knows", "?x", "?y"), ("checksIn", "?x", "rio")]
        )
        plan = QueryPlanner(store).plan(compile_pattern(pattern))
        # The constraint with the literal endpoint is the most selective and
        # must be matched first.
        assert plan.ordered_constraints[0].label == "checksIn"
        assert plan.num_steps == 2
        assert plan.estimated_cost > 0

    def test_executor_plan_cache(self, store):
        executor = QueryExecutor(store)
        query = compile_pattern(QueryGraphPattern("q", [("knows", "?x", "?y")]))
        executor.execute(query)
        executor.execute(query)
        assert executor.plans_built == 1
        assert executor.plan_cache_hits >= 1


class TestExecutor:
    def test_execute_simple_pattern(self, store):
        executor = QueryExecutor(store)
        query = compile_pattern(QueryGraphPattern("q", [("knows", "?x", "?y")]))
        result = executor.execute(query)
        assert len(result) == 2
        assert {(a["x"], a["y"]) for a in result} == {("a", "b"), ("b", "c")}

    def test_execute_checkin_pattern(self, store, checkin_query):
        executor = QueryExecutor(store)
        result = executor.execute(compile_pattern(checkin_query))
        assert {(a["p1"], a["p2"], a["place"]) for a in result} == {("a", "b", "rio")}

    def test_execute_with_limit(self, store):
        executor = QueryExecutor(store)
        query = compile_pattern(QueryGraphPattern("q", [("knows", "?x", "?y")]))
        assert len(executor.execute(query, limit=1)) == 1

    def test_execute_injective(self):
        store = PropertyGraphStore()
        store.add_edge("knows", "a", "a")
        executor = QueryExecutor(store)
        query = compile_pattern(QueryGraphPattern("q", [("knows", "?x", "?y")]))
        assert len(executor.execute(query)) == 1
        assert len(executor.execute(query, injective=True)) == 0

    def test_execution_counters(self, store):
        executor = QueryExecutor(store)
        query = compile_pattern(QueryGraphPattern("q", [("knows", "?x", "?y")]))
        result = executor.execute(query)
        assert result.constraints_checked >= 1
        assert result.candidates_scanned >= 2
