"""Tests for the synthetic query-workload generator (paper Section 6.1)."""

from __future__ import annotations

import pytest

from repro.datasets import SNBConfig, SNBGenerator
from repro.graph import Graph
from repro.graph.errors import DatasetError
from repro.query import (
    QueryWorkloadConfig,
    QueryWorkloadGenerator,
    generate_workload,
)


@pytest.fixture(scope="module")
def snb_stream():
    return SNBGenerator(SNBConfig(num_updates=1_500, seed=2)).stream()


@pytest.fixture(scope="module")
def snb_graph(snb_stream) -> Graph:
    return snb_stream.to_graph()


class TestConfigValidation:
    def test_defaults_are_valid(self):
        QueryWorkloadConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_queries": 0},
            {"avg_edges": 0},
            {"selectivity": 1.5},
            {"selectivity": -0.1},
            {"overlap": 2.0},
            {"variable_ratio": -1.0},
            {"classes": ("chain", "triangle")},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(DatasetError):
            QueryWorkloadConfig(**kwargs)


class TestGeneration:
    def test_requested_number_of_queries(self, snb_graph):
        config = QueryWorkloadConfig(num_queries=60, seed=1)
        workload = QueryWorkloadGenerator(snb_graph, config).generate()
        assert len(workload) == 60
        assert len({q.query_id for q in workload.queries}) == 60

    def test_selectivity_bookkeeping(self, snb_graph):
        config = QueryWorkloadConfig(num_queries=40, selectivity=0.25, seed=3)
        workload = QueryWorkloadGenerator(snb_graph, config).generate()
        assert len(workload.satisfiable_ids) == 10

    def test_overlap_bookkeeping(self, snb_graph):
        config = QueryWorkloadConfig(num_queries=40, overlap=0.5, seed=3)
        workload = QueryWorkloadGenerator(snb_graph, config).generate()
        assert len(workload.overlapping_ids) >= 1

    def test_average_query_size_is_close_to_requested(self, snb_graph):
        config = QueryWorkloadConfig(num_queries=80, avg_edges=5, seed=4)
        workload = QueryWorkloadGenerator(snb_graph, config).generate()
        average = sum(q.num_edges for q in workload.queries) / len(workload)
        assert 2.0 <= average <= 7.0

    def test_every_query_has_at_least_one_variable(self, snb_graph):
        config = QueryWorkloadConfig(num_queries=50, variable_ratio=0.1, seed=5)
        workload = QueryWorkloadGenerator(snb_graph, config).generate()
        assert all(q.variables() for q in workload.queries)

    def test_deterministic_for_fixed_seed(self, snb_graph):
        config = QueryWorkloadConfig(num_queries=30, seed=9)
        first = QueryWorkloadGenerator(snb_graph, config).generate()
        second = QueryWorkloadGenerator(snb_graph, config).generate()
        assert [q.edges for q in first.queries] == [q.edges for q in second.queries]

    def test_different_seeds_differ(self, snb_graph):
        first = QueryWorkloadGenerator(snb_graph, QueryWorkloadConfig(num_queries=30, seed=1)).generate()
        second = QueryWorkloadGenerator(snb_graph, QueryWorkloadConfig(num_queries=30, seed=2)).generate()
        assert [q.edges for q in first.queries] != [q.edges for q in second.queries]

    def test_generate_workload_wrapper(self, snb_stream):
        workload = generate_workload(snb_stream, QueryWorkloadConfig(num_queries=20, seed=6))
        assert len(workload) == 20

    def test_empty_graph_rejected(self):
        with pytest.raises(DatasetError):
            QueryWorkloadGenerator(Graph(), QueryWorkloadConfig(num_queries=5))


class TestSatisfiability:
    def test_satisfiable_queries_actually_match_the_final_graph(self, snb_stream):
        """Satisfiable queries must be satisfied once the whole stream is replayed."""
        from repro import TRICPlusEngine

        workload = generate_workload(
            snb_stream, QueryWorkloadConfig(num_queries=30, selectivity=0.4, seed=8)
        )
        engine = TRICPlusEngine()
        engine.register_all(workload.queries)
        for update in snb_stream:
            engine.on_update(update)
        satisfied = engine.satisfied_queries()
        assert workload.satisfiable_ids <= satisfied

    def test_unsatisfiable_queries_never_match(self, snb_stream):
        from repro import TRICEngine

        workload = generate_workload(
            snb_stream, QueryWorkloadConfig(num_queries=30, selectivity=0.3, seed=12)
        )
        engine = TRICEngine()
        engine.register_all(workload.queries)
        for update in snb_stream:
            engine.on_update(update)
        unsatisfiable = {q.query_id for q in workload.queries} - workload.satisfiable_ids
        assert not (engine.satisfied_queries() & unsatisfiable)
