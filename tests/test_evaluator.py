"""Tests for the backtracking matcher (reference semantics)."""

from __future__ import annotations

import pytest

from repro.graph import Edge, Graph
from repro.matching.evaluator import count_embeddings, find_embeddings, find_new_embeddings
from repro.query import QueryGraphPattern


@pytest.fixture
def social_graph() -> Graph:
    graph = Graph()
    for label, source, target in [
        ("knows", "a", "b"),
        ("knows", "b", "c"),
        ("knows", "c", "a"),
        ("checksIn", "a", "rio"),
        ("checksIn", "b", "rio"),
        ("checksIn", "c", "paris"),
    ]:
        graph.add_edge(Edge(label, source, target))
    return graph


class TestFindEmbeddings:
    def test_single_edge_query(self, social_graph):
        pattern = QueryGraphPattern("q", [("checksIn", "?p", "rio")])
        embeddings = find_embeddings(social_graph, pattern)
        assert {e["p"] for e in embeddings} == {"a", "b"}

    def test_chain_query(self, social_graph):
        pattern = QueryGraphPattern("q", [("knows", "?x", "?y"), ("knows", "?y", "?z")])
        embeddings = find_embeddings(social_graph, pattern)
        assert len(embeddings) == 3  # the triangle closes three 2-hop chains

    def test_checkin_pattern(self, social_graph, checkin_query):
        embeddings = find_embeddings(social_graph, checkin_query)
        assert {(e["p1"], e["p2"], e["place"]) for e in embeddings} == {("a", "b", "rio")}

    def test_triangle_query(self, social_graph):
        pattern = QueryGraphPattern(
            "tri", [("knows", "?x", "?y"), ("knows", "?y", "?z"), ("knows", "?z", "?x")]
        )
        embeddings = find_embeddings(social_graph, pattern)
        assert len(embeddings) == 3  # three rotations of the single triangle

    def test_no_match(self, social_graph):
        pattern = QueryGraphPattern("q", [("likes", "?a", "?b")])
        assert find_embeddings(social_graph, pattern) == []

    def test_limit(self, social_graph):
        pattern = QueryGraphPattern("q", [("knows", "?x", "?y")])
        assert len(find_embeddings(social_graph, pattern, limit=2)) == 2

    def test_homomorphism_vs_isomorphism(self):
        graph = Graph([Edge("knows", "a", "a")])
        pattern = QueryGraphPattern("q", [("knows", "?x", "?y")])
        assert count_embeddings(graph, pattern) == 1
        assert count_embeddings(graph, pattern, injective=True) == 0

    def test_literal_vertex_constrains_matching(self, social_graph):
        pattern = QueryGraphPattern("q", [("knows", "a", "?y")])
        embeddings = find_embeddings(social_graph, pattern)
        assert {e["y"] for e in embeddings} == {"b"}


class TestFindNewEmbeddings:
    def test_new_edge_completes_a_pattern(self, checkin_query):
        graph = Graph(
            [Edge("knows", "p1", "p2"), Edge("checksIn", "p1", "rio")]
        )
        new_edge = Edge("checksIn", "p2", "rio")
        graph.add_edge(new_edge)
        embeddings = find_new_embeddings(graph, checkin_query, new_edge)
        assert len(embeddings) == 1
        assert embeddings[0] == {"p1": "p1", "p2": "p2", "place": "rio"}

    def test_edge_not_used_by_pattern_yields_nothing(self, checkin_query):
        graph = Graph([Edge("likes", "p1", "post")])
        embeddings = find_new_embeddings(graph, checkin_query, Edge("likes", "p1", "post"))
        assert embeddings == []

    def test_results_must_use_the_new_edge(self):
        pattern = QueryGraphPattern("q", [("knows", "?x", "?y")])
        graph = Graph([Edge("knows", "a", "b")])
        new_edge = Edge("knows", "c", "d")
        graph.add_edge(new_edge)
        embeddings = find_new_embeddings(graph, pattern, new_edge)
        assert embeddings == [{"x": "c", "y": "d"}]

    def test_limit_short_circuits(self, social_graph):
        pattern = QueryGraphPattern("q", [("knows", "?x", "?y")])
        new_edge = Edge("knows", "a", "b")
        assert len(find_new_embeddings(social_graph, pattern, new_edge, limit=1)) == 1

    def test_count_embeddings(self, social_graph):
        pattern = QueryGraphPattern("q", [("knows", "?x", "?y")])
        assert count_embeddings(social_graph, pattern) == 3
