"""Tests for the materialized base-view registry."""

from __future__ import annotations

from repro.graph import Edge
from repro.matching.views import EdgeViewRegistry
from repro.query.terms import ANY, EdgeKey


class TestRegistration:
    def test_register_creates_empty_view(self):
        registry = EdgeViewRegistry()
        view = registry.register(EdgeKey("knows", ANY, ANY))
        assert len(view) == 0
        assert len(registry) == 1

    def test_register_is_idempotent(self):
        registry = EdgeViewRegistry()
        key = EdgeKey("knows", ANY, ANY)
        first = registry.register(key)
        second = registry.register(key)
        assert first is second
        assert len(registry) == 1

    def test_register_all_and_keys(self):
        registry = EdgeViewRegistry()
        keys = [EdgeKey("a", ANY, ANY), EdgeKey("b", "x", ANY)]
        registry.register_all(keys)
        assert set(registry.keys()) == set(keys)
        assert registry.has_label("a")
        assert not registry.has_label("c")

    def test_get_and_contains(self):
        registry = EdgeViewRegistry()
        key = EdgeKey("a", ANY, ANY)
        assert registry.get(key) is None
        registry.register(key)
        assert key in registry
        assert registry.get(key) is not None


class TestStreamMaintenance:
    def test_matching_keys_only_returns_registered_generalisations(self):
        registry = EdgeViewRegistry()
        registry.register(EdgeKey("posted", ANY, "pst1"))
        registry.register(EdgeKey("posted", ANY, ANY))
        keys = registry.matching_keys(Edge("posted", "p1", "pst1"))
        assert set(keys) == {EdgeKey("posted", ANY, "pst1"), EdgeKey("posted", ANY, ANY)}
        assert registry.matching_keys(Edge("likes", "p1", "pst1")) == []

    def test_apply_addition_populates_all_matching_views(self):
        registry = EdgeViewRegistry()
        registry.register(EdgeKey("posted", ANY, "pst1"))
        registry.register(EdgeKey("posted", ANY, ANY))
        changed = registry.apply_addition(Edge("posted", "p1", "pst1"))
        assert {key for key, _ in changed} == {
            EdgeKey("posted", ANY, "pst1"),
            EdgeKey("posted", ANY, ANY),
        }
        assert all(is_new for _, is_new in changed)
        assert registry.total_rows() == 2

    def test_duplicate_addition_reports_not_new(self):
        registry = EdgeViewRegistry()
        registry.register(EdgeKey("posted", ANY, ANY))
        registry.apply_addition(Edge("posted", "p1", "pst1"))
        changed = registry.apply_addition(Edge("posted", "p1", "pst1"))
        assert changed == [(EdgeKey("posted", ANY, ANY), False)]
        assert registry.multiplicity(Edge("posted", "p1", "pst1")) == 2

    def test_non_matching_addition_is_ignored(self):
        registry = EdgeViewRegistry()
        registry.register(EdgeKey("posted", ANY, ANY))
        assert registry.apply_addition(Edge("likes", "p1", "pst1")) == []
        assert registry.total_rows() == 0

    def test_deletion_removes_tuple_only_when_last_copy_goes(self):
        registry = EdgeViewRegistry()
        key = EdgeKey("posted", ANY, ANY)
        registry.register(key)
        edge = Edge("posted", "p1", "pst1")
        registry.apply_addition(edge)
        registry.apply_addition(edge)
        assert registry.apply_deletion(edge) == []           # one copy remains
        assert len(registry.view(key)) == 1
        assert registry.apply_deletion(edge) == [key]        # last copy removed
        assert len(registry.view(key)) == 0

    def test_deletion_of_unknown_edge_is_a_noop(self):
        registry = EdgeViewRegistry()
        registry.register(EdgeKey("posted", ANY, ANY))
        assert registry.apply_deletion(Edge("posted", "p1", "pst1")) == []
        assert registry.apply_deletion(Edge("likes", "p1", "pst1")) == []
