"""Replicated shards: failover reads, promotion, rolling restarts.

The central replication properties:

* Reads served by replicas are byte-identical to the primary's answers
  (drain-to-ack before every replica read).
* A SIGKILLed replica is detached and re-seeded; reads fail over to
  surviving workers with no wrong answers and no errors.
* A SIGKILLed primary promotes the freshest replica and re-runs the
  in-flight batch exactly once — delivered ``MatchDelta`` frames stay
  byte-identical to a never-crashed oracle.
* ``rolling_restart()`` (drain, snapshot, respawn, resume) misses and
  duplicates zero frames, on every executor.
* The respawn budget is a sliding window: only death *bursts* degrade a
  shard; spaced-out deaths decay out of the budget.
"""

from __future__ import annotations

import json
import pickle
import signal
import threading
import time

import pytest

from repro import QueryBuilder, add, delete
from repro.graph.errors import EngineError, PersistenceError
from repro.pubsub import ShardedEngineGroup, SubscriptionBroker


# ----------------------------------------------------------------------
# Workload helpers (mirrors tests/test_persistence.py)
# ----------------------------------------------------------------------
def patterns():
    return [
        QueryBuilder("chain")
        .edge("knows", "?a", "?b")
        .edge("likes", "?b", "?c")
        .build(),
        QueryBuilder("pair").edge("knows", "?x", "?y").build(),
        QueryBuilder("tri").edge("likes", "?x", "?y").edge("likes", "?y", "?z").build(),
    ]


def interleaved_stream(n=60, seed=0):
    updates = []
    live = []
    for i in range(n):
        update = add(
            ("knows", "likes")[(i + seed) % 2],
            f"v{(i * 5 + seed) % 9}",
            f"v{(i * 3 + 1) % 9}",
        )
        updates.append(update)
        live.append(update.edge)
        if i % 4 == 3:
            edge = live.pop((i * 7 + seed) % len(live))
            updates.append(delete(edge.label, edge.source, edge.target))
    return updates


def batches_of(updates, size):
    return [updates[start : start + size] for start in range(0, len(updates), size)]


def assert_same_answers(left, right):
    for pattern in patterns():
        assert left.matches_of(pattern.query_id) == right.matches_of(
            pattern.query_id
        ), pattern.query_id
    assert left.satisfied_queries() == right.satisfied_queries()


def frames_of(subscription):
    return [
        json.dumps(delta.as_dict(), sort_keys=True) for delta in subscription.drain()
    ]


def replicated_group(**kwargs):
    kwargs.setdefault("replicas", 1)
    kwargs.setdefault("worker_snapshot_every", 4)
    return ShardedEngineGroup("TRIC+", 2, executor="process", **kwargs)


@pytest.fixture
def hard_timeout():
    """Hard wall-clock limit so a supervision bug fails loudly, not silently."""

    def _timed_out(signum, frame):  # pragma: no cover - only on deadlock
        raise TimeoutError("replication test exceeded its hard timeout")

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.alarm(120)
    yield
    signal.alarm(0)
    signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# Construction & validation
# ----------------------------------------------------------------------
class TestConstruction:
    def test_replicas_require_process_executor(self):
        with pytest.raises(EngineError, match="process executor"):
            ShardedEngineGroup("TRIC+", 2, executor="serial", replicas=1)
        with pytest.raises(EngineError, match="non-negative"):
            ShardedEngineGroup("TRIC+", 2, executor="process", replicas=-1)

    def test_replica_pids_are_distinct_live_processes(self, hard_timeout):
        with replicated_group() as group:
            pids = set()
            for shard in group.shards:
                pids.add(shard.worker_pid())
                pids.update(shard.replica_pids())
            assert len(pids) == 4  # 2 primaries + 2 replicas, all distinct
            assert group.describe()["replicas_per_shard"] == 1


# ----------------------------------------------------------------------
# Replica reads
# ----------------------------------------------------------------------
class TestReplicaReads:
    def test_reads_route_to_replicas_and_match_oracle(self, hard_timeout):
        oracle = ShardedEngineGroup("TRIC+", 2, executor="serial")
        oracle.register_all(patterns())
        with replicated_group() as group:
            group.register_all(patterns())
            for batch in batches_of(interleaved_stream(48), 6):
                assert group.on_batch(batch) == oracle.on_batch(batch)
                assert_same_answers(group, oracle)
                for pattern in patterns():
                    assert group.has_matches(pattern.query_id) == oracle.has_matches(
                        pattern.query_id
                    )
            reads = sum(
                info["replicas"]["reads_served"]
                for info in group.replication_statistics()
            )
            assert reads > 0
            for info in group.replication_statistics():
                assert info["replicas"]["lag"] == [0]  # drained to the ack point

    def test_reads_fall_back_to_primary_when_replicas_exhausted(self, hard_timeout):
        oracle = ShardedEngineGroup("TRIC+", 2, executor="serial")
        oracle.register_all(patterns())
        with replicated_group() as group:
            group.register_all(patterns())
            group.on_batch(interleaved_stream(24))
            oracle.on_batch(interleaved_stream(24))
            for shard in group.shards:
                shard.kill_replica()
            # Every read between the kill and the re-seed must fail over.
            assert_same_answers(group, oracle)
            group.on_batch([add("knows", "v0", "v1")])
            oracle.on_batch([add("knows", "v0", "v1")])
            assert_same_answers(group, oracle)


# ----------------------------------------------------------------------
# Replica lifecycle: SIGKILL, detach, re-seed
# ----------------------------------------------------------------------
class TestReplicaLifecycle:
    def test_killed_replica_is_detached_and_reseeded(self, hard_timeout):
        oracle = ShardedEngineGroup("TRIC+", 2, executor="serial")
        oracle.register_all(patterns())
        with replicated_group() as group:
            group.register_all(patterns())
            for index, batch in enumerate(batches_of(interleaved_stream(48), 6)):
                assert group.on_batch(batch) == oracle.on_batch(batch)
                if index == 3:
                    group.shards[0].kill_replica()
                assert_same_answers(group, oracle)
            info = group.shards[0].replication_info()
            assert info["replicas"]["deaths"] == 1
            assert info["replicas"]["reseeds"] >= 1
            assert info["replicas"]["attached"] == 1
            assert info["promotions"] == 0
            assert group.describe()["degraded_shards"] == 0

    def test_reseeded_replica_serves_correct_reads(self, hard_timeout):
        oracle = ShardedEngineGroup("TRIC+", 2, executor="serial")
        oracle.register_all(patterns())
        with replicated_group() as group:
            group.register_all(patterns())
            group.on_batch(interleaved_stream(24))
            oracle.on_batch(interleaved_stream(24))
            group.shards[0].kill_replica()
            group.shards[1].kill_replica()
            # The next acknowledged op triggers the re-seed...
            suffix = [add("likes", "v1", "v2"), add("likes", "v2", "v3")]
            group.on_batch(suffix)
            oracle.on_batch(suffix)
            # ...and the re-seeded replicas answer from the fresh snapshot.
            assert_same_answers(group, oracle)
            for shard in group.shards:
                assert len(shard.replica_pids()) == 1


# ----------------------------------------------------------------------
# Primary failover: promotion
# ----------------------------------------------------------------------
class TestPrimaryFailover:
    def test_killed_primary_promotes_freshest_replica(self, hard_timeout):
        updates = interleaved_stream(60)
        oracle = ShardedEngineGroup("TRIC+", 2, executor="serial")
        oracle.register_all(patterns())
        with replicated_group() as group:
            group.register_all(patterns())
            for index, batch in enumerate(batches_of(updates, 6)):
                assert group.on_batch(batch) == oracle.on_batch(batch)
                if index in (3, 6):
                    group.shards[index % 2].kill_worker()
            assert_same_answers(group, oracle)
            description = group.describe()
            assert sum(description["shard_promotions"]) == 2
            assert sum(description["shard_respawns"]) == 0  # replicas stood in
            assert description["degraded_shards"] == 0

    def test_promotion_delivers_identical_delta_frames(self, hard_timeout):
        subscribed = [pattern.query_id for pattern in patterns()]
        oracle = ShardedEngineGroup("TRIC+", 2, executor="serial")
        oracle.register_all(patterns())
        broker_o = SubscriptionBroker(oracle)
        sub_o = broker_o.subscribe("probe", subscribed)
        with replicated_group() as group:
            group.register_all(patterns())
            broker_g = SubscriptionBroker(group)
            sub_g = broker_g.subscribe("probe", subscribed)
            for index, batch in enumerate(batches_of(interleaved_stream(48), 5)):
                if index == 3:
                    group.shards[0].kill_worker()  # in-flight batch promotes
                broker_o.on_batch(batch)
                broker_g.on_batch(batch)
                assert frames_of(sub_o) == frames_of(sub_g)
            assert sum(group.describe()["shard_promotions"]) >= 1

    def test_primary_and_replica_killed_falls_back_to_respawn(self, hard_timeout):
        updates = interleaved_stream(48)
        oracle = ShardedEngineGroup("TRIC+", 2, executor="serial")
        oracle.register_all(patterns())
        with replicated_group() as group:
            group.register_all(patterns())
            for index, batch in enumerate(batches_of(updates, 6)):
                assert group.on_batch(batch) == oracle.on_batch(batch)
                if index == 3:
                    group.shards[0].kill_replica()
                    group.shards[0].kill_worker()
            assert_same_answers(group, oracle)
            info = group.shards[0].replication_info()
            # The dead replica cannot be promoted; the snapshot+oplog
            # respawn path recovers instead, then replenishes the replica.
            assert info["respawns"] + info["promotions"] >= 1
            assert not info["degraded"]

    def test_promoted_group_survives_pickle_roundtrip(self, hard_timeout):
        oracle = ShardedEngineGroup("TRIC+", 2, executor="serial")
        oracle.register_all(patterns())
        with replicated_group() as group:
            group.register_all(patterns())
            group.on_batch(interleaved_stream(24))
            oracle.on_batch(interleaved_stream(24))
            group.shards[0].kill_worker()
            with pickle.loads(pickle.dumps(group)) as clone:
                assert_same_answers(clone, oracle)
                suffix = [add("knows", "v3", "v4")]
                assert clone.on_batch(suffix) == oracle.on_batch(suffix)
                for shard in clone.shards:
                    assert len(shard.replica_pids()) == 1


# ----------------------------------------------------------------------
# Rolling restarts
# ----------------------------------------------------------------------
class TestRollingRestart:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_zero_loss_across_executors(self, executor, hard_timeout):
        subscribed = [pattern.query_id for pattern in patterns()]
        oracle = ShardedEngineGroup("TRIC+", 2, executor="serial")
        oracle.register_all(patterns())
        broker_o = SubscriptionBroker(oracle)
        sub_o = broker_o.subscribe("probe", subscribed)
        replicas = 1 if executor == "process" else 0
        with ShardedEngineGroup(
            "TRIC+", 2, executor=executor, replicas=replicas
        ) as group:
            group.register_all(patterns())
            broker_g = SubscriptionBroker(group)
            sub_g = broker_g.subscribe("probe", subscribed)
            for index, batch in enumerate(batches_of(interleaved_stream(48), 5)):
                if index in (2, 5):
                    report = group.rolling_restart()
                    assert report["shards"] == 2
                    assert len(report["pause_seconds"]) == 2
                broker_o.on_batch(batch)
                broker_g.on_batch(batch)
                assert frames_of(sub_o) == frames_of(sub_g)
            assert group.rolling_restarts == 2
            assert_same_answers(group, oracle)

    def test_restart_preserves_replicas_and_counters(self, hard_timeout):
        with replicated_group() as group:
            group.register_all(patterns())
            group.on_batch(interleaved_stream(24))
            report = group.rolling_restart()
            assert report["rolling_restarts"] == 1
            for shard in group.shards:
                info = shard.replication_info()
                assert info["restarts"] == 1
                assert info["replicas"]["attached"] == 1

    def test_double_restart_is_sequentially_idempotent(self, hard_timeout):
        with replicated_group() as group:
            group.register_all(patterns())
            group.on_batch(interleaved_stream(24))
            first = group.rolling_restart()
            second = group.rolling_restart()
            assert first["rolling_restarts"] == 1
            assert second["rolling_restarts"] == 2

    def test_concurrent_restart_raises_typed_error(self, hard_timeout):
        with replicated_group() as group:
            group.register_all(patterns())
            group.on_batch(interleaved_stream(24))
            errors = []
            reports = []

            def restart():
                try:
                    reports.append(group.rolling_restart())
                except PersistenceError as error:
                    errors.append(error)

            threads = [threading.Thread(target=restart) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # Exactly the overlapping calls fail, each with the typed error.
            assert len(reports) >= 1
            assert len(reports) + len(errors) == 3
            for error in errors:
                assert "already in progress" in str(error)

    def test_restart_on_closed_group_raises(self, hard_timeout):
        group = replicated_group()
        group.register_all(patterns())
        group.close()
        with pytest.raises(PersistenceError, match="closed"):
            group.rolling_restart()


# ----------------------------------------------------------------------
# Sliding-window respawn budget
# ----------------------------------------------------------------------
class TestRespawnWindow:
    def test_spaced_deaths_decay_out_of_the_budget(self, hard_timeout):
        updates = interleaved_stream(36)
        with ShardedEngineGroup(
            "TRIC+",
            1,
            executor="process",
            max_respawns=1,
            respawn_window=0.4,
        ) as group:
            group.register_all(patterns())
            group.on_batch(updates[:12])
            group.shards[0].kill_worker()
            group.on_batch(updates[12:24])  # first respawn
            time.sleep(0.5)  # let the death decay past the window
            group.shards[0].kill_worker()
            group.on_batch(updates[24:])  # budget free again: second respawn
            info = group.shards[0].replication_info()
            assert info["respawns"] == 2
            assert not info["degraded"]

    def test_death_burst_still_degrades(self, hard_timeout):
        updates = interleaved_stream(36)
        with ShardedEngineGroup(
            "TRIC+",
            1,
            executor="process",
            max_respawns=1,
            respawn_window=60.0,
        ) as group:
            group.register_all(patterns())
            group.on_batch(updates[:12])
            group.shards[0].kill_worker()
            group.on_batch(updates[12:24])
            group.shards[0].kill_worker()  # burst: within the window
            group.on_batch(updates[24:])
            info = group.shards[0].replication_info()
            assert info["degraded"]
            # Degraded in-process execution still answers correctly.
            oracle = ShardedEngineGroup("TRIC+", 1, executor="serial")
            oracle.register_all(patterns())
            oracle.on_batch(updates)
            assert_same_answers(group, oracle)
