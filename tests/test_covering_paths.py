"""Tests for the covering-path decomposition (paper Section 4.1, Step 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.errors import DecompositionError
from repro.query import QueryGraphPattern, covering_paths
from repro.query.paths import CoveringPath, is_subpath


def _assert_valid_cover(pattern: QueryGraphPattern, paths) -> None:
    """Definition 4.2: every edge and every vertex appears in some path."""
    covered_edges = set()
    covered_terms = set()
    for path in paths:
        covered_edges.update(path.edge_indices())
        covered_terms.update(path.terms())
        # paths are connected walks
        for previous, current in zip(path.edges, path.edges[1:]):
            assert previous.target == current.source
    assert covered_edges == {edge.index for edge in pattern.edges}
    assert covered_terms == set(pattern.vertices)


class TestKnownDecompositions:
    def test_single_edge(self):
        pattern = QueryGraphPattern("q", [("knows", "?a", "?b")])
        paths = covering_paths(pattern)
        assert len(paths) == 1
        assert paths[0].length == 1

    def test_chain_produces_one_path(self):
        pattern = QueryGraphPattern(
            "q", [("a", "?x", "?y"), ("b", "?y", "?z"), ("c", "?z", "?w")]
        )
        paths = covering_paths(pattern)
        assert len(paths) == 1
        assert paths[0].length == 3

    def test_cycle_is_covered(self):
        pattern = QueryGraphPattern(
            "cycle", [("knows", "?a", "?b"), ("knows", "?b", "?c"), ("knows", "?c", "?a")]
        )
        paths = covering_paths(pattern)
        _assert_valid_cover(pattern, paths)

    def test_star_produces_multiple_paths_sharing_no_edges_needlessly(self):
        pattern = QueryGraphPattern(
            "star", [("a", "?hub", "?x"), ("b", "?hub", "?y"), ("c", "?hub", "?z")]
        )
        paths = covering_paths(pattern)
        _assert_valid_cover(pattern, paths)
        assert len(paths) == 3

    def test_paper_fig4_queries(self, paper_fig4_queries):
        # Q1 decomposes into three covering paths as in Fig. 4(b); Q2–Q4 into one.
        expected_path_counts = {"Q1": 3, "Q2": 1, "Q3": 1, "Q4": 1}
        for pattern in paper_fig4_queries:
            paths = covering_paths(pattern)
            _assert_valid_cover(pattern, paths)
            assert len(paths) == expected_path_counts[pattern.query_id], pattern.query_id

    def test_fig4_q1_and_q4_share_a_prefix(self, paper_fig4_queries):
        q1, _, _, q4 = paper_fig4_queries
        q1_prefixes = {path.key_sequence()[:2] for path in covering_paths(q1)}
        q4_prefixes = {path.key_sequence()[:2] for path in covering_paths(q4)}
        assert q1_prefixes & q4_prefixes, "Q1 and Q4 should share the hasMod/posted prefix"


class TestCoveringPathClass:
    def test_terms_positions(self):
        pattern = QueryGraphPattern("q", [("a", "?x", "?y"), ("b", "?y", "pst")])
        path = covering_paths(pattern)[0]
        assert len(path.terms()) == path.length + 1
        assert str(path)

    def test_disconnected_edges_rejected(self):
        pattern = QueryGraphPattern("q", [("a", "?x", "?y"), ("b", "?z", "?w")])
        with pytest.raises(DecompositionError):
            CoveringPath((pattern.edges[0], pattern.edges[1]))

    def test_empty_path_rejected(self):
        with pytest.raises(DecompositionError):
            CoveringPath(())

    def test_is_subpath(self):
        pattern = QueryGraphPattern(
            "q", [("a", "?x", "?y"), ("b", "?y", "?z"), ("c", "?z", "?w")]
        )
        full = covering_paths(pattern)[0]
        prefix = CoveringPath(full.edges[:2])
        middle = CoveringPath(full.edges[1:2])
        assert is_subpath(prefix, full)
        assert is_subpath(middle, full)
        assert not is_subpath(full, prefix)


@st.composite
def random_patterns(draw):
    """Random connected query graph patterns (chains with extra branches)."""
    num_edges = draw(st.integers(min_value=1, max_value=6))
    labels = ["a", "b", "c"]
    edges = []
    # Start with a chain to guarantee weak connectivity, then add branches.
    for i in range(num_edges):
        label = draw(st.sampled_from(labels))
        if i == 0 or draw(st.booleans()):
            source = f"?v{i}"
            target = f"?v{i + 1}"
        else:
            source = f"?v{draw(st.integers(min_value=0, max_value=i))}"
            target = f"?v{i + 1}"
        edges.append((label, source, target))
    return QueryGraphPattern("random", edges)


class TestCoveringPathProperties:
    @given(random_patterns())
    @settings(max_examples=60, deadline=None)
    def test_every_pattern_is_fully_covered(self, pattern):
        paths = covering_paths(pattern)
        _assert_valid_cover(pattern, paths)

    @given(random_patterns())
    @settings(max_examples=60, deadline=None)
    def test_no_path_is_a_subpath_of_another(self, pattern):
        paths = covering_paths(pattern)
        for i, path in enumerate(paths):
            for j, other in enumerate(paths):
                if i != j and path.length < other.length:
                    assert not is_subpath(path, other)

    @given(random_patterns())
    @settings(max_examples=60, deadline=None)
    def test_number_of_paths_is_bounded_by_number_of_edges(self, pattern):
        paths = covering_paths(pattern)
        assert 1 <= len(paths) <= pattern.num_edges
