"""Cross-engine equivalence: every engine must agree with the naive oracle.

These are the repository's strongest correctness tests: random query
databases (chains, stars, cycles, literals, variables) are evaluated against
random update streams (additions, duplicates, deletions) by every engine
simultaneously, and the per-update answer sets must be identical across
engines.
"""

from __future__ import annotations

import random

import pytest

from repro import ENGINE_FACTORIES, add, create_engines, delete
from repro.query import QueryGraphPattern

ALL_ENGINES = list(ENGINE_FACTORIES)


def _random_query(rng: random.Random, query_id: str, labels, vertices) -> QueryGraphPattern:
    kind = rng.choice(["chain", "star", "cycle"])
    size = rng.randint(1, 4)

    def term(i: int) -> str:
        return f"?x{i}" if rng.random() < 0.7 else rng.choice(vertices)

    edges = []
    if kind == "chain":
        for i in range(size):
            edges.append((rng.choice(labels), term(i), term(i + 1)))
    elif kind == "star":
        hub = term(0)
        for i in range(1, size + 1):
            if rng.random() < 0.5:
                edges.append((rng.choice(labels), hub, term(i)))
            else:
                edges.append((rng.choice(labels), term(i), hub))
    else:
        length = max(2, size)
        for i in range(length):
            edges.append((rng.choice(labels), term(i), term((i + 1) % length)))
    return QueryGraphPattern(query_id, edges)


def _run_equivalence(seed: int, *, num_queries: int, num_updates: int, deletion_rate: float) -> None:
    rng = random.Random(seed)
    labels = ["knows", "likes", "posted"]
    vertices = [f"v{i}" for i in range(10)]
    queries = [_random_query(rng, f"Q{i}", labels, vertices) for i in range(num_queries)]

    engines = create_engines(ALL_ENGINES)
    for engine in engines.values():
        engine.register_all(queries)

    live_edges = []
    for step in range(num_updates):
        if live_edges and rng.random() < deletion_rate:
            edge = live_edges.pop(rng.randrange(len(live_edges)))
            update = delete(edge.label, edge.source, edge.target)
        else:
            update = add(rng.choice(labels), rng.choice(vertices), rng.choice(vertices))
            live_edges.append(update.edge)
        answers = {name: engine.on_update(update) for name, engine in engines.items()}
        oracle = answers["Naive"]
        for name, answer in answers.items():
            assert answer == oracle, (
                f"step {step}: {name} answered {sorted(answer)} but the oracle "
                f"answered {sorted(oracle)} for {update}"
            )
    satisfied = {name: engine.satisfied_queries() for name, engine in engines.items()}
    for name, result in satisfied.items():
        assert result == satisfied["Naive"], f"{name} disagrees on cumulative satisfaction"


class TestAdditionOnlyEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_all_engines_agree_on_addition_streams(self, seed):
        _run_equivalence(seed, num_queries=12, num_updates=120, deletion_rate=0.0)


class TestMixedStreamEquivalence:
    @pytest.mark.parametrize("seed", [11, 12])
    def test_all_engines_agree_with_deletions(self, seed):
        _run_equivalence(seed, num_queries=10, num_updates=120, deletion_rate=0.25)


class TestInjectiveEquivalence:
    def test_all_engines_agree_under_isomorphism_semantics(self):
        rng = random.Random(99)
        labels = ["a", "b"]
        vertices = [f"v{i}" for i in range(6)]
        queries = [_random_query(rng, f"Q{i}", labels, vertices) for i in range(8)]
        engines = create_engines(ALL_ENGINES, injective=True)
        for engine in engines.values():
            engine.register_all(queries)
        for _ in range(100):
            update = add(rng.choice(labels), rng.choice(vertices), rng.choice(vertices))
            answers = {name: engine.on_update(update) for name, engine in engines.items()}
            for name, answer in answers.items():
                assert answer == answers["Naive"], name


class TestMatchSetEquivalence:
    def test_every_engine_reports_the_same_embeddings(self, checkin_query, checkin_stream):
        engines = create_engines(ALL_ENGINES)
        for engine in engines.values():
            engine.register(checkin_query)
            for update in checkin_stream:
                engine.on_update(update)
        reference = engines["Naive"].matches_of("checkin")
        for name, engine in engines.items():
            assert engine.matches_of("checkin") == reference, name
