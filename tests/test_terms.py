"""Unit tests for query terms and generalised edge keys."""

from __future__ import annotations

import pytest

from repro.graph import Edge
from repro.query.terms import (
    ANY,
    EdgeKey,
    Literal,
    Variable,
    candidate_keys_for_edge,
    edge_key_for_query_edge,
    generalize_term,
    is_variable,
    term,
)


class TestTermParsing:
    def test_question_mark_string_becomes_variable(self):
        assert term("?friend") == Variable("friend")

    def test_plain_string_becomes_literal(self):
        assert term("alice") == Literal("alice")

    def test_existing_terms_pass_through(self):
        variable = Variable("x")
        literal = Literal("y")
        assert term(variable) is variable
        assert term(literal) is literal

    def test_empty_variable_name_rejected(self):
        with pytest.raises(ValueError):
            term("?")

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            term(42)  # type: ignore[arg-type]

    def test_is_variable(self):
        assert is_variable(Variable("x"))
        assert not is_variable(Literal("x"))

    def test_str_forms(self):
        assert str(Variable("x")) == "?x"
        assert str(Literal("v")) == "v"


class TestGeneralisation:
    def test_variable_generalises_to_any(self):
        assert generalize_term(Variable("x")) == ANY

    def test_literal_keeps_its_value(self):
        assert generalize_term(Literal("pst1")) == "pst1"

    def test_edge_key_for_query_edge(self):
        key = edge_key_for_query_edge("posted", Variable("p"), Literal("pst1"))
        assert key == EdgeKey("posted", ANY, "pst1")
        assert key.source_is_variable
        assert not key.target_is_variable

    def test_two_differently_named_variables_share_a_key(self):
        key_a = edge_key_for_query_edge("knows", Variable("a"), Variable("b"))
        key_b = edge_key_for_query_edge("knows", Variable("x"), Variable("y"))
        assert key_a == key_b


class TestEdgeKeyMatching:
    def test_fully_literal_key(self):
        key = EdgeKey("knows", "a", "b")
        assert key.matches(Edge("knows", "a", "b"))
        assert not key.matches(Edge("knows", "a", "c"))
        assert not key.matches(Edge("likes", "a", "b"))

    def test_variable_positions_match_anything(self):
        key = EdgeKey("knows", ANY, ANY)
        assert key.matches(Edge("knows", "whoever", "whomever"))

    def test_mixed_key(self):
        key = EdgeKey("posted", ANY, "pst1")
        assert key.matches(Edge("posted", "p9", "pst1"))
        assert not key.matches(Edge("posted", "p9", "pst2"))


class TestCandidateKeys:
    def test_four_candidates(self):
        edge = Edge("posted", "p1", "pst1")
        candidates = candidate_keys_for_edge(edge)
        assert len(candidates) == 4
        assert EdgeKey("posted", "p1", "pst1") in candidates
        assert EdgeKey("posted", "p1", ANY) in candidates
        assert EdgeKey("posted", ANY, "pst1") in candidates
        assert EdgeKey("posted", ANY, ANY) in candidates

    def test_every_candidate_matches_the_edge(self):
        edge = Edge("l", "s", "t")
        assert all(key.matches(edge) for key in candidate_keys_for_edge(edge))
