"""BatchReport soundness, affected-aware flushing, and shard executors.

The central property: for any interleaved add/delete/batch churn, every
query whose ``matches_of`` changed across a batch is contained in that
batch's ``BatchReport.affected`` (completeness) — for every engine and
every shard count.  On top of it: the broker may skip unaffected queries
without ever losing a delta, answers are byte-identical across the
serial/thread/process shard executors, and ``OverflowPolicy.BLOCK``
backpressure is observable from ``StreamRunner`` results without dropping
anything.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BatchReport,
    QueryBuilder,
    TRICEngine,
    TRICPlusEngine,
    add,
    create_engine,
    delete,
)
from repro.graph.errors import EngineError
from repro.pubsub import ShardedEngineGroup, SubscriptionBroker, canonical_key, replay_deltas
from repro.query import QueryGraphPattern
from repro.streams import StreamRunner

LABELS = ("a", "b")
VERTICES = ("v0", "v1", "v2", "v3")
TERMS = ("?x", "?y", "?z", "v0", "v1")

#: Engine factories under the completeness property: every registry engine
#: (the oracle included) plus sharded groups at 2 and 4 shards.
REPORTING_FACTORIES = (
    ("TRIC", lambda: create_engine("TRIC")),
    ("TRIC+", lambda: create_engine("TRIC+")),
    ("INV", lambda: create_engine("INV")),
    ("INV+", lambda: create_engine("INV+")),
    ("INC", lambda: create_engine("INC")),
    ("INC+", lambda: create_engine("INC+")),
    ("GraphDB", lambda: create_engine("GraphDB")),
    ("Naive", lambda: create_engine("Naive")),
    ("TRIC+x2", lambda: ShardedEngineGroup("TRIC+", 2)),
    ("TRICx4", lambda: ShardedEngineGroup("TRIC", 4, assignment="label")),
)


def pair_query():
    return QueryBuilder("pair").edge("knows", "?x", "?y").build()


def chain_query():
    return (
        QueryBuilder("chain")
        .edge("knows", "?a", "?b")
        .edge("likes", "?b", "?c")
        .build()
    )


def answer_set(engine, query_id):
    return {canonical_key(dict(b)) for b in engine.matches_of(query_id)}


# ----------------------------------------------------------------------
# BatchReport basics
# ----------------------------------------------------------------------
class TestBatchReport:
    def test_is_the_notified_frozenset(self):
        report = BatchReport({"q1"}, affected={"q1", "q2"}, additions=3)
        assert report == frozenset({"q1"})
        assert isinstance(report, frozenset)
        assert "q1" in report and "q2" not in report
        assert report.affected == frozenset({"q1", "q2"})
        assert report.notified == frozenset({"q1"})
        assert (report.additions, report.deletions, report.updates) == (3, 0, 3)

    def test_wrap_preserves_native_affected_and_restamps_counters(self):
        native = BatchReport({"q"}, affected={"q", "r"}, additions=99)
        wrapped = BatchReport.wrap(native, additions=2, deletions=1)
        assert wrapped.affected == frozenset({"q", "r"})
        assert (wrapped.additions, wrapped.deletions) == (2, 1)
        bare = BatchReport.wrap(frozenset({"q"}), deletions=4)
        assert bare.affected is None
        assert bare.deletions == 4

    def test_merge_unions_and_degrades_conservatively(self):
        exact = BatchReport({"a"}, affected={"a", "b"}, additions=1)
        other = BatchReport({"c"}, affected={"c"}, deletions=2)
        merged = BatchReport.merge([exact, other])
        assert merged == frozenset({"a", "c"})
        assert merged.affected == frozenset({"a", "b", "c"})
        assert (merged.additions, merged.deletions) == (1, 2)
        unknown = BatchReport.merge([exact, BatchReport({"d"})])
        assert unknown.affected is None
        empty = BatchReport.merge([])
        assert empty == frozenset() and empty.affected == frozenset()

    def test_pickle_round_trip(self):
        report = BatchReport({"q"}, affected={"q", "r"}, additions=2, deletions=1)
        clone = pickle.loads(pickle.dumps(report))
        assert clone == report
        assert clone.affected == report.affected
        assert (clone.additions, clone.deletions) == (2, 1)
        unknown = pickle.loads(pickle.dumps(BatchReport({"q"})))
        assert unknown.affected is None

    def test_notified_ids_are_always_affected(self):
        engine = TRICPlusEngine()
        engine.register_all([pair_query(), chain_query()])
        report = engine.on_batch(
            [add("knows", "s", "t"), add("likes", "t", "u"), delete("likes", "t", "u")]
        )
        assert report.affected is not None
        assert report <= report.affected


# ----------------------------------------------------------------------
# Completeness under churn, every engine and shard count
# ----------------------------------------------------------------------
@st.composite
def connected_patterns(draw):
    """Small connected query patterns over a tiny vocabulary."""
    num_edges = draw(st.integers(min_value=1, max_value=3))
    edges = []
    terms = [draw(st.sampled_from(TERMS))]
    for _ in range(num_edges):
        label = draw(st.sampled_from(LABELS))
        anchor = draw(st.sampled_from(terms))
        other = draw(st.sampled_from(TERMS))
        if draw(st.booleans()):
            edges.append((label, anchor, other))
        else:
            edges.append((label, other, anchor))
        terms.append(other)
    if not any(t.startswith("?") for triple in edges for t in triple[1:]):
        label, _, target = edges[0]
        edges[0] = (label, "?x", target)
    return edges


@st.composite
def mixed_update_streams(draw):
    """Interleaved additions and deletions; deletions retract live edges."""
    events = draw(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=2**16),
                st.sampled_from(LABELS),
                st.sampled_from(VERTICES),
                st.sampled_from(VERTICES),
            ),
            min_size=1,
            max_size=24,
        )
    )
    live, updates = [], []
    for is_deletion, pick, label, source, target in events:
        if is_deletion and live:
            edge = live.pop(pick % len(live))
            updates.append(delete(edge.label, edge.source, edge.target))
        else:
            update = add(label, source, target)
            live.append(update.edge)
            updates.append(update)
    return updates


class TestReportCompleteness:
    @given(
        st.lists(connected_patterns(), min_size=1, max_size=3),
        mixed_update_streams(),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=15, deadline=None)
    def test_every_changed_query_is_reported_affected(
        self, edge_lists, updates, batch_size
    ):
        """Completeness: ``matches_of`` changed across a batch => the query
        is in that batch's ``BatchReport.affected`` — per engine, per shard
        count.  Engines that cannot narrow the batch report ``None``
        (conservative: everything potentially affected), which trivially
        satisfies the contract and is asserted as such."""
        patterns = [
            QueryGraphPattern(f"Q{i}", edges) for i, edges in enumerate(edge_lists)
        ]
        query_ids = [p.query_id for p in patterns]
        for name, factory in REPORTING_FACTORIES:
            engine = factory()
            engine.register_all(patterns)
            before = {q: answer_set(engine, q) for q in query_ids}
            for start in range(0, len(updates), batch_size):
                report = engine.on_batch(updates[start : start + batch_size])
                assert isinstance(report, BatchReport), name
                after = {q: answer_set(engine, q) for q in query_ids}
                changed = {q for q in query_ids if after[q] != before[q]}
                if report.affected is None:
                    assert name == "Naive", (
                        f"{name} lost its native affected report"
                    )
                else:
                    assert changed <= report.affected, (name, changed, report)
                    assert report <= report.affected, (name, report)
                before = after

    def test_per_update_reports_match_batch_reports(self):
        engine = TRICPlusEngine()
        engine.register_all([pair_query(), chain_query()])
        updates = [
            add("knows", "s", "t"),
            add("likes", "t", "u"),
            delete("knows", "s", "t"),
        ]
        per_update = TRICPlusEngine()
        per_update.register_all([pair_query(), chain_query()])
        merged = BatchReport.merge([per_update.on_update(u) for u in updates])
        batched = engine.on_batch(updates)
        assert merged.affected == batched.affected
        assert merged.updates == batched.updates == 3


# ----------------------------------------------------------------------
# Affected-aware broker flushing
# ----------------------------------------------------------------------
class TestAffectedFlush:
    def test_unaffected_watched_queries_are_skipped(self):
        engine = TRICPlusEngine()
        engine.register_all([pair_query(), chain_query()])
        broker = SubscriptionBroker(engine)
        subscription = broker.subscribe("app", ["pair", "chain"])
        # knows lands in pair's terminal view; chain's terminal (knows·likes)
        # stays empty without a likes continuation — the report is tighter
        # than key matching, so only pair is flushed.
        tick = broker.on_update(add("knows", "s", "t"))
        assert tick.flushed == 1 and tick.skipped == 1
        tick = broker.on_update(add("likes", "t", "u"))  # completes chain
        assert tick.flushed == 1 and tick.skipped == 1
        tick = broker.on_update(add("none", "x", "y"))  # touches nothing
        assert tick.flushed == 0 and tick.skipped == 2
        assert broker.queries_skipped == 4
        description = broker.describe()
        assert description["affected_flush"] is True
        assert description["queries_flushed"] == broker.queries_flushed
        # Skipping lost nothing: drive real churn and reconstruct.
        broker.on_batch([add("knows", "s", "t"), add("likes", "t", "u")])
        state = replay_deltas(subscription.drain())
        assert state["pair"] == answer_set(engine, "pair")
        assert state["chain"] == answer_set(engine, "chain")

    def test_flush_everything_baseline_examines_all_watched(self):
        engine = TRICPlusEngine()
        engine.register_all([pair_query(), chain_query()])
        broker = SubscriptionBroker(engine, affected_flush=False)
        broker.subscribe("app", ["pair", "chain"])
        tick = broker.on_update(add("likes", "x", "y"))
        assert tick.flushed == 2 and tick.skipped == 0

    def test_slow_path_skip_never_calls_matches_of(self):
        """A slow-path (non-materialising) engine pays no matches_of diff
        for queries outside the batch's affected set."""
        engine = TRICEngine()
        engine.register_all([pair_query(), chain_query()])
        broker = SubscriptionBroker(engine)
        broker.subscribe("app", ["pair"])
        polled = []
        original = engine.matches_of
        engine.matches_of = lambda qid: polled.append(qid) or original(qid)
        broker.on_update(add("likes", "x", "y"))  # pair unaffected
        assert polled == []
        broker.on_update(add("knows", "s", "t"))  # pair affected
        assert polled == ["pair"]

    def test_external_driving_with_plain_frozenset_flushes_everything(self):
        engine = TRICPlusEngine()
        engine.register(pair_query())
        broker = SubscriptionBroker(engine)
        subscription = broker.subscribe("app", ["pair"])
        engine.on_update(add("knows", "s", "t"))  # outside the broker
        tick = broker.flush()  # conservative: no report, full flush
        assert tick.flushed == 1 and tick.skipped == 0
        assert replay_deltas(subscription.drain())["pair"] == answer_set(
            engine, "pair"
        )

    @given(mixed_update_streams(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_affected_flush_equals_flush_everything(self, updates, batch_size):
        """Same churn, same subscriptions: the affected-aware broker and the
        flush-everything broker compose to identical per-query states."""
        patterns = [pair_query(), chain_query()]
        states = []
        for affected_flush in (True, False):
            engine = TRICPlusEngine()
            engine.register_all(patterns)
            broker = SubscriptionBroker(engine, affected_flush=affected_flush)
            subscription = broker.subscribe("app", ["pair", "chain"])
            received = []
            for start in range(0, len(updates), batch_size):
                broker.on_batch(updates[start : start + batch_size])
                received.extend(subscription.drain())
            state = replay_deltas(received)
            states.append(
                {q: sorted(state.get(q, set())) for q in ("pair", "chain")}
            )
            for query_id in ("pair", "chain"):
                assert set(states[-1][query_id]) == answer_set(engine, query_id)
        assert states[0] == states[1]


# ----------------------------------------------------------------------
# Shard executors
# ----------------------------------------------------------------------
def _churn_stream():
    updates, live = [], []
    for i in range(40):
        update = add(("knows", "likes")[i % 2], f"v{i % 7}", f"v{(i * 3 + 1) % 7}")
        updates.append(update)
        live.append(update.edge)
        if i % 5 == 4:
            edge = live.pop((i * 7) % len(live))
            updates.append(delete(edge.label, edge.source, edge.target))
    return updates


class TestShardExecutors:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_executors_match_serial_byte_for_byte(self, executor):
        patterns = [pair_query(), chain_query()]
        updates = _churn_stream()
        reference = ShardedEngineGroup("TRIC+", 2)
        reference.register_all(patterns)
        with ShardedEngineGroup("TRIC+", 2, executor=executor) as group:
            group.register_all(patterns)
            for start in range(0, len(updates), 4):
                chunk = updates[start : start + 4]
                assert group.on_batch(chunk) == reference.on_batch(chunk)
                assert group.satisfied_queries() == reference.satisfied_queries()
            for pattern in patterns:
                assert group.matches_of(pattern.query_id) == reference.matches_of(
                    pattern.query_id
                )
                assert group.has_matches(pattern.query_id) == reference.has_matches(
                    pattern.query_id
                )
            description = group.describe()
            assert description["executor"] == executor
            assert sum(description["shard_batches"]) > 0
            assert len(description["shard_batch_ms_mean"]) == 2

    def test_process_executor_broker_delivery_stays_exact(self):
        patterns = [pair_query(), chain_query()]
        updates = _churn_stream()
        with ShardedEngineGroup("TRIC+", 2, executor="process") as group:
            group.register_all(patterns)
            broker = SubscriptionBroker(group)
            subscription = broker.subscribe("app", ["pair", "chain"])
            received = []
            for start in range(0, len(updates), 8):
                broker.on_batch(updates[start : start + 8])
                received.extend(subscription.drain())
            state = replay_deltas(received)
            for pattern in patterns:
                assert state.get(pattern.query_id, set()) == answer_set(
                    group, pattern.query_id
                )

    def test_process_executor_supports_mid_stream_registration(self):
        reference = TRICPlusEngine()
        with ShardedEngineGroup("TRIC+", 2, executor="process") as group:
            for engine in (reference, group):
                engine.register(QueryGraphPattern("q0", [("knows", "?x", "?y")]))
                engine.on_update(add("knows", "a", "b"))
                engine.on_update(add("knows", "a", "b"))  # multigraph copy
                engine.register(QueryGraphPattern("q4", [("knows", "?x", "?y")]))
            assert group.matches_of("q4") == reference.matches_of("q4")
            assert group.satisfied_queries() == reference.satisfied_queries()
            for engine in (reference, group):
                engine.on_update(delete("knows", "a", "b"))
            assert group.matches_of("q4") == reference.matches_of("q4") != []

    def test_invalid_executor_and_factory_combinations_rejected(self):
        with pytest.raises(EngineError):
            ShardedEngineGroup("TRIC+", 2, executor="greenlet")
        with pytest.raises(EngineError):
            ShardedEngineGroup(TRICPlusEngine, 2, executor="process")
        # Callable factories stay fine on the in-process executors.
        group = ShardedEngineGroup(TRICPlusEngine, 2, executor="thread")
        group.close()
        # A closed thread-executor group refuses new multi-shard fan-outs
        # instead of silently leaking a recreated pool.  (Both shards must
        # own the label, else the single job runs inline without a pool.)
        group.register_all(
            QueryGraphPattern(f"Q{i}", [("knows", f"?x{i}", f"?y{i}")])
            for i in range(6)
        )
        assert all(shard.num_queries for shard in group.shards)
        with pytest.raises(EngineError):
            group.on_batch([add("knows", "a", "b"), add("knows", "b", "c")])

    def test_process_executor_honours_injective_engine_kwargs(self):
        """An explicit injective flag in engine_kwargs must reach process
        workers exactly as it does the in-process shards."""
        diamond = (
            QueryBuilder("diamond")
            .edge("knows", "?x", "?y")
            .edge("knows", "?x", "?z")
            .build()
        )
        updates = [add("knows", "a", "b"), add("knows", "a", "c")]
        answers = {}
        for executor in ("serial", "process"):
            with ShardedEngineGroup(
                "TRIC+", 2, executor=executor, engine_kwargs={"injective": True}
            ) as group:
                group.register(diamond)
                group.on_batch(updates)
                answers[executor] = group.matches_of("diamond")
        assert answers["serial"] == answers["process"]
        # Injective semantics: ?y and ?z must bind distinct vertices.
        assert all(b["y"] != b["z"] for b in answers["serial"])
        assert answers["serial"] != []

    def test_close_is_idempotent_and_context_managed(self):
        group = ShardedEngineGroup("TRIC+", 2, executor="thread")
        group.register(pair_query())
        group.on_batch([add("knows", "a", "b"), add("knows", "b", "c")])
        group.close()
        group.close()
        with ShardedEngineGroup("TRIC+", 2) as serial:
            serial.register(pair_query())
        assert serial.matches_of("pair") == []


# ----------------------------------------------------------------------
# BLOCK backpressure observability (regression)
# ----------------------------------------------------------------------
class TestBlockBackpressure:
    def test_blocked_listener_never_drops_and_is_observable_from_results(self):
        engine = TRICPlusEngine()
        engine.register(pair_query())
        runner = StreamRunner(
            engine,
            subscriptions=[
                {"name": "tiny", "query_ids": ["pair"], "policy": "block", "capacity": 1}
            ],
        )
        updates = []
        for i in range(8):
            updates.append(add("knows", f"s{i}", f"t{i}"))
            if i % 3 == 2:
                updates.append(delete("knows", f"s{i}", f"t{i}"))
        result = runner.replay(updates)
        # Observable from the replay result, not just broker internals:
        assert result.backpressure_events > 0
        assert result.backpressured_subscriptions == ("tiny",)
        assert result.backpressured
        assert result.as_dict()["backpressured_subscriptions"] == ["tiny"]
        # ... and lossless: nothing dropped or coalesced, full reconstruction.
        subscription = runner.broker.subscriptions["tiny"]
        assert subscription.dropped == 0 and subscription.coalesced == 0
        assert len(subscription.queue) > subscription.capacity
        state = replay_deltas(subscription.drain())
        assert state["pair"] == answer_set(engine, "pair")

    def test_unblocked_replay_reports_no_backpressure(self):
        engine = TRICPlusEngine()
        engine.register(pair_query())
        runner = StreamRunner(
            engine,
            subscriptions=[{"query_ids": ["pair"], "policy": "block", "capacity": 64}],
        )
        result = runner.replay([add("knows", "a", "b")])
        assert result.backpressure_events == 0
        assert result.backpressured_subscriptions == ()
        assert not result.backpressured
        assert result.queries_flushed >= 1
