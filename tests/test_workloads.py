"""The synthetic workload generator: determinism, validity, CLI plumbing.

The generator's whole value is its determinism contract — identical
:class:`~repro.bench.workloads.WorkloadSpec` + seed must produce a
byte-identical stream, query set and churn plan on every run and every
Python version (generation draws only from ``random.Random.random()``,
the one stdlib primitive with a cross-version stability guarantee).  The
property tests here re-generate under hypothesis-sampled specs, and the
golden fingerprints pin the published scenarios so an accidental change
to the sampling order (which would silently re-draw every committed BENCH
number) fails loudly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import main
from repro.bench.workloads import (
    SCENARIOS,
    WorkloadSpec,
    generate_workload,
    run_workload,
    scenario_spec,
)
from repro.graph.errors import BenchmarkError
from repro.streams.metrics import TimingStats


#: SHA-256 of each published scenario's canonical serialisation.  These
#: are the cross-run *and* cross-Python-version determinism pins: if one
#: changes, every committed ``scenario_matrix`` number regenerated after
#: that change silently measures a different workload.
GOLDEN_FINGERPRINTS = {
    "insert_heavy": "5c6eef6c793ee044a3b71f268ff3cb2ebc97d57283cff706c51911a9894bd767",
    "delete_heavy": "1dac86014d2d36ea8435a9016a2236a08f5b1e4f7e16329959c372e9a96a2734",
    "bursty": "f2b101a79ca041894193124b38d5e660a8668ebd34316151713149acd94aa546",
    "high_skew": "55764725e408ab18d94bd9bb30e2f1bed663681671b8349242dc0befa0e8ea03",
    "churn_heavy": "23842ebbb70759992dc169c7016c9fa4d322b2c77d4e8240df88013837f5dcf8",
    "soak": "63e936e7a07faef38b85af98354db862cbff33754f881b07e2ce3103684191da",
}


#: Hypothesis strategy over the generator's knob space (kept small enough
#: that a generated workload is cheap, wide enough to cross every branch:
#: deletions on/off, skew on/off, bursts on/off, churn on/off, literal
#: pinning up to always-on).
workload_specs = st.builds(
    WorkloadSpec,
    seed=st.integers(min_value=0, max_value=2**32),
    num_updates=st.integers(min_value=1, max_value=300),
    num_queries=st.integers(min_value=1, max_value=12),
    num_vertices=st.integers(min_value=2, max_value=60),
    num_labels=st.integers(min_value=1, max_value=6),
    delete_ratio=st.sampled_from([0.0, 0.2, 0.45, 0.9]),
    skew=st.sampled_from([0.0, 0.6, 1.5]),
    burstiness=st.sampled_from([0.0, 0.3]),
    mean_batch_size=st.integers(min_value=1, max_value=8),
    chain_weight=st.sampled_from([0.0, 1.0, 3.0]),
    star_weight=st.sampled_from([0.0, 1.0]),
    cycle_weight=st.sampled_from([1.0, 2.0]),
    query_length_mean=st.integers(min_value=1, max_value=4),
    query_length_spread=st.integers(min_value=0, max_value=2),
    label_selectivity=st.sampled_from([0.25, 0.5, 1.0]),
    literal_ratio=st.sampled_from([0.0, 0.3, 1.0]),
    subscription_churn=st.sampled_from([0.0, 0.5]),
)


class TestGeneratorDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(workload_specs)
    def test_identical_spec_is_byte_identical(self, spec):
        """Same spec + seed => byte-identical workload, fingerprint included."""
        first = generate_workload(spec)
        second = generate_workload(spec)
        assert first.serialize() == second.serialize()
        assert first.fingerprint() == second.fingerprint()

    @settings(max_examples=15, deadline=None)
    @given(workload_specs)
    def test_different_seed_changes_the_workload(self, spec):
        """The seed is live: a different seed re-draws the stream."""
        sibling = spec.with_overrides(seed=spec.seed + 1)
        assert generate_workload(spec).fingerprint() != generate_workload(sibling).fingerprint()

    def test_golden_scenario_fingerprints(self):
        """The published scenarios are pinned byte for byte.

        This is the cross-Python-version half of the determinism
        property: CI runs this file on multiple interpreter versions
        against the same constants.
        """
        assert set(GOLDEN_FINGERPRINTS) == set(SCENARIOS)
        for name, expected in GOLDEN_FINGERPRINTS.items():
            assert generate_workload(SCENARIOS[name]).fingerprint() == expected, name


class TestGeneratedStreamValidity:
    @settings(max_examples=25, deadline=None)
    @given(workload_specs)
    def test_stream_shape_and_tick_plan(self, spec):
        """The stream has the requested length, a consistent tick plan, and
        every deletion cancels an edge that is live at that point."""
        workload = generate_workload(spec)
        assert len(workload.stream) == spec.num_updates
        assert sum(workload.batches) == spec.num_updates
        assert all(size >= 1 for size in workload.batches)
        assert sum(len(tick) for tick in workload.iter_ticks()) == spec.num_updates
        live: dict = {}
        for update in workload.stream:
            key = (update.edge.label, update.edge.source, update.edge.target)
            if update.is_addition:
                live[key] = live.get(key, 0) + 1
            else:
                assert live.get(key, 0) > 0, f"deletion of non-live edge {key}"
                live[key] -= 1

    @settings(max_examples=25, deadline=None)
    @given(workload_specs)
    def test_query_database_validity(self, spec):
        """Every generated pattern is well-formed with at least one variable."""
        workload = generate_workload(spec)
        assert len(workload.queries) == spec.num_queries
        assert len({pattern.query_id for pattern in workload.queries}) == spec.num_queries
        for pattern in workload.queries:
            assert pattern.num_edges >= 1
            assert pattern.variables(), f"{pattern.query_id} has no variables"

    @settings(max_examples=25, deadline=None)
    @given(workload_specs)
    def test_churn_plan_is_consistent(self, spec):
        """Churn events target real queries/ticks and always apply cleanly
        (never unsubscribe an unsubscribed query or double-subscribe)."""
        workload = generate_workload(spec)
        if spec.subscription_churn == 0.0:
            assert workload.churn == ()
            return
        query_ids = {pattern.query_id for pattern in workload.queries}
        subscribed: set = set()
        for event in workload.churn:
            assert 0 <= event.tick < workload.num_ticks
            assert event.query_id in query_ids
            if event.action == "subscribe":
                assert event.query_id not in subscribed
                subscribed.add(event.query_id)
            else:
                assert event.action == "unsubscribe"
                assert event.query_id in subscribed
                subscribed.discard(event.query_id)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_updates": 0},
            {"num_queries": 0},
            {"num_vertices": 1},
            {"num_labels": 0},
            {"delete_ratio": -0.1},
            {"delete_ratio": 0.95},
            {"skew": -1.0},
            {"burstiness": 1.0},
            {"mean_batch_size": 0},
            {"chain_weight": 0.0, "star_weight": 0.0, "cycle_weight": 0.0},
            {"star_weight": -1.0},
            {"query_length_mean": 0},
            {"query_length_spread": -1},
            {"label_selectivity": 0.0},
            {"label_selectivity": 1.5},
            {"literal_ratio": -0.5},
            {"subscription_churn": 2.0},
        ],
    )
    def test_bad_knobs_raise(self, overrides):
        with pytest.raises(BenchmarkError):
            WorkloadSpec(**overrides)

    def test_scaled_applies_floors(self):
        tiny = WorkloadSpec(num_updates=1000, num_queries=50, num_vertices=500).scaled(0.001)
        assert tiny.num_updates == 200
        assert tiny.num_queries == 10
        assert tiny.num_vertices == 40
        with pytest.raises(BenchmarkError):
            WorkloadSpec().scaled(0.0)

    def test_scenario_spec_lookup(self):
        assert scenario_spec("soak").name == "soak"
        with pytest.raises(BenchmarkError, match="available workloads"):
            scenario_spec("nope")


class TestWorkloadRun:
    def test_run_produces_metrics_and_transcript(self):
        workload = generate_workload(WorkloadSpec(seed=3, num_updates=120, num_queries=6))
        result = run_workload(workload, "TRIC+")
        assert result.num_updates == 120
        assert result.num_ticks == workload.num_ticks
        assert result.updates_per_s > 0
        assert result.tick_latency.count == workload.num_ticks
        assert result.transcript
        assert len(result.transcript_digest()) == 64

    def test_sharded_run_matches_unsharded(self):
        workload = generate_workload(
            WorkloadSpec(seed=9, num_updates=150, num_queries=8, delete_ratio=0.3)
        )
        unsharded = run_workload(workload, "INC+")
        sharded = run_workload(workload, "INC+", shards=2)
        assert unsharded.transcript == sharded.transcript


class TestRunnerCli:
    def test_list_workloads(self, capsys):
        assert main(["--list-workloads"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_unknown_workload_exits_2_with_options(self, capsys):
        assert main(["--workload", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err
        assert "insert_heavy" in err

    def test_unknown_engine_exits_2_with_options(self, capsys):
        assert main(["--workload", "insert_heavy", "--engines", "TRIC,Bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown engine" in err
        assert "TRIC+" in err

    def test_workload_run_is_oracle_checked(self, capsys):
        code = main(
            ["--workload", "insert_heavy", "--scale", "0.01", "--engines", "TRIC+,Naive"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "identical" in out
        assert "DIVERGED" not in out


class TestTimingPercentiles:
    def test_p50_p99(self):
        stats = TimingStats()
        stats.extend((index + 1) / 1000.0 for index in range(100))  # 1ms..100ms
        assert stats.p50_ms == pytest.approx(50.0, abs=1.0)
        assert stats.p95_ms == pytest.approx(95.0, abs=1.0)
        assert stats.p99_ms == pytest.approx(99.0, abs=1.0)
        summary = stats.summary()
        assert {"p50_ms", "p95_ms", "p99_ms"} <= set(summary)

    def test_empty_stats_are_zero(self):
        stats = TimingStats()
        assert stats.p50_ms == 0.0
        assert stats.p99_ms == 0.0
