"""Tests for the top-level public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_everything_in_all_is_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} is declared in __all__ but missing"

    def test_key_entry_points_are_exposed(self):
        for name in (
            "QueryBuilder",
            "TRICEngine",
            "TRICPlusEngine",
            "INVEngine",
            "INCEngine",
            "GraphDBEngine",
            "NaiveEngine",
            "GraphStream",
            "add",
            "delete",
            "create_engine",
        ):
            assert name in repro.__all__

    def test_module_docstring_quickstart_is_executable(self):
        """The doctest-style quickstart in the package docstring must work."""
        engine = repro.TRICEngine()
        engine.register(
            repro.QueryBuilder("checkin")
            .edge("knows", "?a", "?b")
            .edge("checksIn", "?a", "?place")
            .edge("checksIn", "?b", "?place")
            .build()
        )
        assert engine.on_update(repro.add("knows", "alice", "bob")) == frozenset()
        assert engine.on_update(repro.add("checksIn", "alice", "rio")) == frozenset()
        assert sorted(engine.on_update(repro.add("checksIn", "bob", "rio"))) == ["checkin"]

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graph",
            "repro.query",
            "repro.matching",
            "repro.core",
            "repro.baselines",
            "repro.graphdb",
            "repro.datasets",
            "repro.streams",
            "repro.bench",
            "repro.engines",
        ],
    )
    def test_subpackages_import_cleanly(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    def test_exceptions_share_a_base_class(self):
        from repro import ReproError
        from repro.graph.errors import (
            BenchmarkError,
            DatasetError,
            EngineError,
            GraphError,
            QueryError,
            StreamError,
        )

        for exc in (GraphError, QueryError, EngineError, StreamError, DatasetError, BenchmarkError):
            assert issubclass(exc, ReproError)
