"""Tests for the shared ContinuousEngine interface behaviour."""

from __future__ import annotations

import pytest

from repro import ENGINE_FACTORIES, add, create_engine, delete
from repro.graph import GraphStream
from repro.graph.errors import DuplicateQueryError, UnknownQueryError
from repro.query import QueryBuilder

ALL_ENGINE_NAMES = list(ENGINE_FACTORIES)


@pytest.fixture(params=ALL_ENGINE_NAMES)
def engine(request):
    return create_engine(request.param)


class TestQueryManagement:
    def test_queries_property_reflects_registrations(self, engine, checkin_query):
        assert engine.num_queries == 0
        engine.register(checkin_query)
        assert engine.num_queries == 1
        assert set(engine.queries) == {"checkin"}

    def test_register_all(self, engine, paper_fig4_queries):
        engine.register_all(paper_fig4_queries)
        assert engine.num_queries == 4

    def test_duplicate_registration_rejected(self, engine, checkin_query):
        engine.register(checkin_query)
        with pytest.raises(DuplicateQueryError):
            engine.register(checkin_query)

    def test_unknown_query_lookup_raises(self, engine):
        with pytest.raises(UnknownQueryError):
            engine.matches_of("missing")

    def test_queries_is_a_live_read_only_view(self, engine, checkin_query, paper_fig4_queries):
        view = engine.queries
        with pytest.raises(TypeError):
            view["nope"] = checkin_query
        # The proxy is live: registrations made after it was obtained show up.
        engine.register(checkin_query)
        assert "checkin" in view
        engine.register_all(paper_fig4_queries)
        assert set(view) == {"checkin", "Q1", "Q2", "Q3", "Q4"}


class TestStreamConsumption:
    def test_process_returns_per_update_answers(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        answers = engine.process(checkin_stream)
        assert len(answers) == len(checkin_stream)
        assert answers[-1] == frozenset({"checkin"})
        assert engine.updates_processed == len(checkin_stream)

    def test_satisfied_queries_accumulate(self, engine):
        engine.register(QueryBuilder("q1").edge("a", "?x", "?y").build())
        engine.register(QueryBuilder("q2").edge("b", "?x", "?y").build())
        engine.on_update(add("a", "1", "2"))
        assert engine.satisfied_queries() == {"q1"}
        engine.on_update(add("b", "1", "2"))
        assert engine.satisfied_queries() == {"q1", "q2"}

    def test_deletion_shrinks_satisfied_set(self, engine):
        engine.register(QueryBuilder("q1").edge("a", "?x", "?y").build())
        engine.on_update(add("a", "1", "2"))
        engine.on_update(delete("a", "1", "2"))
        assert engine.satisfied_queries() == frozenset()

    def test_describe_contains_counters(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        engine.process(checkin_stream)
        description = engine.describe()
        assert description["queries"] == 1
        assert description["updates_processed"] == len(checkin_stream)
        assert description["satisfied"] == 1
        assert description["engine"] == engine.name

    def test_engines_accept_graphstream_and_plain_lists(self, engine, checkin_query):
        engine.register(checkin_query)
        stream = GraphStream([add("knows", "a", "b")])
        assert engine.process(stream) == [frozenset()]
        assert engine.process([add("checksIn", "a", "rio")]) == [frozenset()]


class TestBatchConsumption:
    def test_on_batch_reports_the_batch_union(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        assert engine.on_batch(list(checkin_stream)) == frozenset({"checkin"})
        assert engine.updates_processed == len(checkin_stream)
        assert engine.satisfied_queries() == {"checkin"}

    def test_on_batch_splits_mixed_runs(self, engine):
        engine.register(QueryBuilder("q1").edge("a", "?x", "?y").build())
        notified = engine.on_batch(
            [add("a", "1", "2"), delete("a", "1", "2"), add("a", "3", "4")]
        )
        # q1 matched (twice) and was invalidated in between; the batch
        # reports the union of the per-update notifications.
        assert notified == frozenset({"q1"})
        assert engine.satisfied_queries() == {"q1"}

    def test_process_batches_matches_per_update_union(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        answers = engine.process_batches(checkin_stream, batch_size=2)
        assert len(answers) == 2
        assert answers == [frozenset(), frozenset({"checkin"})]

    def test_process_batches_rejects_bad_batch_size(self, engine):
        with pytest.raises(ValueError):
            engine.process_batches([], batch_size=0)
