"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import pytest

from repro.datasets import (
    BioGridConfig,
    BioGridGenerator,
    DatasetConfig,
    SNBConfig,
    SNBGenerator,
    TaxiConfig,
    TaxiGenerator,
    ZipfSampler,
)
from repro.datasets import DATASET_GENERATORS
from repro.graph.errors import DatasetError

import random


class TestConfigValidation:
    def test_non_positive_updates_rejected(self):
        with pytest.raises(DatasetError):
            DatasetConfig(num_updates=0)

    def test_snb_pool_sizes_validated(self):
        with pytest.raises(DatasetError):
            SNBConfig(num_persons=0)

    def test_taxi_pool_sizes_validated(self):
        with pytest.raises(DatasetError):
            TaxiConfig(grid_size=0)

    def test_biogrid_validation(self):
        with pytest.raises(DatasetError):
            BioGridConfig(num_proteins=1)
        with pytest.raises(DatasetError):
            BioGridConfig(preferential_attachment=1.5)


class TestZipfSampler:
    def test_samples_stay_in_range(self):
        sampler = ZipfSampler(10, 1.0, random.Random(1))
        samples = [sampler.sample() for _ in range(500)]
        assert all(0 <= s < 10 for s in samples)

    def test_skew_prefers_low_ranks(self):
        sampler = ZipfSampler(50, 1.2, random.Random(2))
        samples = [sampler.sample() for _ in range(2000)]
        low = sum(1 for s in samples if s < 10)
        high = sum(1 for s in samples if s >= 40)
        assert low > high

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            ZipfSampler(0, 1.0, random.Random(1))
        with pytest.raises(DatasetError):
            ZipfSampler(5, -1.0, random.Random(1))


@pytest.mark.parametrize("generator_cls,config", [
    (SNBGenerator, SNBConfig(num_updates=800, seed=4)),
    (TaxiGenerator, TaxiConfig(num_updates=800, seed=4)),
    (BioGridGenerator, BioGridConfig(num_updates=800, seed=4)),
])
class TestGenerators:
    def test_requested_stream_length(self, generator_cls, config):
        stream = generator_cls(config).stream()
        assert len(stream) == 800

    def test_streams_are_addition_only(self, generator_cls, config):
        stream = generator_cls(config).stream()
        assert all(update.is_addition for update in stream)

    def test_deterministic_for_fixed_seed(self, generator_cls, config):
        first = [u.edge for u in generator_cls(config).stream()]
        second = [u.edge for u in generator_cls(config).stream()]
        assert first == second

    def test_different_seeds_differ(self, generator_cls, config):
        other = type(config)(num_updates=config.num_updates, seed=config.seed + 1)
        first = [u.edge for u in generator_cls(config).stream()]
        second = [u.edge for u in generator_cls(other).stream()]
        assert first != second


class TestDatasetCharacteristics:
    def test_snb_has_the_social_label_alphabet(self):
        stream = SNBGenerator(SNBConfig(num_updates=1_000, seed=3)).stream()
        labels = set(stream.statistics().label_histogram)
        assert {"knows", "posted", "hasModerator", "containedIn", "hasCreator"} <= labels

    def test_taxi_has_ride_labels(self):
        stream = TaxiGenerator(TaxiConfig(num_updates=1_000, seed=3)).stream()
        labels = set(stream.statistics().label_histogram)
        assert {"pickupAt", "dropoffAt", "drivenBy", "performedBy", "paidWith"} <= labels

    def test_biogrid_is_a_single_label_stress_test(self):
        stream = BioGridGenerator(BioGridConfig(num_updates=1_000, seed=3)).stream()
        stats = stream.statistics()
        assert set(stats.label_histogram) == {"interacts"}

    def test_biogrid_reuses_hub_proteins(self):
        stream = BioGridGenerator(
            BioGridConfig(num_updates=1_000, num_proteins=200, seed=5)
        ).stream()
        graph = stream.to_graph()
        degrees = sorted(
            (graph.out_degree(v) + graph.in_degree(v) for v in graph.vertices()),
            reverse=True,
        )
        # Preferential attachment: the busiest protein sees far more
        # interactions than the median one.
        assert degrees[0] >= 5 * max(1, degrees[len(degrees) // 2])

    def test_registry_lists_all_three_datasets(self):
        assert set(DATASET_GENERATORS) == {"snb", "taxi", "biogrid"}
