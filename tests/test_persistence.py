"""Durability & crash recovery: snapshots, journal, supervised shards.

The central recovery property: for every engine (all 8 + sharded groups),
crash at an arbitrary batch boundary or mid-write, restore from snapshot +
journal tail-replay, and the recovered engine's ``matches_of``,
``describe()`` and subsequently delivered ``MatchDelta`` frames are
byte-identical to an engine that never died.  Worker processes SIGKILLed
mid-stream are respawned and restored automatically; repeated deaths
degrade gracefully to in-process execution.
"""

from __future__ import annotations

import json
import signal
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QueryBuilder, add, create_sharded_engine, delete
from repro.core.engine import ContinuousEngine
from repro.engines import ENGINE_FACTORIES
from repro.graph.errors import (
    DuplicateQueryError,
    JournalCorruptError,
    PersistenceError,
    ShardUnavailableError,
    SnapshotCorruptError,
)
from repro.persistence import (
    DeltaJournal,
    DurableEngine,
    FaultInjector,
    InjectedCrash,
    corrupt_file_tail,
    decode_snapshot,
    encode_snapshot,
    frame_record,
    parse_frames,
    restore_engine,
    truncate_file_tail,
    update_from_payload,
    update_to_payload,
)
from repro.pubsub import ShardedEngineGroup, SubscriptionBroker

ALL_ENGINES = list(ENGINE_FACTORIES)


# ----------------------------------------------------------------------
# Workload helpers
# ----------------------------------------------------------------------
def patterns():
    return [
        QueryBuilder("chain")
        .edge("knows", "?a", "?b")
        .edge("likes", "?b", "?c")
        .build(),
        QueryBuilder("pair").edge("knows", "?x", "?y").build(),
        QueryBuilder("tri").edge("likes", "?x", "?y").edge("likes", "?y", "?z").build(),
    ]


def interleaved_stream(n=60, seed=0):
    """Deterministic add/delete stream over a small label/vertex alphabet."""
    updates = []
    live = []
    for i in range(n):
        update = add(
            ("knows", "likes")[(i + seed) % 2],
            f"v{(i * 5 + seed) % 9}",
            f"v{(i * 3 + 1) % 9}",
        )
        updates.append(update)
        live.append(update.edge)
        if i % 4 == 3:
            edge = live.pop((i * 7 + seed) % len(live))
            updates.append(delete(edge.label, edge.source, edge.target))
    return updates


def batches_of(updates, size):
    return [updates[start : start + size] for start in range(0, len(updates), size)]


def assert_same_answers(left, right):
    for pattern in patterns():
        assert left.matches_of(pattern.query_id) == right.matches_of(
            pattern.query_id
        ), pattern.query_id
    assert left.satisfied_queries() == right.satisfied_queries()


def delta_frames(broker_engine, subscribed, batches):
    """Feed ``batches`` through a broker; return the delivered delta dicts."""
    broker = SubscriptionBroker(broker_engine)
    subscription = broker.subscribe("probe", subscribed)
    frames = []
    for batch in batches:
        broker.on_batch(batch)
        frames.extend(
            json.dumps(delta.as_dict(), sort_keys=True)
            for delta in subscription.drain()
        )
    return frames


@pytest.fixture
def hard_timeout():
    """Hard wall-clock limit so a supervision bug fails loudly, not silently.

    ``signal.alarm`` rather than a pytest plugin: it needs nothing
    installed and survives a deadlocked process pool (the usual failure
    mode of broken worker supervision).
    """
    def _timed_out(signum, frame):  # pragma: no cover - only on deadlock
        raise TimeoutError("process-executor test exceeded its hard timeout")

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.alarm(120)
    yield
    signal.alarm(0)
    signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# Snapshot envelope
# ----------------------------------------------------------------------
class TestSnapshotEnvelope:
    def test_round_trip(self):
        blob = encode_snapshot({"answer": 42})
        assert decode_snapshot(blob) == {"answer": 42}

    def test_truncated_blob_detected(self):
        blob = encode_snapshot(list(range(100)))
        with pytest.raises(SnapshotCorruptError):
            decode_snapshot(blob[: len(blob) // 2])
        with pytest.raises(SnapshotCorruptError):
            decode_snapshot(blob[:4])

    def test_bit_flip_detected(self):
        blob = bytearray(encode_snapshot("payload"))
        blob[-1] ^= 0xFF
        with pytest.raises(SnapshotCorruptError):
            decode_snapshot(bytes(blob))

    def test_bad_magic_and_version_detected(self):
        blob = encode_snapshot("payload")
        with pytest.raises(SnapshotCorruptError):
            decode_snapshot(b"NOTASNAP!" + blob[9:])
        tampered = blob[:9] + b"\xff\xff" + blob[11:]
        with pytest.raises(SnapshotCorruptError):
            decode_snapshot(tampered)

    def test_restore_engine_rejects_non_engines(self):
        with pytest.raises(SnapshotCorruptError):
            restore_engine(encode_snapshot({"not": "an engine"}))

    def test_update_payload_round_trip(self):
        for update in interleaved_stream(12):
            assert update_from_payload(update_to_payload(update)) == update


# ----------------------------------------------------------------------
# Engine snapshot()/restore(): every engine + sharded groups
# ----------------------------------------------------------------------
class TestEngineSnapshotRestore:
    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_restored_engine_is_behaviourally_identical(self, name):
        updates = interleaved_stream(48)
        engine = ENGINE_FACTORIES[name]()
        engine.register_all(patterns())
        for batch in batches_of(updates[:24], 6):
            engine.on_batch(batch)
        restored = ContinuousEngine.restore(engine.snapshot())
        assert restored.describe() == engine.describe()
        for batch in batches_of(updates[24:], 6):
            assert restored.on_batch(batch) == engine.on_batch(batch)
        assert_same_answers(restored, engine)
        assert restored.describe() == engine.describe()

    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_restored_sharded_group_is_identical(self, num_shards):
        updates = interleaved_stream(40)
        group = ShardedEngineGroup("TRIC+", num_shards, assignment="label")
        group.register_all(patterns())
        for batch in batches_of(updates[:20], 5):
            group.on_batch(batch)
        restored = ContinuousEngine.restore(group.snapshot())
        assert isinstance(restored, ShardedEngineGroup)
        for batch in batches_of(updates[20:], 5):
            assert restored.on_batch(batch) == group.on_batch(batch)
        assert_same_answers(restored, group)

    def test_restored_engine_delivers_identical_match_deltas(self):
        updates = interleaved_stream(40)
        engine = ENGINE_FACTORIES["TRIC+"]()
        engine.register_all(patterns())
        for batch in batches_of(updates[:20], 5):
            engine.on_batch(batch)
        restored = ContinuousEngine.restore(engine.snapshot())
        suffix = batches_of(updates[20:], 5)
        subscribed = [pattern.query_id for pattern in patterns()]
        assert delta_frames(restored, subscribed, suffix) == delta_frames(
            engine, subscribed, suffix
        )


# ----------------------------------------------------------------------
# The write-ahead journal
# ----------------------------------------------------------------------
class TestDeltaJournal:
    def test_append_and_replay_round_trip(self, tmp_path):
        journal = DeltaJournal(tmp_path / "j.wal")
        journal.append_register(1, patterns()[0])
        journal.append_batch(2, interleaved_stream(8))
        journal.append_backfill(3, interleaved_stream(4, seed=1))
        records, torn = journal.replay()
        assert not torn
        assert [record.op for record in records] == ["register", "batch", "backfill"]
        assert records[0].pattern().query_id == "chain"
        assert records[1].updates() == interleaved_stream(8)
        assert records[2].updates() == interleaved_stream(4, seed=1)
        records, _ = journal.replay(after_seq=2)
        assert [record.seq for record in records] == [3]
        journal.close()

    def test_torn_final_record_truncated_not_crashed(self, tmp_path):
        journal = DeltaJournal(tmp_path / "j.wal")
        journal.append_batch(1, interleaved_stream(6))
        journal.append_batch(2, interleaved_stream(6, seed=2))
        intact = journal.size_bytes
        truncate_file_tail(journal.path, 11)  # crash mid-write(2)
        records, torn = journal.replay()
        assert torn
        assert [record.seq for record in records] == [1]
        assert journal.size_bytes < intact
        # The journal stays appendable after the truncation.
        journal.append_batch(2, interleaved_stream(6, seed=2))
        records, torn = journal.replay()
        assert not torn and [record.seq for record in records] == [1, 2]
        journal.close()

    def test_corrupt_final_record_truncated(self, tmp_path):
        journal = DeltaJournal(tmp_path / "j.wal")
        journal.append_batch(1, interleaved_stream(6))
        journal.append_batch(2, interleaved_stream(6, seed=2))
        corrupt_file_tail(journal.path, offset_from_end=4)
        records, torn = journal.replay()
        assert torn and [record.seq for record in records] == [1]
        journal.close()

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "j.wal"
        with DeltaJournal(path) as journal:
            journal.append_batch(1, interleaved_stream(6))
            journal.append_batch(2, interleaved_stream(6, seed=2))
        data = path.read_bytes()
        first_end = data.index(b"\n") + 1
        damaged = data[: first_end - 10] + b"XX" + data[first_end - 8 :]
        path.write_bytes(damaged)
        with pytest.raises(JournalCorruptError):
            parse_frames(path.read_bytes())

    def test_parse_frames_offsets(self):
        frames = frame_record({"seq": 1, "op": "batch"}) + frame_record(
            {"seq": 2, "op": "batch"}
        )
        records, good, torn = parse_frames(frames)
        assert [record.seq for record in records] == [1, 2]
        assert good == len(frames) and not torn
        records, good, torn = parse_frames(frames + b"garbage")
        assert [record.seq for record in records] == [1, 2] and torn

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = DeltaJournal(tmp_path / "j.wal")
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(PersistenceError):
            journal.append_batch(1, [])


# ----------------------------------------------------------------------
# Durable recovery: crash between append and apply, torn tails
# ----------------------------------------------------------------------
class TestDurableRecovery:
    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_crash_at_batch_boundary_every_engine(self, name, tmp_path):
        """Crash between journal append and state apply, mid-stream.

        The journal holds the in-flight batch, so recovery applies it —
        the recovered engine must equal an oracle that never died and
        processed that batch.
        """
        updates = interleaved_stream(48)
        prefix, suffix = batches_of(updates[:24], 6), batches_of(updates[24:], 6)
        factory = ENGINE_FACTORIES[name]
        faults = FaultInjector()
        faults.arm("durable.apply.before", hits=len(prefix) + len(patterns()))
        durable = DurableEngine(
            factory(), tmp_path / "d", snapshot_every=4, faults=faults
        )
        crashed_at = None
        try:
            durable.register_all(patterns())
            for index, batch in enumerate(prefix):
                durable.on_batch(batch)
        except InjectedCrash:
            crashed_at = len(prefix) - 1  # the last batch: journaled, unapplied
        assert crashed_at is not None
        durable.close()

        oracle = factory()
        oracle.register_all(patterns())
        for batch in prefix:  # the oracle never died and applied everything
            oracle.on_batch(batch)

        recovered = DurableEngine.recover(tmp_path / "d", engine_factory=factory)
        assert recovered.recovered and not recovered.truncated_tail
        assert recovered.engine.describe() == oracle.describe()
        for batch in suffix:
            assert recovered.on_batch(batch) == oracle.on_batch(batch)
        assert_same_answers(recovered, oracle)
        assert recovered.engine.describe() == oracle.describe()
        recovered.close()

    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_torn_final_record_every_engine(self, name, tmp_path):
        """Crash mid-write: the unacknowledged batch is truncated away.

        The oracle never saw the torn batch either (it was never
        acknowledged), so after the client retries it the two histories
        re-converge exactly.
        """
        updates = interleaved_stream(48)
        prefix, suffix = batches_of(updates[:24], 6), batches_of(updates[24:], 6)
        factory = ENGINE_FACTORIES[name]
        durable = DurableEngine(factory(), tmp_path / "d", snapshot_every=4)
        durable.register_all(patterns())
        for batch in prefix[:-1]:
            durable.on_batch(batch)
        durable.on_batch(prefix[-1])
        durable.close()
        truncate_file_tail(durable.journal.path, 13)  # tear the last record

        oracle = factory()
        oracle.register_all(patterns())
        for batch in prefix[:-1]:
            oracle.on_batch(batch)

        recovered = DurableEngine.recover(tmp_path / "d", engine_factory=factory)
        assert recovered.truncated_tail
        assert recovered.engine.describe() == oracle.describe()
        for batch in [prefix[-1]] + suffix:  # the client retries the torn batch
            assert recovered.on_batch(batch) == oracle.on_batch(batch)
        assert_same_answers(recovered, oracle)
        recovered.close()

    def test_sharded_group_recovery(self, tmp_path):
        updates = interleaved_stream(40)
        prefix, suffix = batches_of(updates[:20], 5), batches_of(updates[20:], 5)

        def factory():
            return ShardedEngineGroup("TRIC+", 2, assignment="label")

        durable = DurableEngine(factory(), tmp_path / "d", snapshot_every=3)
        durable.register_all(patterns())
        for batch in prefix:
            durable.on_batch(batch)
        durable.close()

        oracle = factory()
        oracle.register_all(patterns())
        for batch in prefix:
            oracle.on_batch(batch)

        recovered = DurableEngine.recover(tmp_path / "d", engine_factory=factory)
        subscribed = [pattern.query_id for pattern in patterns()]
        assert delta_frames(recovered, subscribed, suffix) == delta_frames(
            oracle, subscribed, suffix
        )
        assert_same_answers(recovered, oracle)
        recovered.close()

    def test_recovered_engine_delivers_identical_match_deltas(self, tmp_path):
        updates = interleaved_stream(40)
        prefix, suffix = batches_of(updates[:20], 5), batches_of(updates[20:], 5)
        factory = ENGINE_FACTORIES["TRIC+"]
        faults = FaultInjector()
        faults.arm("durable.apply.before", hits=len(prefix) + len(patterns()))
        durable = DurableEngine(factory(), tmp_path / "d", faults=faults)
        with pytest.raises(InjectedCrash):
            durable.register_all(patterns())
            for batch in prefix:
                durable.on_batch(batch)
        durable.close()

        oracle = factory()
        oracle.register_all(patterns())
        for batch in prefix:
            oracle.on_batch(batch)

        recovered = DurableEngine.recover(tmp_path / "d", engine_factory=factory)
        subscribed = [pattern.query_id for pattern in patterns()]
        assert delta_frames(recovered, subscribed, suffix) == delta_frames(
            oracle, subscribed, suffix
        )
        recovered.close()

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        crash_batch=st.integers(min_value=0, max_value=7),
        batch_size=st.integers(min_value=1, max_value=9),
        torn_bytes=st.integers(min_value=0, max_value=40),
        snapshot_every=st.one_of(st.none(), st.integers(min_value=1, max_value=6)),
    )
    def test_property_crash_anywhere_recovers_exactly(
        self, tmp_path_factory, seed, crash_batch, batch_size, torn_bytes, snapshot_every
    ):
        """Arbitrary stream, arbitrary crash point, arbitrary torn tail.

        ``torn_bytes == 0`` models a crash at the batch boundary (journal
        record intact: recovery applies it); ``torn_bytes > 0`` tears the
        final record (crash mid-write: recovery truncates it and the
        client retries).  Either way the recovered engine must be
        byte-identical to the never-died oracle over the rest of the
        stream.
        """
        tmp_path = tmp_path_factory.mktemp("wal")
        updates = interleaved_stream(50, seed=seed)
        all_batches = batches_of(updates, batch_size)
        crash_batch = min(crash_batch, len(all_batches) - 1)
        prefix, suffix = all_batches[: crash_batch + 1], all_batches[crash_batch + 1 :]
        factory = ENGINE_FACTORIES["TRIC+"]

        faults = FaultInjector()
        faults.arm("durable.apply.before", hits=len(patterns()) + len(prefix))
        durable = DurableEngine(
            factory(), tmp_path / "d", snapshot_every=snapshot_every, faults=faults
        )
        with pytest.raises(InjectedCrash):
            durable.register_all(patterns())
            for batch in prefix:
                durable.on_batch(batch)
        durable.close()

        journal_size = (tmp_path / "d" / "journal.wal").stat().st_size
        tear = min(torn_bytes, max(0, journal_size - 1))
        if tear > 0:
            truncate_file_tail(tmp_path / "d" / "journal.wal", tear)

        oracle = factory()
        oracle.register_all(patterns())
        recovered = DurableEngine.recover(tmp_path / "d", engine_factory=factory)
        # The oracle processes exactly the batches recovery acknowledged
        # (seq <= recovered._seq); any batch lost to the tear was never
        # acknowledged, so the client retries it on both sides.
        oracle_batches = []
        for index, batch in enumerate(prefix):
            seq = len(patterns()) + index + 1
            if seq <= recovered._seq:
                oracle_batches.append(batch)
            else:
                suffix = [batch] + suffix  # the client retries it
        for batch in oracle_batches:
            oracle.on_batch(batch)
        for batch in suffix:
            assert recovered.on_batch(batch) == oracle.on_batch(batch)
        assert_same_answers(recovered, oracle)
        assert recovered.engine.describe() == oracle.describe()
        recovered.close()


# ----------------------------------------------------------------------
# DurableEngine mechanics
# ----------------------------------------------------------------------
class TestDurableEngineMechanics:
    def test_duplicate_registration_not_journalled(self, tmp_path):
        durable = DurableEngine(ENGINE_FACTORIES["TRIC+"](), tmp_path / "d")
        durable.register(patterns()[0])
        before = durable.journal.records_appended
        with pytest.raises(DuplicateQueryError):
            durable.register(patterns()[0])
        assert durable.journal.records_appended == before
        durable.close()

    def test_recover_needs_snapshot_or_factory(self, tmp_path):
        with pytest.raises(PersistenceError):
            DurableEngine.recover(tmp_path / "missing")

    def test_snapshot_every_validated(self, tmp_path):
        with pytest.raises(PersistenceError):
            DurableEngine(ENGINE_FACTORIES["TRIC+"](), tmp_path / "d", snapshot_every=0)

    def test_describe_reports_durability(self, tmp_path):
        with DurableEngine(
            ENGINE_FACTORIES["TRIC+"](), tmp_path / "d", snapshot_every=2
        ) as durable:
            durable.register_all(patterns())
            durable.on_batch(interleaved_stream(8))
            info = durable.describe()
        assert info["engine"] == "TRIC+"
        durability = info["durability"]
        assert durability["seq"] == 4
        assert durability["snapshots_written"] >= 1
        assert durability["fsync"] is True

    def test_close_is_idempotent(self, tmp_path):
        durable = DurableEngine(ENGINE_FACTORIES["TRIC+"](), tmp_path / "d")
        with durable:
            durable.register(patterns()[0])
        durable.close()
        durable.close()

    def test_create_sharded_engine_journal_dir(self, tmp_path):
        engine = create_sharded_engine(
            "TRIC+", 2, journal_dir=str(tmp_path / "d"), snapshot_every=3
        )
        assert isinstance(engine, DurableEngine)
        engine.register_all(patterns())
        engine.on_batch(interleaved_stream(12))
        expected = {
            pattern.query_id: engine.matches_of(pattern.query_id)
            for pattern in patterns()
        }
        engine.close()
        recovered = DurableEngine.recover(
            tmp_path / "d",
            engine_factory=lambda: create_sharded_engine("TRIC+", 2),
        )
        for query_id, matches in expected.items():
            assert recovered.matches_of(query_id) == matches
        recovered.close()

    def test_update_counter_and_per_update_paths(self, tmp_path):
        durable = DurableEngine(ENGINE_FACTORIES["TRIC+"](), tmp_path / "d")
        durable.register_all(patterns())
        reports = durable.process(interleaved_stream(6))
        assert len(reports) == len(interleaved_stream(6))
        durable.process_batches(interleaved_stream(6, seed=3), 2)
        with pytest.raises(ValueError):
            durable.process_batches([], 0)
        durable.close()


# ----------------------------------------------------------------------
# Snapshot generation fallback
# ----------------------------------------------------------------------
def durable_with_generations(directory, extra_tail=True):
    """A closed durable directory holding >= 2 snapshot generations, plus
    the in-memory oracle that saw the same stream."""
    updates = interleaved_stream(40)
    durable = DurableEngine(
        ENGINE_FACTORIES["TRIC+"](), directory, snapshot_every=4
    )
    oracle = ENGINE_FACTORIES["TRIC+"]()
    durable.register_all(patterns())
    oracle.register_all(patterns())
    for batch in batches_of(updates, 4):
        durable.on_batch(batch)
        oracle.on_batch(batch)
    if extra_tail:
        # Land past the last snapshot boundary so the live journal holds
        # a tail the recovery has to bridge.
        tail = [add("knows", "v0", "v2")]
        durable.on_batch(tail)
        oracle.on_batch(tail)
    assert durable.snapshots_written >= 2
    assert (directory / "snapshot.bin.1").exists()
    durable.close()
    return oracle


class TestSnapshotGenerationFallback:
    def test_corrupt_snapshot_falls_back_one_generation(self, tmp_path):
        directory = tmp_path / "d"
        oracle = durable_with_generations(directory)
        snapshot = directory / "snapshot.bin"
        corrupt_file_tail(snapshot, offset_from_end=snapshot.stat().st_size // 2)
        recovered = DurableEngine.recover(directory)
        assert recovered.snapshot_fallback
        assert recovered.describe()["durability"]["snapshot_fallback"]
        assert_same_answers(recovered, oracle)
        # The fallback engine keeps journalling from the recovered seq.
        suffix = [add("likes", "v4", "v5")]
        recovered.on_batch(suffix)
        oracle.on_batch(suffix)
        assert_same_answers(recovered, oracle)
        recovered.close()

    def test_snapshot_lost_mid_rotation_falls_back(self, tmp_path):
        directory = tmp_path / "d"
        oracle = durable_with_generations(directory)
        # A crash between the rotation and the new snapshot's rename
        # leaves no snapshot.bin but a complete previous generation.
        (directory / "snapshot.bin").unlink()
        recovered = DurableEngine.recover(directory)
        assert recovered.snapshot_fallback
        assert_same_answers(recovered, oracle)
        recovered.close()

    def test_both_generations_corrupt_refuses(self, tmp_path):
        directory = tmp_path / "d"
        durable_with_generations(directory)
        for name in ("snapshot.bin", "snapshot.bin.1"):
            path = directory / name
            corrupt_file_tail(path, offset_from_end=path.stat().st_size // 2)
        with pytest.raises(SnapshotCorruptError, match="both snapshot generations"):
            DurableEngine.recover(directory)

    def test_fallback_refuses_unbridgeable_journal_gap(self, tmp_path):
        directory = tmp_path / "d"
        durable_with_generations(directory)
        snapshot = directory / "snapshot.bin"
        corrupt_file_tail(snapshot, offset_from_end=snapshot.stat().st_size // 2)
        # Losing the preserved segment leaves a sequence gap between the
        # previous snapshot and the live journal tail: typed refusal, not
        # a silently stale recovery.
        (directory / "journal.wal.1").unlink()
        with pytest.raises(SnapshotCorruptError, match="bridge|gap"):
            DurableEngine.recover(directory)

    def test_clean_recovery_does_not_touch_previous_generation(self, tmp_path):
        directory = tmp_path / "d"
        oracle = durable_with_generations(directory)
        recovered = DurableEngine.recover(directory)
        assert not recovered.snapshot_fallback
        assert recovered.describe()["durability"]["previous_generation"]
        assert_same_answers(recovered, oracle)
        recovered.close()


# ----------------------------------------------------------------------
# Durable lifecycle races
# ----------------------------------------------------------------------
class TestDurableLifecycleRaces:
    def test_concurrent_close_waits_for_inflight_flush(self, tmp_path):
        """close() during a writer's flush waits, never tears the journal."""
        directory = tmp_path / "d"
        durable = DurableEngine(ENGINE_FACTORIES["TRIC+"](), directory)
        durable.register_all(patterns())
        stream = interleaved_stream(200)
        unexpected = []
        closed = threading.Event()

        def writer():
            index = 0
            while not closed.is_set():
                batch = stream[index % 190 : index % 190 + 4]
                index += 4
                try:
                    durable.on_batch(batch)
                except PersistenceError:
                    break  # closed under us: the typed, expected outcome
                except Exception as error:  # pragma: no cover - bug trap
                    unexpected.append(error)
                    break

        threads = [threading.Thread(target=writer) for _ in range(2)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        durable.close()
        closed.set()
        for thread in threads:
            thread.join()
        assert not unexpected
        # Every record the journal holds is whole: no torn tail, no
        # interior damage — the race never interrupted a flush.
        _records, _good, torn = parse_frames(
            (directory / "journal.wal").read_bytes()
        )
        assert not torn

    def test_closed_durable_raises_typed_errors(self, tmp_path):
        durable = DurableEngine(ENGINE_FACTORIES["TRIC+"](), tmp_path / "d")
        durable.register(patterns()[0])
        durable.close()
        with pytest.raises(PersistenceError, match="closed"):
            durable.on_batch([add("knows", "v0", "v1")])
        with pytest.raises(PersistenceError, match="closed"):
            durable.register(patterns()[1])
        with pytest.raises(PersistenceError, match="closed"):
            durable.write_snapshot()

    def test_recover_during_snapshot_replace_leftover_tmp(self, tmp_path):
        """A crash mid-``write_snapshot`` leaves a ``.tmp`` file behind;
        recovery ignores it and resumes from the committed state."""
        directory = tmp_path / "d"
        oracle = durable_with_generations(directory)
        (directory / "snapshot.bin.tmp").write_bytes(b"half-written garbage")
        recovered = DurableEngine.recover(directory)
        assert not recovered.snapshot_fallback
        assert_same_answers(recovered, oracle)
        recovered.close()


# ----------------------------------------------------------------------
# Supervised process shards
# ----------------------------------------------------------------------
class TestSupervisedProcessShards:
    def test_sigkilled_worker_respawned_and_identical(self, hard_timeout):
        updates = interleaved_stream(60)
        oracle = ShardedEngineGroup("TRIC+", 2, executor="serial")
        oracle.register_all(patterns())
        with ShardedEngineGroup(
            "TRIC+", 2, executor="process", worker_snapshot_every=4
        ) as group:
            group.register_all(patterns())
            chunks = batches_of(updates, 6)
            for index, batch in enumerate(chunks):
                assert group.on_batch(batch) == oracle.on_batch(batch)
                if index == 3:
                    group.shards[0].kill_worker()  # mid-stream SIGKILL
                if index == 6:
                    group.shards[1].kill_worker()
            assert_same_answers(group, oracle)
            description = group.describe()
            assert sum(description["shard_respawns"]) >= 2
            assert sum(description["shard_replayed_ops"]) >= 1
            assert description["degraded_shards"] == 0
            supervision = description["per_shard"][0]["supervision"]
            assert supervision["respawns"] >= 1

    def test_sigkilled_worker_delivers_identical_deltas(self, hard_timeout):
        updates = interleaved_stream(40)
        subscribed = [pattern.query_id for pattern in patterns()]
        oracle = ShardedEngineGroup("TRIC+", 2, executor="serial")
        oracle.register_all(patterns())
        broker_o = SubscriptionBroker(oracle)
        sub_o = broker_o.subscribe("probe", subscribed)
        with ShardedEngineGroup(
            "TRIC+", 2, executor="process", worker_snapshot_every=4
        ) as group:
            group.register_all(patterns())
            broker_g = SubscriptionBroker(group)
            sub_g = broker_g.subscribe("probe", subscribed)
            for index, batch in enumerate(batches_of(updates, 5)):
                broker_o.on_batch(batch)
                broker_g.on_batch(batch)
                frames_o = [
                    json.dumps(d.as_dict(), sort_keys=True) for d in sub_o.drain()
                ]
                frames_g = [
                    json.dumps(d.as_dict(), sort_keys=True) for d in sub_g.drain()
                ]
                assert frames_o == frames_g
                if index == 2:
                    group.shards[0].kill_worker()
            assert sum(group.describe()["shard_respawns"]) >= 1

    def test_crashes_interleaved_with_subscription_churn(self, hard_timeout):
        """Worker deaths racing subscribe/unsubscribe churn stay exact.

        Listeners come and go *between* kills; every frame either side
        delivers — including the mid-stream snapshot a late subscriber
        gets — must match the never-crashed oracle's byte for byte.
        """
        updates = interleaved_stream(60)
        subscribed = [pattern.query_id for pattern in patterns()]
        oracle = ShardedEngineGroup("TRIC+", 2, executor="serial")
        oracle.register_all(patterns())
        broker_o = SubscriptionBroker(oracle)
        with ShardedEngineGroup(
            "TRIC+", 2, executor="process", worker_snapshot_every=3
        ) as group:
            group.register_all(patterns())
            broker_g = SubscriptionBroker(group)
            subs = {}  # listener id -> (oracle subscription, group subscription)
            subs["app"] = (
                broker_o.subscribe("app", subscribed),
                broker_g.subscribe("app", subscribed),
            )
            for index, batch in enumerate(batches_of(updates, 5)):
                if index == 2:
                    group.shards[0].kill_worker()
                if index == 3:  # a listener arrives right after a crash
                    subs["late"] = (
                        broker_o.subscribe("late", subscribed[:1]),
                        broker_g.subscribe("late", subscribed[:1]),
                    )
                if index == 5:
                    broker_o.unsubscribe("app")
                    broker_g.unsubscribe("app")
                    del subs["app"]
                    group.shards[1].kill_worker()
                broker_o.on_batch(batch)
                broker_g.on_batch(batch)
                for listener, (sub_o, sub_g) in subs.items():
                    frames_o = [
                        json.dumps(d.as_dict(), sort_keys=True)
                        for d in sub_o.drain()
                    ]
                    frames_g = [
                        json.dumps(d.as_dict(), sort_keys=True)
                        for d in sub_g.drain()
                    ]
                    assert frames_o == frames_g, (listener, index)
            assert_same_answers(group, oracle)
            assert sum(group.describe()["shard_respawns"]) >= 2

    def test_repeated_deaths_degrade_to_in_process(self, hard_timeout):
        updates = interleaved_stream(48)
        oracle = ShardedEngineGroup("TRIC+", 1, executor="serial")
        oracle.register_all(patterns())
        with ShardedEngineGroup(
            "TRIC+", 1, executor="process", max_respawns=1, worker_snapshot_every=3
        ) as group:
            group.register_all(patterns())
            chunks = batches_of(updates, 6)
            for index, batch in enumerate(chunks):
                assert group.on_batch(batch) == oracle.on_batch(batch)
                if index in (1, 3):
                    group.shards[0].kill_worker()
            assert group.shards[0].degraded
            assert group.describe()["degraded_shards"] == 1
            assert_same_answers(group, oracle)

    def test_closed_proxy_raises_typed_error(self, hard_timeout):
        group = ShardedEngineGroup("TRIC+", 2, executor="process")
        group.register_all(patterns())
        group.close()
        with pytest.raises(ShardUnavailableError):
            group.shards[0].matches_of("pair")

    def test_process_group_snapshot_restores_workers(self, hard_timeout):
        updates = interleaved_stream(30)
        with ShardedEngineGroup("TRIC+", 2, executor="process") as group:
            group.register_all(patterns())
            group.on_batch(updates[:15])
            blob = group.snapshot()
            with ContinuousEngine.restore(blob) as restored:
                assert isinstance(restored, ShardedEngineGroup)
                group.on_batch(updates[15:])
                restored.on_batch(updates[15:])
                assert_same_answers(restored, group)


# ----------------------------------------------------------------------
# close() idempotency across executors (regression)
# ----------------------------------------------------------------------
class TestCloseIdempotency:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_double_close_and_context_manager(self, executor, hard_timeout):
        group = ShardedEngineGroup("TRIC+", 2, executor=executor)
        group.register_all(patterns())
        group.on_batch(interleaved_stream(10))
        with group:
            pass  # __exit__ closes once
        group.close()  # explicit second close must not raise
        group.close()

    def test_thread_pool_unusable_after_close(self):
        from repro.graph.errors import EngineError

        group = ShardedEngineGroup("TRIC+", 2, executor="thread")
        group.register_all(patterns())
        group.on_batch(interleaved_stream(10))
        group.close()
        with pytest.raises(EngineError):
            group._pool()


# ----------------------------------------------------------------------
# Fault injector mechanics
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_arm_hits_and_disarm(self):
        faults = FaultInjector()
        faults.arm("p", hits=2)
        faults.reached("p")  # first hit survives
        with pytest.raises(InjectedCrash):
            faults.reached("p")
        faults.reached("p")  # disarmed after firing
        assert faults.hits["p"] == 3
        faults.arm("q")
        faults.disarm("q")
        faults.reached("q")
        faults.arm("q")
        faults.disarm()
        faults.reached("q")
        with pytest.raises(ValueError):
            faults.arm("r", hits=0)

    def test_injected_crash_is_not_an_exception_subclass(self):
        assert not issubclass(InjectedCrash, Exception)
        assert issubclass(InjectedCrash, BaseException)
