"""Tests for the graph-database continuous-query baseline engine."""

from __future__ import annotations

import pytest

from repro import GraphDBEngine, add, delete
from repro.query import QueryBuilder


@pytest.fixture
def engine() -> GraphDBEngine:
    return GraphDBEngine()


class TestGraphDBEngine:
    def test_checkin_example(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        answers = [engine.on_update(update) for update in checkin_stream]
        assert [bool(a) for a in answers] == [False, False, False, True]
        assert engine.matches_of("checkin") == [{"p1": "P1", "p2": "P2", "place": "rio"}]

    def test_store_receives_every_update(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        for update in checkin_stream:
            engine.on_update(update)
        assert engine.store.num_edges == len(checkin_stream)

    def test_duplicate_edge_is_stored_but_produces_no_answer(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        for update in checkin_stream:
            engine.on_update(update)
        assert engine.on_update(add("checksIn", "P2", "rio")) == frozenset()
        assert engine.store.multiplicity("checksIn", "P2", "rio") == 2

    def test_deletion_invalidates(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        for update in checkin_stream:
            engine.on_update(update)
        assert engine.on_update(delete("checksIn", "P2", "rio")) == {"checkin"}
        assert engine.satisfied_queries() == frozenset()

    def test_deleting_one_copy_of_duplicate_keeps_satisfaction(self, engine):
        engine.register(QueryBuilder("q").edge("knows", "?a", "?b").build())
        engine.on_update(add("knows", "x", "y"))
        engine.on_update(add("knows", "x", "y"))
        assert engine.on_update(delete("knows", "x", "y")) == frozenset()
        assert engine.satisfied_queries() == {"q"}

    def test_deleting_unknown_edge_is_noop(self, engine, checkin_query):
        engine.register(checkin_query)
        assert engine.on_update(delete("knows", "x", "y")) == frozenset()

    def test_only_affected_queries_are_reexecuted(self, engine):
        engine.register(QueryBuilder("knows-q").edge("knows", "?a", "?b").build())
        engine.register(QueryBuilder("likes-q").edge("likes", "?a", "?b").build())
        assert engine.on_update(add("knows", "x", "y")) == {"knows-q"}
        assert engine.on_update(add("likes", "x", "y")) == {"likes-q"}

    def test_statistics(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        for update in checkin_stream:
            engine.on_update(update)
        stats = engine.statistics()
        assert stats["store_edges"] == len(checkin_stream)
        assert stats["indexed_keys"] >= 2
        assert stats["plans_built"] >= 1

    def test_injective_mode(self):
        engine = GraphDBEngine(injective=True)
        engine.register(QueryBuilder("q").edge("knows", "?a", "?b").build())
        assert engine.on_update(add("knows", "x", "x")) == frozenset()
        assert engine.on_update(add("knows", "x", "y")) == {"q"}

    def test_custom_transaction_batch_size(self, checkin_query, checkin_stream):
        engine = GraphDBEngine(writes_per_transaction=1)
        engine.register(checkin_query)
        for update in checkin_stream:
            engine.on_update(update)
        assert engine.store.num_edges == len(checkin_stream)
