"""Unit tests for the in-memory attribute multigraph."""

from __future__ import annotations

import pytest

from repro.graph import Edge, EdgeNotFoundError, Graph, VertexNotFoundError, add, delete


@pytest.fixture
def small_graph() -> Graph:
    graph = Graph()
    graph.add_edge(Edge("knows", "a", "b"))
    graph.add_edge(Edge("knows", "b", "c"))
    graph.add_edge(Edge("likes", "a", "post1"))
    return graph


class TestGraphBasics:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_add_edge_creates_vertices(self, small_graph):
        assert small_graph.num_vertices == 4
        assert small_graph.has_vertex("post1")

    def test_num_edges_counts_multiplicity(self, small_graph):
        small_graph.add_edge(Edge("knows", "a", "b"))
        assert small_graph.num_edges == 4
        assert small_graph.num_distinct_edges == 3
        assert small_graph.multiplicity(Edge("knows", "a", "b")) == 2

    def test_has_edge(self, small_graph):
        assert small_graph.has_edge(Edge("knows", "a", "b"))
        assert not small_graph.has_edge(Edge("knows", "b", "a"))

    def test_contains_protocol(self, small_graph):
        assert Edge("knows", "a", "b") in small_graph
        assert "a" in small_graph
        assert "unknown" not in small_graph
        assert 42 not in small_graph

    def test_len_counts_edges(self, small_graph):
        assert len(small_graph) == 3

    def test_constructor_from_edges(self):
        graph = Graph([Edge("l", "x", "y"), Edge("l", "y", "z")])
        assert graph.num_edges == 2

    def test_edge_labels(self, small_graph):
        assert small_graph.edge_labels() == {"knows", "likes"}


class TestNavigation:
    def test_successors(self, small_graph):
        assert small_graph.successors("a") == {"b", "post1"}
        assert small_graph.successors("a", "knows") == {"b"}
        assert small_graph.successors("missing") == set()

    def test_predecessors(self, small_graph):
        assert small_graph.predecessors("b", "knows") == {"a"}
        assert small_graph.predecessors("post1") == {"a"}
        assert small_graph.predecessors("missing") == set()

    def test_degrees(self, small_graph):
        assert small_graph.out_degree("a") == 2
        assert small_graph.in_degree("b") == 1

    def test_degree_of_missing_vertex_raises(self, small_graph):
        with pytest.raises(VertexNotFoundError):
            small_graph.out_degree("nope")
        with pytest.raises(VertexNotFoundError):
            small_graph.in_degree("nope")

    def test_edges_with_label(self, small_graph):
        assert small_graph.edges_with_label("knows") == {("a", "b"), ("b", "c")}
        assert small_graph.edges_with_label("unknown") == set()


class TestMutation:
    def test_remove_edge(self, small_graph):
        small_graph.remove_edge(Edge("knows", "a", "b"))
        assert not small_graph.has_edge(Edge("knows", "a", "b"))
        assert small_graph.successors("a", "knows") == set()

    def test_remove_missing_edge_raises(self, small_graph):
        with pytest.raises(EdgeNotFoundError):
            small_graph.remove_edge(Edge("knows", "c", "a"))

    def test_remove_duplicate_edge_keeps_one_copy(self, small_graph):
        duplicate = Edge("knows", "a", "b")
        small_graph.add_edge(duplicate)
        small_graph.remove_edge(duplicate)
        assert small_graph.has_edge(duplicate)
        assert small_graph.multiplicity(duplicate) == 1

    def test_apply_updates(self):
        graph = Graph()
        graph.apply(add("l", "a", "b"))
        assert graph.has_edge(Edge("l", "a", "b"))
        graph.apply(delete("l", "a", "b"))
        assert not graph.has_edge(Edge("l", "a", "b"))

    def test_copy_is_independent(self, small_graph):
        clone = small_graph.copy()
        clone.add_edge(Edge("knows", "c", "a"))
        assert clone.num_edges == small_graph.num_edges + 1
        assert not small_graph.has_edge(Edge("knows", "c", "a"))

    def test_copy_preserves_multiplicity(self):
        graph = Graph()
        graph.add_edge(Edge("l", "a", "b"))
        graph.add_edge(Edge("l", "a", "b"))
        assert graph.copy().multiplicity(Edge("l", "a", "b")) == 2
