"""Tests for the hash-join build-structure cache used by the + engine variants."""

from __future__ import annotations

from repro.matching.cache import CacheStatistics, JoinCache
from repro.matching.relation import Relation, natural_join


class TestJoinCache:
    def test_first_lookup_is_a_miss(self):
        cache = JoinCache()
        relation = Relation(("s", "t"), [("a", "b")])
        index = cache.build_index(relation, (0,))
        assert index == {("a",): [("a", "b")]}
        assert cache.statistics.misses == 1
        assert cache.statistics.hits == 0

    def test_second_lookup_is_a_hit(self):
        cache = JoinCache()
        relation = Relation(("s", "t"), [("a", "b")])
        cache.build_index(relation, (0,))
        cache.build_index(relation, (0,))
        assert cache.statistics.hits == 1

    def test_appended_rows_patch_the_index(self):
        cache = JoinCache()
        relation = Relation(("s", "t"), [("a", "b")])
        cache.build_index(relation, (0,))
        relation.add(("a", "c"))
        relation.add(("x", "y"))
        index = cache.build_index(relation, (0,))
        assert sorted(index[("a",)]) == [("a", "b"), ("a", "c")]
        assert index[("x",)] == [("x", "y")]
        assert cache.statistics.incremental_patches == 1
        assert cache.statistics.rebuilds == 0

    def test_removal_patches_the_index(self):
        cache = JoinCache()
        relation = Relation(("s", "t"), [("a", "b"), ("a", "c")])
        cache.build_index(relation, (0,))
        relation.remove(("a", "b"))
        index = cache.build_index(relation, (0,))
        assert index[("a",)] == [("a", "c")]
        assert cache.statistics.removal_patches == 1
        assert cache.statistics.rebuilds == 0

    def test_removing_the_last_row_of_a_bucket_drops_the_bucket(self):
        cache = JoinCache()
        relation = Relation(("s", "t"), [("a", "b"), ("x", "y")])
        cache.build_index(relation, (0,))
        relation.remove(("a", "b"))
        index = cache.build_index(relation, (0,))
        assert ("a",) not in index
        assert index[("x",)] == [("x", "y")]

    def test_interleaved_add_and_remove_patch_in_order(self):
        cache = JoinCache()
        relation = Relation(("s", "t"), [("a", "b")])
        cache.build_index(relation, (0,))
        relation.add(("a", "c"))
        relation.remove(("a", "c"))
        relation.remove(("a", "b"))
        relation.add(("a", "b"))
        index = cache.build_index(relation, (0,))
        assert index[("a",)] == [("a", "b")]
        assert cache.statistics.rebuilds == 0

    def test_wholesale_replacement_forces_rebuild(self):
        cache = JoinCache()
        relation = Relation(("s", "t"), [("a", "b"), ("a", "c")])
        cache.build_index(relation, (0,))
        relation.replace_rows([("x", "y")])
        index = cache.build_index(relation, (0,))
        assert index == {("x",): [("x", "y")]}
        assert cache.statistics.rebuilds == 1

    def test_different_key_columns_use_different_entries(self):
        cache = JoinCache()
        relation = Relation(("s", "t"), [("a", "b")])
        by_source = cache.build_index(relation, (0,))
        by_target = cache.build_index(relation, (1,))
        assert ("a",) in by_source
        assert ("b",) in by_target
        assert len(cache) == 2

    def test_invalidate_drops_entries_of_a_relation(self):
        cache = JoinCache()
        relation = Relation(("s", "t"), [("a", "b")])
        other = Relation(("s", "t"), [("c", "d")])
        cache.build_index(relation, (0,))
        cache.build_index(other, (0,))
        cache.invalidate(relation)
        assert len(cache) == 1

    def test_clear(self):
        cache = JoinCache()
        cache.build_index(Relation(("s", "t"), [("a", "b")]), (0,))
        cache.clear()
        assert len(cache) == 0

    def test_eviction_respects_max_entries(self):
        cache = JoinCache(max_entries=2)
        for _ in range(4):
            cache.build_index(Relation(("s", "t"), [("a", "b")]), (0,))
        assert len(cache) <= 2

    def test_cached_join_produces_the_same_result(self):
        cache = JoinCache()
        left = Relation(("a", "b"), [("1", "x"), ("2", "y")])
        right = Relation(("b", "c"), [("x", "p"), ("y", "q")])
        plain = natural_join(left, right)
        cached_once = natural_join(left, right, cache=cache)
        right.add(("x", "r"))
        plain_after = natural_join(left, right)
        cached_after = natural_join(left, right, cache=cache)
        assert cached_once.rows == plain.rows
        assert cached_after.rows == plain_after.rows


class TestCacheStatistics:
    def test_counters_and_dict(self):
        stats = CacheStatistics()
        stats.hits += 2
        stats.misses += 1
        assert stats.lookups == 3
        as_dict = stats.as_dict()
        assert as_dict["hits"] == 2
        assert as_dict["misses"] == 1
