"""The maintained answer relations of the `+` engines must stay exact.

The re-differentiated ``+`` tier (TRIC+/INV+/INC+) serves ``matches_of``
from a materialised answer relation patched by the delta pipeline.  These
tests churn the engines with interleaved additions, deletions, duplicate
multigraph edges, and micro-batches, and at every checkpoint compare the
maintained relation against (a) a fresh full evaluation on the same engine
state, (b) the string-based naive oracle, and (c) the existence-mode
``evaluate_full(limit=1)`` witness probe.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    INCPlusEngine,
    INVPlusEngine,
    NaiveEngine,
    TRICEngine,
    TRICPlusEngine,
    add,
    delete,
)
from repro.matching.answers import AnswerSetCache, MaterializedAnswers
from repro.matching.plans import QueryEvaluationPlan
from repro.matching.relation import CountedRelation, Relation
from repro.query.pattern import QueryGraphPattern

from test_equivalence import _random_query

PLUS_FACTORIES = [TRICPlusEngine, INVPlusEngine, INCPlusEngine]


def _churn_stream(rng: random.Random, num_updates: int, deletion_rate: float):
    labels = ["knows", "likes", "posted"]
    vertices = [f"v{i}" for i in range(7)]
    live = []
    updates = []
    for _ in range(num_updates):
        roll = rng.random()
        if live and roll < deletion_rate:
            edge = live.pop(rng.randrange(len(live)))
            updates.append(delete(edge.label, edge.source, edge.target))
        else:
            update = add(rng.choice(labels), rng.choice(vertices), rng.choice(vertices))
            if roll > 0.9 and live:
                # Duplicate a live edge: multigraph support counts matter.
                edge = rng.choice(live)
                update = add(edge.label, edge.source, edge.target)
            live.append(update.edge)
            updates.append(update)
    return updates


def _workload(seed: int, num_queries: int = 8):
    rng = random.Random(seed)
    labels = ["knows", "likes", "posted"]
    vertices = [f"v{i}" for i in range(7)]
    return rng, [_random_query(rng, f"Q{i}", labels, vertices) for i in range(num_queries)]


class TestMaintainedAnswersStayExact:
    """Property churn: maintained answers == fresh evaluation == oracle."""

    @pytest.mark.parametrize("factory", PLUS_FACTORIES)
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_churn_against_fresh_evaluation_and_oracle(self, factory, seed):
        rng, queries = _workload(seed)
        plus = factory()
        base_cls = type(plus).__mro__[1]  # the non-materialising base engine
        fresh = base_cls()
        oracle = NaiveEngine()
        for engine in (plus, fresh, oracle):
            engine.register_all(queries)

        updates = _churn_stream(rng, num_updates=140, deletion_rate=0.3)
        for step, update in enumerate(updates):
            plus.on_update(update)
            fresh.on_update(update)
            oracle.on_update(update)
            if step % 11 == 0 or step == len(updates) - 1:
                for query in queries:
                    maintained = plus.matches_of(query.query_id)
                    assert maintained == fresh.matches_of(query.query_id)
                    assert maintained == oracle.matches_of(query.query_id)

    @pytest.mark.parametrize("factory", PLUS_FACTORIES)
    def test_batched_churn_against_oracle(self, factory):
        rng, queries = _workload(seed=47)
        plus = factory()
        oracle = NaiveEngine()
        for engine in (plus, oracle):
            engine.register_all(queries)
        updates = _churn_stream(rng, num_updates=160, deletion_rate=0.35)
        for start in range(0, len(updates), 13):
            window = updates[start : start + 13]
            plus.on_batch(window)
            oracle.on_batch(window)
            for query in queries:
                assert plus.matches_of(query.query_id) == oracle.matches_of(query.query_id)

    def test_existence_mode_agrees_with_full_evaluation(self):
        rng, queries = _workload(seed=61)
        engine = TRICEngine()
        engine.register_all(queries)
        updates = _churn_stream(rng, num_updates=120, deletion_rate=0.3)
        for step, update in enumerate(updates):
            engine.on_update(update)
            if step % 9 == 0:
                for query in queries:
                    plan = engine._plans[query.query_id]
                    relations = engine._refresh_binding_relations(query.query_id)
                    witness = plan.evaluate_full(
                        binding_relations=relations, limit=1
                    )
                    full = plan.evaluate_full(binding_relations=relations)
                    assert bool(witness) == bool(full)
                    assert len(witness) <= 1
                    assert witness.rows <= full.rows
                    assert engine.has_matches(query.query_id) == bool(full)

    @pytest.mark.parametrize("factory", PLUS_FACTORIES)
    def test_late_registration_with_shared_structures(self, factory):
        """Registering a query mid-stream (epoch-bumping shared terminals)
        must not desynchronise an already live maintained answer relation."""
        plus = factory()
        oracle = NaiveEngine()
        first = QueryGraphPattern("A", [("knows", "?a", "?b"), ("likes", "?b", "?c")])
        for engine in (plus, oracle):
            engine.register(first)
        rng = random.Random(99)
        updates = _churn_stream(rng, num_updates=60, deletion_rate=0.3)
        for update in updates[:30]:
            plus.on_update(update)
            oracle.on_update(update)
        assert plus.matches_of("A") == oracle.matches_of("A")  # maintainer live

        second = QueryGraphPattern(
            "B", [("knows", "?x", "?y"), ("likes", "?y", "?z"), ("likes", "?z", "?w")]
        )
        for engine in (plus, oracle):
            engine.register(second)
        for update in updates[30:]:
            plus.on_update(update)
            oracle.on_update(update)
            assert plus.matches_of("A") == oracle.matches_of("A")
            assert plus.matches_of("B") == oracle.matches_of("B")

    def test_injective_churn_agrees_with_oracle(self):
        rng, queries = _workload(seed=83, num_queries=6)
        plus = TRICPlusEngine(injective=True)
        oracle = NaiveEngine(injective=True)
        for engine in (plus, oracle):
            engine.register_all(queries)
        for step, update in enumerate(_churn_stream(rng, 100, 0.3)):
            plus.on_update(update)
            oracle.on_update(update)
            if step % 7 == 0:
                for query in queries:
                    assert plus.matches_of(query.query_id) == oracle.matches_of(query.query_id)


class TestNoJoinOnTheServingPaths:
    """matches_of (+) and deletion re-checks (base) avoid cross-path joins."""

    def test_materialised_matches_of_runs_no_cross_path_join(self, monkeypatch):
        rng, queries = _workload(seed=5)
        engine = TRICPlusEngine()
        engine.register_all(queries)
        updates = _churn_stream(rng, num_updates=80, deletion_rate=0.2)
        warmup, churn = updates[:40], updates[40:]
        for update in warmup:
            engine.on_update(update)
        for query in queries:  # instantiate every maintainer
            engine.matches_of(query.query_id)

        def _no_join(*args, **kwargs):  # pragma: no cover - fails the test
            raise AssertionError("matches_of must not run a cross-path join")

        monkeypatch.setattr(QueryEvaluationPlan, "_join_bindings", _no_join)
        for update in churn:
            engine.on_update(update)
            for query in queries:
                engine.matches_of(query.query_id)

    def test_base_deletion_recheck_runs_no_cross_path_join(self, monkeypatch):
        rng, queries = _workload(seed=19)
        engine = TRICEngine()
        engine.register_all(queries)
        updates = _churn_stream(rng, num_updates=120, deletion_rate=0.4)
        warmup, churn = updates[:40], updates[40:]
        for update in warmup:
            engine.on_update(update)

        def _no_join(*args, **kwargs):  # pragma: no cover - fails the test
            raise AssertionError("deletion re-checks must use the witness probe")

        monkeypatch.setattr(QueryEvaluationPlan, "_join_bindings", _no_join)
        oracle = None  # notifications only; matches_of would join by design
        for update in churn:
            engine.on_update(update)
        assert oracle is None


class TestMaterializedAnswersUnit:
    """Direct unit coverage of the counted answer maintainer."""

    def _two_path_plan(self):
        # Star query: two covering paths sharing the hub variable ?a.
        pattern = QueryGraphPattern(
            "star", [("knows", "?a", "?b"), ("likes", "?a", "?c")]
        )
        return QueryEvaluationPlan(pattern)

    def test_counts_track_derivations(self):
        plan = self._two_path_plan()
        relations = [
            CountedRelation(plan.path_plans[0].variable_names),
            CountedRelation(plan.path_plans[1].variable_names),
        ]
        maintainer = MaterializedAnswers(plan)
        assert maintainer.stale
        maintainer.rebuild(relations)
        assert not maintainer.stale
        assert len(maintainer) == 0

        # Path 0 gains (a1, b1) while path 1 is still empty: no answer.
        relations[0].add(("a1", "b1"))
        maintainer.apply_binding_deltas(0, [(("a1", "b1"), 1)], relations)
        assert len(maintainer) == 0

        # Path 1 gains (a1, c1): one derivation, one answer.
        relations[1].add(("a1", "c1"))
        maintainer.apply_binding_deltas(1, [(("a1", "c1"), 1)], relations)
        assert set(maintainer.relation.rows) == {("a1", "b1", "c1")}

        # Retract it again: the answer disappears with its last derivation.
        relations[1].remove(("a1", "c1"))
        maintainer.apply_binding_deltas(1, [(("a1", "c1"), -1)], relations)
        assert len(maintainer) == 0

    def test_stale_maintainer_ignores_deltas_until_rebuilt(self):
        plan = self._two_path_plan()
        relations = [
            CountedRelation(plan.path_plans[0].variable_names),
            CountedRelation(plan.path_plans[1].variable_names),
        ]
        maintainer = MaterializedAnswers(plan)
        maintainer.rebuild(relations)
        maintainer.mark_stale()
        relations[0].add(("a1", "b1"))
        relations[1].add(("a1", "c1"))
        maintainer.apply_binding_deltas(0, [(("a1", "b1"), 1)], relations)
        assert len(maintainer) == 0  # ignored while stale
        maintainer.rebuild(relations)
        assert set(maintainer.relation.rows) == {("a1", "b1", "c1")}

    def test_answer_set_cache_roundtrip(self):
        plan = self._two_path_plan()
        cache = AnswerSetCache(plan)
        assert cache.dirty  # born dirty: the first poll computes it
        cache.absorb_new(Relation(plan.variable_names, [("a1", "b1", "c1")]))
        assert not cache  # absorbing into a dirty cache is a no-op
        cache.reset_to(Relation(plan.variable_names, [("a1", "b1", "c1")]))
        assert not cache.dirty
        assert len(cache) == 1
        cache.absorb_new(Relation(plan.variable_names, [("a2", "b2", "c2")]))
        assert len(cache) == 2
        cache.mark_dirty()
        assert cache.dirty
        cache.reset_to(Relation(plan.variable_names))
        assert not cache and not cache.dirty
