"""Interning round-trips and maintained-index invariants.

The matching layer carries dictionary-encoded int rows internally and must
decode back to identifier strings at every public surface.  The central
property: for any query set and any interleaved add/delete stream — replayed
per update or in micro-batches — every interned engine's notifications and
``matches_of`` answers are byte-identical to the string-based naive oracle.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    INCEngine,
    INCPlusEngine,
    INVEngine,
    INVPlusEngine,
    NaiveEngine,
    TRICEngine,
    TRICPlusEngine,
    add,
    delete,
)
from repro.graph.interning import NullInterner, VertexInterner
from repro.matching.relation import Relation
from repro.query import QueryGraphPattern

LABELS = ("a", "b")
VERTICES = ("v0", "v1", "v2", "v3")
TERMS = ("?x", "?y", "?z", "v0", "v1")

ENGINE_FACTORIES = (
    TRICEngine,
    TRICPlusEngine,
    INVEngine,
    INVPlusEngine,
    INCEngine,
    INCPlusEngine,
)


# ----------------------------------------------------------------------
# VertexInterner unit behaviour
# ----------------------------------------------------------------------
class TestVertexInterner:
    def test_ids_are_dense_and_first_seen_ordered(self):
        interner = VertexInterner()
        assert interner.intern("alice") == 0
        assert interner.intern("bob") == 1
        assert interner.intern("alice") == 0
        assert len(interner) == 2

    def test_round_trip(self):
        interner = VertexInterner()
        row = interner.intern_row(("alice", "bob", "alice"))
        assert interner.decode_row(row) == ("alice", "bob", "alice")
        assert interner.intern_pair("carol", "bob") == (2, 1)
        assert interner.label_of(2) == "carol"

    def test_lookup_does_not_assign(self):
        interner = VertexInterner()
        assert interner.lookup("ghost") is None
        assert "ghost" not in interner
        interner.intern("ghost")
        assert interner.lookup("ghost") == 0

    @given(st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_decode_inverts_intern_for_any_labels(self, labels):
        interner = VertexInterner()
        row = tuple(interner.intern(label) for label in labels)
        assert interner.decode_row(row) == tuple(labels)
        # Dense: ids cover exactly 0..n-1 for n distinct labels.
        assert set(row) == set(range(len(set(labels))))

    def test_null_interner_is_identity(self):
        interner = NullInterner()
        assert interner.intern("alice") == "alice"
        assert interner.intern_pair("a", "b") == ("a", "b")
        assert interner.decode_row(("a", "b")) == ("a", "b")
        assert interner.label_of("x") == "x"


# ----------------------------------------------------------------------
# Maintained-index invariants
# ----------------------------------------------------------------------
rows_st = st.lists(
    st.tuples(st.sampled_from("abcd"), st.sampled_from("wxyz")), min_size=0, max_size=30
)


class TestMaintainedIndexes:
    @given(rows_st, rows_st)
    @settings(max_examples=60, deadline=None)
    def test_probe_agrees_with_scan_under_churn(self, adds, removes):
        relation = Relation(("s", "t"))
        relation.ensure_index((0,))
        relation.ensure_index((1,))
        for row in adds:
            relation.add(row)
        for row in removes:
            relation.remove(row)
        for key in "abcd":
            expected = {row for row in relation.rows if row[0] == key}
            assert set(relation.probe((0,), (key,))) == expected
        for key in "wxyz":
            expected = {row for row in relation.rows if row[1] == key}
            assert set(relation.probe((1,), (key,))) == expected

    def test_index_survives_wholesale_replacement(self):
        relation = Relation(("s", "t"), [("a", "b")])
        relation.ensure_index((0,))
        relation.replace_rows([("x", "y"), ("x", "z")])
        assert set(relation.probe((0,), ("x",))) == {("x", "y"), ("x", "z")}
        assert relation.probe((0,), ("a",)) == frozenset()
        relation.clear()
        assert relation.probe((0,), ("x",)) == frozenset()

    def test_lazy_index_created_once_and_patched(self):
        relation = Relation(("s", "t"), [("a", "b")])
        assert not relation.has_maintained_index((0,))
        assert set(relation.probe((0,), ("a",))) == {("a", "b")}
        assert relation.has_maintained_index((0,))
        relation.add(("a", "c"))
        relation.remove(("a", "b"))
        assert set(relation.probe((0,), ("a",))) == {("a", "c")}


# ----------------------------------------------------------------------
# Engine round-trip equivalence vs the string oracle
# ----------------------------------------------------------------------
@st.composite
def connected_patterns(draw):
    """Small connected query patterns over a tiny vocabulary."""
    num_edges = draw(st.integers(min_value=1, max_value=3))
    edges = []
    terms = [draw(st.sampled_from(TERMS))]
    for _ in range(num_edges):
        label = draw(st.sampled_from(LABELS))
        anchor = draw(st.sampled_from(terms))
        other = draw(st.sampled_from(TERMS))
        if draw(st.booleans()):
            edges.append((label, anchor, other))
        else:
            edges.append((label, other, anchor))
        terms.append(other)
    if not any(t.startswith("?") for triple in edges for t in triple[1:]):
        label, _, target = edges[0]
        edges[0] = (label, "?x", target)
    return edges


@st.composite
def mixed_update_streams(draw):
    """Interleaved additions and deletions; deletions retract live edges."""
    events = draw(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=2**16),
                st.sampled_from(LABELS),
                st.sampled_from(VERTICES),
                st.sampled_from(VERTICES),
            ),
            min_size=1,
            max_size=30,
        )
    )
    live, updates = [], []
    for is_deletion, pick, label, source, target in events:
        if is_deletion and live:
            edge = live.pop(pick % len(live))
            updates.append(delete(edge.label, edge.source, edge.target))
        else:
            update = add(label, source, target)
            live.append(update.edge)
            updates.append(update)
    return updates


def _patterns_from(edge_lists):
    return [QueryGraphPattern(f"Q{i}", edges) for i, edges in enumerate(edge_lists)]


class TestInterningRoundTripsThroughEngines:
    @given(st.lists(connected_patterns(), min_size=1, max_size=3), mixed_update_streams())
    @settings(max_examples=20, deadline=None)
    def test_every_engine_matches_the_string_oracle_per_update(self, edge_lists, updates):
        patterns = _patterns_from(edge_lists)
        oracle = NaiveEngine()
        engines = [factory() for factory in ENGINE_FACTORIES]
        for engine in [oracle, *engines]:
            engine.register_all(patterns)
        for update in updates:
            expected = oracle.on_update(update)
            for engine in engines:
                assert engine.on_update(update) == expected, engine.name
        for engine in engines:
            assert engine.satisfied_queries() == oracle.satisfied_queries(), engine.name
            for pattern in patterns:
                # Byte-identical: same strings, same dicts, same list order.
                assert engine.matches_of(pattern.query_id) == oracle.matches_of(
                    pattern.query_id
                ), engine.name

    @given(
        st.lists(connected_patterns(), min_size=1, max_size=3),
        mixed_update_streams(),
        st.integers(min_value=2, max_value=9),
    )
    @settings(max_examples=15, deadline=None)
    def test_batched_drive_round_trips_identically(self, edge_lists, updates, batch_size):
        patterns = _patterns_from(edge_lists)
        for factory in (TRICEngine, TRICPlusEngine, INVPlusEngine):
            batched = factory()
            oracle = NaiveEngine()
            for engine in (batched, oracle):
                engine.register_all(patterns)
            for start in range(0, len(updates), batch_size):
                window = updates[start : start + batch_size]
                expected = frozenset().union(*(oracle.on_update(u) for u in window))
                assert batched.on_batch(window) == expected, factory.__name__
            for pattern in patterns:
                assert batched.matches_of(pattern.query_id) == oracle.matches_of(
                    pattern.query_id
                ), factory.__name__

    @given(st.lists(connected_patterns(), min_size=1, max_size=2), mixed_update_streams())
    @settings(max_examples=10, deadline=None)
    def test_shared_interner_across_engines_is_safe(self, edge_lists, updates):
        """Engines may share one interner; answers stay oracle-identical."""
        patterns = _patterns_from(edge_lists)
        shared = VertexInterner()
        tric = TRICEngine(interner=shared)
        inv = INVEngine(interner=shared)
        oracle = NaiveEngine()
        for engine in (tric, inv, oracle):
            engine.register_all(patterns)
        for update in updates:
            expected = oracle.on_update(update)
            assert tric.on_update(update) == expected
            assert inv.on_update(update) == expected
        for pattern in patterns:
            expected = oracle.matches_of(pattern.query_id)
            assert tric.matches_of(pattern.query_id) == expected
            assert inv.matches_of(pattern.query_id) == expected

    def test_matches_decode_to_strings(self):
        engine = TRICEngine()
        engine.register(QueryGraphPattern("q", [("knows", "?a", "?b")]))
        engine.on_update(add("knows", "alice", "bob"))
        assert engine.matches_of("q") == [{"a": "alice", "b": "bob"}]

    def test_stats_measure_the_live_dictionary(self):
        """``stats()`` reports live ids and a bytes estimate that grows with
        the dictionary, and engines surface it through ``describe()`` — the
        measurement the append-only-interner compaction concern needs."""
        interner = VertexInterner()
        empty = interner.stats()
        assert empty["live_ids"] == 0
        for i in range(10):
            interner.intern(f"person:{i}")
        stats = interner.stats()
        assert stats["live_ids"] == 10
        assert stats["bytes_estimate"] > empty["bytes_estimate"]
        null_stats = NullInterner(["a", "b"]).stats()
        assert null_stats["live_ids"] == 2 and null_stats["bytes_estimate"] > 0
        engine = TRICEngine()
        engine.register(QueryGraphPattern("q", [("knows", "?a", "?b")]))
        engine.on_update(add("knows", "alice", "bob"))
        description = engine.describe()
        assert description["interner"]["live_ids"] == 2
        assert description["interner"]["bytes_estimate"] > 0

    def test_unmatched_traffic_does_not_grow_the_interner(self):
        """Edges no registered key matches must never intern their endpoints
        (the dictionary is append-only, so stray ids would leak forever)."""
        engine = TRICEngine()
        engine.register(QueryGraphPattern("q", [("knows", "?a", "?b")]))
        interner = engine.views.interner
        engine.on_update(add("likes", "stranger1", "stranger2"))
        engine.on_update(delete("likes", "stranger3", "stranger4"))
        assert len(interner) == 0
        engine.on_update(add("knows", "alice", "bob"))
        assert len(interner) == 2


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(pytest.main([__file__, "-q"]))
