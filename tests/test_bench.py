"""Tests for the benchmark harness (configs, experiments, figures, CLI)."""

from __future__ import annotations

import pytest

from repro.bench import (
    EXPERIMENTS,
    FIGURES,
    ExperimentConfig,
    bench_scale_from_env,
    build_stream,
    build_workload,
    experiment_ids,
    render_experiment,
    run_experiment,
)
from repro.bench.runner import build_parser, main
from repro.graph.errors import BenchmarkError


class TestExperimentConfig:
    def test_scaling_applies_to_sizes_and_budget(self):
        config = ExperimentConfig("x", num_updates=10_000, num_queries=1_000, time_budget_s=100.0)
        scaled = config.with_scale(0.1)
        assert scaled.scaled_num_updates == 1_000
        assert scaled.scaled_num_queries == 100
        assert scaled.scaled_time_budget_s == pytest.approx(10.0)

    def test_scaling_has_floors(self):
        config = ExperimentConfig("x").with_scale(0.0001)
        assert config.scaled_num_updates >= 200
        assert config.scaled_num_queries >= 20
        assert config.scaled_time_budget_s >= 2.0

    def test_invalid_scale_rejected(self):
        with pytest.raises(BenchmarkError):
            ExperimentConfig("x", scale=0)

    def test_with_overrides(self):
        config = ExperimentConfig("x").with_overrides(dataset="taxi", avg_edges=3)
        assert config.dataset == "taxi"
        assert config.avg_edges == 3

    def test_describe_is_flat(self):
        description = ExperimentConfig("x").describe()
        assert description["experiment"] == "x"
        assert "updates" in description


class TestScaleFromEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale_from_env(0.5) == 0.5

    def test_parses_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        assert bench_scale_from_env() == 0.25

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(BenchmarkError):
            bench_scale_from_env()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(BenchmarkError):
            bench_scale_from_env()


class TestWorkloadBuilders:
    def test_build_stream_for_every_dataset(self):
        for dataset in ("snb", "taxi", "biogrid"):
            stream = build_stream(dataset, 300, seed=1)
            assert len(stream) == 300

    def test_build_stream_unknown_dataset(self):
        with pytest.raises(BenchmarkError):
            build_stream("imdb", 300, seed=1)

    def test_build_workload(self):
        stream = build_stream("snb", 400, seed=1)
        workload = build_workload(
            stream, num_queries=25, avg_edges=4, selectivity=0.2, overlap=0.3, seed=2
        )
        assert len(workload) == 25


class TestExperimentRegistry:
    def test_every_figure_has_an_experiment_and_a_spec(self):
        expected = {
            "fig12a", "fig12b", "fig12c", "fig12d", "fig12e", "fig12f",
            "fig13a", "fig13b", "fig13c", "fig14a", "fig14b", "fig14c",
        }
        assert set(experiment_ids()) == expected
        assert set(FIGURES) == expected

    def test_unknown_experiment_raises(self):
        with pytest.raises(BenchmarkError):
            run_experiment("fig99")

    def test_registry_configs_use_known_datasets(self):
        for config, _ in EXPERIMENTS.values():
            assert config.dataset in {"snb", "taxi", "biogrid"}


class TestRunningASmallExperiment:
    @pytest.fixture(scope="class")
    def tiny_result(self):
        # A deliberately tiny run exercising the full experiment pipeline.
        return run_experiment(
            "fig12a",
            scale=0.01,
            engines=("TRIC+", "INV"),
            num_points=2,
            time_budget_s=500.0,
        )

    def test_result_structure(self, tiny_result):
        assert tiny_result.experiment_id == "fig12a"
        assert set(tiny_result.engines()) == {"TRIC+", "INV"}
        assert len(tiny_result.x_values()) == 2
        assert all(point.answering_ms >= 0 for point in tiny_result.points)

    def test_series_and_table_rendering(self, tiny_result):
        series = tiny_result.series()
        assert set(series) == {"TRIC+", "INV"}
        table = tiny_result.to_table()
        assert "fig12a" in table and "TRIC+" in table
        markdown = tiny_result.to_markdown()
        assert markdown.startswith("|")

    def test_fastest_engine_at(self, tiny_result):
        last_x = tiny_result.x_values()[-1]
        assert tiny_result.fastest_engine_at(last_x) in {"TRIC+", "INV"}

    def test_render_experiment_includes_paper_context(self, tiny_result):
        text = render_experiment(tiny_result)
        assert "paper" in text
        assert "configuration:" in text

    def test_indexing_experiment(self):
        result = run_experiment(
            "fig13b", scale=0.01, engines=("TRIC", "INV"), num_points=2
        )
        assert result.metric == "indexing_ms_per_query"
        assert all(p.indexing_ms_per_query >= 0 for p in result.points)


class TestCLI:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        captured = capsys.readouterr()
        assert "fig12a" in captured.out

    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 2

    def test_unknown_experiment_is_an_error(self, capsys):
        assert main(["--experiment", "fig99"]) == 2

    def test_parser_accepts_scale_and_output(self, tmp_path):
        parser = build_parser()
        args = parser.parse_args(["-e", "fig12a", "--scale", "0.5", "--output", str(tmp_path)])
        assert args.experiments == ["fig12a"]
        assert args.scale == 0.5
