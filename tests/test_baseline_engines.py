"""Tests for the INV / INV+ / INC / INC+ baselines and the naive oracle."""

from __future__ import annotations

import pytest

from repro import (
    INCEngine,
    INCPlusEngine,
    INVEngine,
    INVPlusEngine,
    NaiveEngine,
    add,
    delete,
)
from repro.query import QueryBuilder, QueryGraphPattern

BASELINES = [INVEngine, INVPlusEngine, INCEngine, INCPlusEngine, NaiveEngine]
BASELINE_IDS = ["INV", "INV+", "INC", "INC+", "Naive"]


@pytest.fixture(params=BASELINES, ids=BASELINE_IDS)
def engine(request):
    return request.param()


class TestAnswering:
    def test_checkin_example(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        answers = [engine.on_update(update) for update in checkin_stream]
        assert [bool(a) for a in answers] == [False, False, False, True]
        assert engine.satisfied_queries() == {"checkin"}
        assert engine.matches_of("checkin") == [{"p1": "P1", "p2": "P2", "place": "rio"}]

    def test_duplicate_edge_produces_no_new_answers(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        for update in checkin_stream:
            engine.on_update(update)
        assert engine.on_update(add("checksIn", "P2", "rio")) == frozenset()

    def test_cycle_query(self, engine):
        triangle = QueryGraphPattern(
            "triangle",
            [("knows", "?a", "?b"), ("knows", "?b", "?c"), ("knows", "?c", "?a")],
        )
        engine.register(triangle)
        engine.on_update(add("knows", "x", "y"))
        engine.on_update(add("knows", "y", "z"))
        assert engine.on_update(add("knows", "z", "x")) == {"triangle"}

    def test_literal_constraints(self, engine):
        engine.register(QueryBuilder("q").edge("posted", "?p", "pst1").build())
        assert engine.on_update(add("posted", "u", "other")) == frozenset()
        assert engine.on_update(add("posted", "u", "pst1")) == {"q"}

    def test_deletion_invalidates(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        for update in checkin_stream:
            engine.on_update(update)
        assert engine.on_update(delete("checksIn", "P2", "rio")) == {"checkin"}
        assert engine.satisfied_queries() == frozenset()

    def test_deletion_of_redundant_edge_keeps_satisfaction(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        for update in checkin_stream:
            engine.on_update(update)
        assert engine.on_update(delete("checksIn", "P3", "rio")) == frozenset()
        assert engine.satisfied_queries() == {"checkin"}


class TestCachingVariants:
    def test_plus_variants_report_answer_materialisation(self):
        assert INVPlusEngine().materializes_answers
        assert INCPlusEngine().materializes_answers
        assert not INVEngine().materializes_answers
        assert not INCEngine().materializes_answers

    def test_names(self):
        assert INVEngine().name == "INV"
        assert INVPlusEngine().name == "INV+"
        assert INCEngine().name == "INC"
        assert INCPlusEngine().name == "INC+"
        assert NaiveEngine().name == "Naive"

    def test_statistics_exposed(self, paper_fig4_queries):
        engine = INVEngine()
        engine.register_all(paper_fig4_queries)
        stats = engine.statistics()
        assert stats["indexed_keys"] > 0
        assert stats["base_views"] == stats["indexed_keys"]
        assert stats["source_terms"] > 0


class TestInjectiveMode:
    @pytest.mark.parametrize("engine_cls", BASELINES, ids=BASELINE_IDS)
    def test_injective_rejects_reflexive_bindings(self, engine_cls):
        engine = engine_cls(injective=True)
        engine.register(QueryBuilder("q").edge("knows", "?a", "?b").build())
        assert engine.on_update(add("knows", "x", "x")) == frozenset()
        assert engine.on_update(add("knows", "x", "y")) == {"q"}


class TestNaiveOracle:
    def test_graph_is_exposed(self, checkin_query, checkin_stream):
        engine = NaiveEngine()
        engine.register(checkin_query)
        for update in checkin_stream:
            engine.on_update(update)
        assert engine.graph.num_edges == len(checkin_stream)

    def test_matches_are_sorted(self):
        engine = NaiveEngine()
        engine.register(QueryBuilder("q").edge("knows", "?a", "?b").build())
        engine.on_update(add("knows", "b", "c"))
        engine.on_update(add("knows", "a", "c"))
        matches = engine.matches_of("q")
        assert matches == sorted(matches, key=lambda m: tuple(sorted(m.items())))
