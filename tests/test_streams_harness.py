"""Tests for the replay harness, metrics, and reporting helpers."""

from __future__ import annotations

import time

import pytest

from repro import TRICEngine, TRICPlusEngine, add
from repro.graph import GraphStream
from repro.streams import (
    NotificationLog,
    ReplayResult,
    StreamRunner,
    Timer,
    TimingStats,
    deep_sizeof,
    format_replay_results,
    format_table,
)


class TestTimer:
    def test_timer_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005
        assert timer.elapsed_ms >= 5.0


class TestTimingStats:
    def test_empty_stats(self):
        stats = TimingStats()
        assert stats.count == 0
        assert stats.mean_ms == 0.0
        assert stats.median_ms == 0.0
        assert stats.p95_ms == 0.0
        assert stats.max_ms == 0.0

    def test_summary_values(self):
        stats = TimingStats()
        stats.extend([0.001, 0.002, 0.003])
        assert stats.count == 3
        assert stats.total_seconds == pytest.approx(0.006)
        assert stats.mean_ms == pytest.approx(2.0)
        assert stats.median_ms == pytest.approx(2.0)
        assert stats.max_ms == pytest.approx(3.0)
        summary = stats.summary()
        assert summary["count"] == 3.0

    def test_p95(self):
        stats = TimingStats()
        stats.extend([0.001] * 99 + [0.1])
        assert stats.p95_ms < 100.0
        assert stats.p95_ms >= 1.0


class TestDeepSizeof:
    def test_containers_count_their_contents(self):
        small = deep_sizeof([1, 2, 3])
        large = deep_sizeof(list(range(1000)))
        assert large > small

    def test_shared_objects_counted_once(self):
        shared = ["payload"] * 1
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof([shared, list(shared)])

    def test_engine_footprint_grows_with_state(self, checkin_query, checkin_stream):
        engine = TRICEngine()
        engine.register(checkin_query)
        before = deep_sizeof(engine)
        for update in checkin_stream:
            engine.on_update(update)
        assert deep_sizeof(engine) > before


class TestStreamRunner:
    def test_index_queries_measures_time(self, checkin_query):
        runner = StreamRunner(TRICEngine())
        elapsed = runner.index_queries([checkin_query])
        assert elapsed >= 0.0
        assert runner.indexing_time_s >= elapsed

    def test_replay_collects_metrics_and_matches(self, checkin_query, checkin_stream):
        runner = StreamRunner(TRICPlusEngine())
        runner.index_queries([checkin_query])
        result = runner.replay(checkin_stream, measure_memory=True)
        assert isinstance(result, ReplayResult)
        assert result.completed
        assert result.updates_processed == len(checkin_stream)
        assert result.matched_updates == 1
        assert result.matches_emitted == 1
        assert result.answering.count == len(checkin_stream)
        assert result.memory_bytes is not None and result.memory_bytes > 0
        assert result.as_dict()["engine"] == "TRIC+"

    def test_listeners_receive_notifications(self, checkin_query, checkin_stream):
        log = NotificationLog()
        with pytest.warns(DeprecationWarning, match="SubscriptionBroker"):
            runner = StreamRunner(TRICEngine(), listeners=[log])
        runner.index_queries([checkin_query])
        runner.replay(checkin_stream)
        assert len(log) == 1
        assert log.queries_notified() == ["checkin"]
        assert log.notifications[0]["queries"] == ["checkin"]

    def test_add_listener_is_a_deprecated_shim(self, checkin_query, checkin_stream):
        runner = StreamRunner(TRICEngine())
        log = NotificationLog()
        with pytest.warns(DeprecationWarning, match="SubscriptionBroker"):
            runner.add_listener(log)
        runner.index_queries([checkin_query])
        runner.replay(checkin_stream)
        assert len(log) == 1

    def test_broker_mode_delivers_match_deltas(self, checkin_query, checkin_stream):
        runner = StreamRunner(TRICPlusEngine())
        runner.index_queries([checkin_query])
        subscription = runner.subscribe(["checkin"])
        result = runner.replay(checkin_stream)
        assert runner.broker is not None
        assert result.deltas_delivered == 1
        assert result.delta_answers == 1
        deltas = subscription.drain()
        assert [delta.query_id for delta in deltas] == ["checkin"]
        assert deltas[0].added[0] == {"p1": "P1", "p2": "P2", "place": "rio"}
        as_dict = result.as_dict()
        assert as_dict["deltas_delivered"] == 1
        assert as_dict["delta_answers"] == 1

    def test_constructor_broker_and_subscription_specs(self, checkin_query, checkin_stream):
        from repro.pubsub import SubscriptionBroker

        engine = TRICPlusEngine()
        engine.register(checkin_query)
        broker = SubscriptionBroker(engine)
        runner = StreamRunner(broker=broker, subscriptions=["checkin"], batch_size=2)
        result = runner.replay(checkin_stream)
        assert runner.engine is engine
        assert result.deltas_delivered == 1
        [subscription] = broker.subscriptions.values()
        assert [d.query_id for d in subscription.drain()] == ["checkin"]

    def test_broker_with_foreign_engine_rejected(self, checkin_query):
        from repro.pubsub import SubscriptionBroker

        engine = TRICPlusEngine()
        engine.register(checkin_query)
        with pytest.raises(ValueError):
            StreamRunner(TRICEngine(), broker=SubscriptionBroker(engine))

    def test_runner_needs_engine_or_broker(self):
        with pytest.raises(ValueError):
            StreamRunner()

    def test_time_budget_stops_the_replay(self, checkin_query):
        runner = StreamRunner(TRICEngine(), time_budget_s=0.0)
        runner.index_queries([checkin_query])
        stream = GraphStream([add("knows", f"a{i}", f"b{i}") for i in range(50)])
        result = runner.replay(stream)
        assert result.timed_out
        assert not result.completed
        assert result.updates_processed < len(stream)

    def test_poll_every_decodes_satisfied_answers(self, checkin_query, checkin_stream):
        runner = StreamRunner(TRICPlusEngine(), poll_every=1)
        runner.index_queries([checkin_query])
        result = runner.replay(checkin_stream)
        assert result.polling.count == len(checkin_stream)
        # The final poll rounds see the satisfied query and decode answers.
        assert result.answers_decoded >= 1
        as_dict = result.as_dict()
        assert as_dict["polls"] == result.polling.count
        assert as_dict["answers_decoded"] == result.answers_decoded

    def test_polling_disabled_by_default(self, checkin_query, checkin_stream):
        runner = StreamRunner(TRICEngine())
        runner.index_queries([checkin_query])
        result = runner.replay(checkin_stream)
        assert result.polling.count == 0
        assert result.answers_decoded == 0

    def test_negative_poll_every_rejected(self):
        with pytest.raises(ValueError):
            StreamRunner(TRICEngine(), poll_every=-1)

    def test_replay_accepts_plain_sequences(self, checkin_query):
        runner = StreamRunner(TRICEngine())
        runner.index_queries([checkin_query])
        result = runner.replay([add("knows", "a", "b")])
        assert result.updates_processed == 1


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(("name", "value"), [("tric", 1), ("inverted", 22)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]

    def test_format_replay_results(self, checkin_query, checkin_stream):
        runner = StreamRunner(TRICEngine())
        runner.index_queries([checkin_query])
        result = runner.replay(checkin_stream, measure_memory=True)
        text = format_replay_results([result])
        assert "TRIC" in text
        assert "answering ms/update" in text
